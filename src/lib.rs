//! # ocqa — An Operational Approach to Consistent Query Answering
//!
//! A faithful, from-scratch implementation of *“An Operational Approach to
//! Consistent Query Answering”* (Marco Calautti, Leonid Libkin, Andreas
//! Pieris; PODS 2018, DOI 10.1145/3196959.3196966).
//!
//! Classical consistent query answering (CQA) declares an inconsistent
//! database's *repairs* axiomatically and returns only the answers true in
//! all of them. The operational approach instead *constructs* repairs by
//! sequences of justified insert/delete operations, weights the sequences
//! with a repairing Markov chain, and answers queries with the probability
//! that a tuple holds over the resulting repair distribution — enabling
//! additive-error approximation for **all** first-order queries where the
//! classical approach is stuck at coNP-hardness.
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`num`] | arbitrary-precision integers and exact rationals |
//! | [`data`] | interned symbols, facts, indexed relations, databases |
//! | [`logic`] | TGD/EGD/DC constraints, violations, homomorphisms, FO queries, parser |
//! | [`abc`] | classical Arenas–Bertossi–Chomicki repairs and certain answers |
//! | [`core`] | the operational framework: justified operations, repairing sequences, chain generators, exact exploration, `CP`/`OCA`, the `Sample` approximation, key-repair scheme |
//! | [`workload`] | seeded synthetic scenario generators |
//!
//! ## Quickstart
//!
//! ```
//! use ocqa::prelude::*;
//!
//! // The paper's §3 preference example.
//! let facts = parser::parse_facts(
//!     "Pref(a,b). Pref(a,c). Pref(a,d). Pref(b,a). Pref(b,d). Pref(c,a).",
//! ).unwrap();
//! let sigma = parser::parse_constraints("Pref(x,y), Pref(y,x) -> false.").unwrap();
//! let schema = parser::infer_schema(&facts, &sigma).unwrap();
//! let db = Database::from_facts(schema, facts).unwrap();
//!
//! // Explore the repairing Markov chain of Example 4's generator…
//! let ctx = RepairContext::new(db, sigma);
//! let dist = explore::repair_distribution(
//!     &ctx, &PreferenceGenerator::new(), &Default::default()).unwrap();
//!
//! // …and compute Example 7's operational consistent answers.
//! let q = parser::parse_query("(x) <- forall y: (Pref(x,y) | x = y)").unwrap();
//! let oca = answer::operational_answers(&dist, &q);
//! assert_eq!(oca.len(), 1);
//! assert_eq!(oca[0].1, Rat::ratio(9, 20)); // the paper's 0.45
//! ```

pub use ocqa_abc as abc;
pub use ocqa_core as core;
pub use ocqa_data as data;
pub use ocqa_logic as logic;
pub use ocqa_num as num;
pub use ocqa_workload as workload;

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::core::{
        answer, explain, explore, justified, keyrepair, localize, markov, sample, BaseDomain,
        ChainGenerator, FactSet, Operation, PreferenceGenerator, RepairContext, RepairState,
        TrustGenerator, UniformGenerator, WeightFnGenerator,
    };
    pub use crate::data::{Constant, Database, Fact, Schema, Symbol};
    pub use crate::logic::{
        parser, Atom, Bindings, Constraint, ConstraintSet, DeletionOverlay, FactSource, Formula,
        Query, Term, Var, Violation, ViolationSet,
    };
    pub use crate::num::{IBig, Rat, UBig};
}
