//! Offline subset of the `proptest` API (see `vendor/README.md`).
//!
//! Provides the `proptest!` test macro, `prop_assert*` assertions, and the
//! strategy combinators the workspace uses: numeric ranges, `any::<T>()`,
//! tuples, `prop::collection::vec`, a regex-lite string strategy,
//! `prop_map` and `prop_filter`. No shrinking: a failing case reports its
//! case index and message, and the deterministic per-test RNG makes every
//! failure reproducible by rerunning the test.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::marker::PhantomData;
use std::ops::Range;

/// Runner configuration (`cases` is the only knob the workspace uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; 64 keeps the vendored runner quick
        // while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Error carried out of a property body: a genuine assertion failure, or
/// a `prop_assume!` rejection (the case is skipped, not failed).
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assert*` failed with this message.
    Fail(String),
    /// `prop_assume!` rejected the inputs.
    Reject,
}

impl From<String> for TestCaseError {
    fn from(msg: String) -> TestCaseError {
        TestCaseError::Fail(msg)
    }
}

/// The deterministic RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeded from the property name, so each property has a stable,
    /// independent stream.
    pub fn for_test(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn below(&mut self, span: u64) -> u64 {
        self.0.random_range(0..span)
    }
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `f`, resampling (up to a cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive samples",
            self.whence
        );
    }
}

/// Types with a canonical full-range strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws a uniform value over the type's full range.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_via_u64 {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_via_u64!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

/// The full-range strategy for `T` (`any::<T>()`).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy covering all of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<u128> {
    type Value = u128;

    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + below_u128(rng, self.end - self.start)
    }
}

impl Strategy for Range<i128> {
    type Value = i128;

    fn generate(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u128;
        self.start.wrapping_add(below_u128(rng, span) as i128)
    }
}

/// Rejection sampling over the full 128-bit stream.
fn below_u128(rng: &mut TestRng, span: u128) -> u128 {
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let v = u128::arbitrary(rng);
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` strategy with lengths drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Numeric strategies (`prop::num`).
pub mod num {
    /// Full-range `i64` (`prop::num::i64::ANY`).
    #[allow(non_snake_case)]
    pub mod i64 {
        /// Uniform over all of `i64`.
        pub const ANY: crate::Any<core::primitive::i64> = crate::Any(core::marker::PhantomData);
    }
}

/// Regex-lite string strategy: supports literal characters, `[...]`
/// classes with ranges, and `{m}` / `{m,n}` / `?` / `*` / `+` quantifiers
/// (unbounded ones capped at 8 repeats). This covers the patterns the
/// workspace's property tests use; anything fancier panics loudly.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let (choices, next) = match chars[i] {
                '[' => parse_class(&chars, i),
                '\\' => {
                    assert!(i + 1 < chars.len(), "dangling escape in regex {self:?}");
                    (vec![chars[i + 1]], i + 2)
                }
                '.' | '(' | ')' | '|' => {
                    panic!("unsupported regex construct {:?} in {self:?}", chars[i])
                }
                c => (vec![c], i + 1),
            };
            let (lo, hi, next) = parse_quantifier(&chars, next, self);
            let count = if lo == hi {
                lo
            } else {
                lo + rng.below((hi - lo + 1) as u64) as usize
            };
            for _ in 0..count {
                out.push(choices[rng.below(choices.len() as u64) as usize]);
            }
            i = next;
        }
        out
    }
}

fn parse_class(chars: &[char], open: usize) -> (Vec<char>, usize) {
    let mut choices = Vec::new();
    let mut i = open + 1;
    while i < chars.len() && chars[i] != ']' {
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
            assert!(lo <= hi, "inverted class range in regex");
            choices.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            choices.push(chars[i]);
            i += 1;
        }
    }
    assert!(i < chars.len(), "unterminated character class in regex");
    (choices, i + 1)
}

fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated quantifier in regex {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            let (lo, hi) = match body.split_once(',') {
                None => {
                    let n = body.trim().parse().expect("numeric quantifier");
                    (n, n)
                }
                Some((lo, "")) => (lo.trim().parse().expect("numeric quantifier"), 8),
                Some((lo, hi)) => (
                    lo.trim().parse().expect("numeric quantifier"),
                    hi.trim().parse().expect("numeric quantifier"),
                ),
            };
            (lo, hi, close + 1)
        }
        Some('?') => (0, 1, i + 1),
        Some('*') => (0, 8, i + 1),
        Some('+') => (1, 8, i + 1),
        _ => (1, 1, i),
    }
}

/// One property case failed: panic with the collected message.
#[doc(hidden)]
pub fn fail_case(test: &str, case: u32, msg: &str) -> ! {
    panic!("property {test} failed at case {case}: {msg}")
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced strategy modules (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
    }
}

/// Asserts inside a property body; failing returns an `Err` that aborts
/// only the current case with a report.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Skips the current case when its inputs don't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests. Each `fn name(bindings) { body }` becomes a
/// `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$attr:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::__proptest_munch! { config, stringify!($name), $body, [] [] $($params)* }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_munch {
    // All parameters consumed: run the cases.
    ($cfg:ident, $name:expr, $body:block, [$($pat:ident)*] [$($strat:expr;)*]) => {{
        use $crate::Strategy as _;
        let __strategies = ($($strat,)*);
        let mut __rng = $crate::TestRng::for_test($name);
        for __case in 0..$cfg.cases {
            let ($($pat,)*) = __strategies.generate(&mut __rng);
            let __result: ::core::result::Result<(), $crate::TestCaseError> =
                (|| { $body ::core::result::Result::Ok(()) })();
            match __result {
                ::core::result::Result::Err($crate::TestCaseError::Fail(e)) => {
                    $crate::fail_case($name, __case, &e)
                }
                _ => {}
            }
        }
    }};
    // `name in strategy, rest…`
    ($cfg:ident, $name:expr, $body:block, [$($pat:ident)*] [$($strat:expr;)*] $p:ident in $s:expr, $($rest:tt)*) => {
        $crate::__proptest_munch! { $cfg, $name, $body, [$($pat)* $p] [$($strat;)* $s;] $($rest)* }
    };
    // `name in strategy` (final, no trailing comma)
    ($cfg:ident, $name:expr, $body:block, [$($pat:ident)*] [$($strat:expr;)*] $p:ident in $s:expr) => {
        $crate::__proptest_munch! { $cfg, $name, $body, [$($pat)* $p] [$($strat;)* $s;] }
    };
    // `name: Type, rest…` — sugar for `name in any::<Type>()`
    ($cfg:ident, $name:expr, $body:block, [$($pat:ident)*] [$($strat:expr;)*] $p:ident : $t:ty, $($rest:tt)*) => {
        $crate::__proptest_munch! { $cfg, $name, $body, [$($pat)* $p] [$($strat;)* $crate::any::<$t>();] $($rest)* }
    };
    // `name: Type` (final)
    ($cfg:ident, $name:expr, $body:block, [$($pat:ident)*] [$($strat:expr;)*] $p:ident : $t:ty) => {
        $crate::__proptest_munch! { $cfg, $name, $body, [$($pat)* $p] [$($strat;)* $crate::any::<$t>();] }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::TestRng::for_test("bounds");
        let s = prop::collection::vec((any::<bool>(), 0i64..6), 0..120);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v.len() < 120);
            assert!(v.iter().all(|(_, n)| (0..6).contains(n)));
        }
    }

    #[test]
    fn regex_lite_matches_shape() {
        let mut rng = crate::TestRng::for_test("regex");
        let s = "[a-zA-Z][a-zA-Z0-9_]{0,12}";
        for _ in 0..200 {
            let out = Strategy::generate(&s, &mut rng);
            assert!(!out.is_empty() && out.len() <= 13, "{out:?}");
            assert!(out.chars().next().unwrap().is_ascii_alphabetic());
            assert!(out.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    fn filter_resamples() {
        let mut rng = crate::TestRng::for_test("filter");
        let s = crate::num::i64::ANY.prop_filter("nonzero", |v| *v != 0);
        for _ in 0..100 {
            assert_ne!(s.generate(&mut rng), 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_mixed_params(a: u64, b in 1u64..100, label in "[xy]{2}") {
            prop_assert!((1..100).contains(&b));
            prop_assert_eq!(label.len(), 2);
            let _ = a;
        }
    }
}
