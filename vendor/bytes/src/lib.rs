//! Offline subset of the `bytes` API (see `vendor/README.md`).
//!
//! Contiguous-only: [`Bytes`] is a cheaply-cloneable `Arc<[u8]>` window
//! and [`BytesMut`] a growable buffer. Only the cursor/append methods the
//! workspace's codec uses are provided.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Read-side cursor over a byte container.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 past end");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice_impl(&mut raw);
        u16::from_le_bytes(raw)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice_impl(&mut raw);
        i64::from_le_bytes(raw)
    }

    /// Copies `len` bytes out into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "copy_to_bytes past end");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }

    #[doc(hidden)]
    fn copy_to_slice_impl(&mut self, dest: &mut [u8]) {
        assert!(self.remaining() >= dest.len(), "read past end");
        dest.copy_from_slice(&self.chunk()[..dest.len()]);
        self.advance(dest.len());
    }
}

/// Write-side append interface.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An immutable, cheaply-cloneable byte buffer with a read cursor.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        Bytes {
            data: src.into(),
            pos: 0,
        }
    }

    /// The unread length (alias of [`Buf::remaining`] for slice-likeness).
    pub fn len(&self) -> usize {
        self.remaining()
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unread bytes as an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end");
        self.pos += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            data: v.into(),
            pos: 0,
        }
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xAB);
        buf.put_u16_le(0x1234);
        buf.put_i64_le(-99);
        buf.put_slice(b"xyz");
        let mut bytes = buf.freeze();
        assert_eq!(bytes.remaining(), 1 + 2 + 8 + 3);
        assert_eq!(bytes.get_u8(), 0xAB);
        assert_eq!(bytes.get_u16_le(), 0x1234);
        assert_eq!(bytes.get_i64_le(), -99);
        assert_eq!(bytes.copy_to_bytes(3).to_vec(), b"xyz");
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn deref_views_unread_window() {
        let mut b = Bytes::copy_from_slice(b"hello");
        b.advance(2);
        assert_eq!(&b[..], b"llo");
        assert_eq!(b.len(), 3);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn overread_panics() {
        Bytes::copy_from_slice(&[1]).get_i64_le();
    }
}
