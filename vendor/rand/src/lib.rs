//! Offline subset of the `rand` 0.9 API (see `vendor/README.md`).
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64. The workspace only
//! relies on *deterministic, well-distributed* streams for a fixed seed —
//! never on matching upstream `StdRng` byte-for-byte — so a small,
//! well-studied generator is the right trade-off for an in-tree vendored
//! dependency.

#![forbid(unsafe_code)]

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion (the
    /// standard recommendation of the xoshiro authors).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Types usable as `random_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unbiased draw from `[0, span)` by rejection (Lemire-style widening
/// would be fine too; rejection keeps the code obvious).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty range");
                let span = (high as i128 - low as i128) as u64;
                let off = uniform_below(rng, span);
                ((low as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, usize, isize);

impl SampleUniform for u64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "random_range: empty range");
        low + uniform_below(rng, high - low)
    }
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from a half-open range.
    fn random_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool: p outside [0,1]");
        self.random::<f64>() < p
    }

    /// Deprecated rand-0.8 spelling of [`Rng::random`].
    fn r#gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Deprecated rand-0.8 spelling of [`Rng::random_range`].
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        self.random_range(range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u = rng.random_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn f64_in_unit_interval_and_balanced() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut below_half = 0u32;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            if x < 0.5 {
                below_half += 1;
            }
        }
        assert!((4_500..5_500).contains(&below_half), "{below_half}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
