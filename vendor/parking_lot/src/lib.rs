//! Offline subset of the `parking_lot` API (see `vendor/README.md`).
//!
//! Thin wrappers over `std::sync` primitives with parking_lot's
//! no-poisoning signatures: a lock held across a panic is simply
//! re-acquirable (the underlying `std` poison flag is cleared via
//! `into_inner`-free recovery on each access).

#![forbid(unsafe_code)]

use std::sync::{self, PoisonError};

/// A reader–writer lock whose guards are returned directly (no poison
/// `Result`), matching parking_lot's API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

/// Shared read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A mutex whose guard is returned directly (no poison `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// Exclusive mutex guard.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(5);
        {
            let r1 = lock.read();
            let r2 = lock.read();
            assert_eq!((*r1, *r2), (5, 5));
        }
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn locks_recover_from_poison() {
        let lock = Arc::new(Mutex::new(1));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*lock.lock(), 1, "lock usable after a panicking holder");
    }
}
