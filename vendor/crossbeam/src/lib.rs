//! Offline subset of the `crossbeam` API (see `vendor/README.md`).

#![forbid(unsafe_code)]

/// Multi-producer channels. Senders are cloneable; the receiver iterates
/// until every sender is dropped — the subset of crossbeam-channel
/// semantics the workspace relies on, backed by `std::sync::mpsc`.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, SyncSender, TryRecvError};

    /// An unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    /// A bounded (rendezvous for `cap == 0`) MPSC channel.
    pub fn bounded<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fan_in_and_drain() {
        let (tx, rx) = super::channel::unbounded();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        drop(tx);
        for h in handles {
            h.join().unwrap();
        }
        let mut got: Vec<i32> = rx.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
