//! Offline subset of the `crossbeam` API (see `vendor/README.md`).

#![forbid(unsafe_code)]

/// Multi-producer channels. Senders are cloneable; the receiver iterates
/// until every sender is dropped — the subset of crossbeam-channel
/// semantics the workspace relies on, backed by `std::sync::mpsc`.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, SyncSender, TryRecvError};

    /// An unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    /// A bounded (rendezvous for `cap == 0`) MPSC channel.
    pub fn bounded<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

/// Work-stealing deques: the subset of the `crossbeam-deque` API the
/// sampler pool's scheduler relies on. Each pool worker owns a
/// [`deque::Worker`] queue; idle workers pull from the shared
/// [`deque::Injector`] first and then try their siblings'
/// [`deque::Stealer`] handles. Backed by mutex-guarded `VecDeque`s
/// rather than lock-free ring buffers — the queues here hold batch
/// descriptors (a handful per in-flight request), not per-item work, so
/// contention is negligible and the safe implementation keeps the
/// vendor tree `forbid(unsafe_code)`.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was observed empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if the attempt succeeded.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(task) => Some(task),
                _ => None,
            }
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    fn locked<T>(queue: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        queue
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// A worker-owned FIFO queue; hand out [`Stealer`]s to let other
    /// workers take from it.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates an empty FIFO worker queue.
        pub fn new_fifo() -> Worker<T> {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Enqueues a task at the back.
        pub fn push(&self, task: T) {
            locked(&self.queue).push_back(task);
        }

        /// Dequeues the owner's next task (front, FIFO order).
        pub fn pop(&self) -> Option<T> {
            locked(&self.queue).pop_front()
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            locked(&self.queue).is_empty()
        }

        /// A handle other workers can steal through.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A cloneable handle for taking tasks from another worker's queue.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Takes the oldest task from the sibling's queue.
        pub fn steal(&self) -> Steal<T> {
            match locked(&self.queue).pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            locked(&self.queue).is_empty()
        }
    }

    /// A shared FIFO injection queue submitters push into; every worker
    /// steals from it before raiding siblings.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Injector<T> {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a task at the back.
        pub fn push(&self, task: T) {
            locked(&self.queue).push_back(task);
        }

        /// Takes the oldest injected task.
        pub fn steal(&self) -> Steal<T> {
            match locked(&self.queue).pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            locked(&self.queue).is_empty()
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Injector<T> {
            Injector::new()
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fan_in_and_drain() {
        let (tx, rx) = super::channel::unbounded();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        drop(tx);
        for h in handles {
            h.join().unwrap();
        }
        let mut got: Vec<i32> = rx.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn deque_owner_pops_fifo_and_stealers_take_the_front() {
        let w = super::deque::Worker::new_fifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal().success(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(3));
        assert!(w.pop().is_none());
        assert!(s.steal().is_empty());
        assert!(w.is_empty() && s.is_empty());
    }

    #[test]
    fn injector_fans_out_every_task_exactly_once() {
        use std::sync::Arc;
        let inj = Arc::new(super::deque::Injector::new());
        for i in 0..100 {
            inj.push(i);
        }
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let inj = Arc::clone(&inj);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(task) = inj.steal().success() {
                        got.push(task);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<i32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<i32>>());
        assert!(inj.is_empty());
    }
}
