//! Offline subset of the `criterion` API (see `vendor/README.md`).
//!
//! Benchmarks compile and run with the familiar
//! `criterion_group!`/`criterion_main!` entry points, time each closure
//! with a warmup + adaptive measurement loop, and print median ns/iter.
//! There are no statistical comparisons, plots or saved baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            measure_budget: Duration::from_millis(200),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        run_one("", &id.into(), Duration::from_millis(200), f);
    }
}

/// A named benchmark identifier (`group/function/parameter`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            full: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id from a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    measure_budget: Duration,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes statistical sample count; here it scales the
    /// measurement budget (samples × ~10ms, clamped to [50ms, 2s]).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.measure_budget = Duration::from_millis((n as u64 * 10).clamp(50, 2_000));
        self
    }

    /// Benchmarks `f` with `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&self.name, &id.full, self.measure_budget, |b| f(b, input));
        self
    }

    /// Benchmarks `f` without an input parameter.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&self.name, &id.into(), self.measure_budget, f);
        self
    }

    /// Ends the group (upstream finalizes reports here; a no-op).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    budget: Duration,
    report: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `f`, first warming up, then looping until the measurement
    /// budget is spent.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warmup + calibration: how many iterations fit in ~10% of budget?
        let calib_start = Instant::now();
        black_box(f());
        let once = calib_start.elapsed().max(Duration::from_nanos(20));
        let per_batch = (self.budget.as_nanos() / 10 / once.as_nanos()).clamp(1, 10_000) as u64;
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < self.budget && iters < 10_000_000 {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            elapsed += start.elapsed();
            iters += per_batch;
        }
        self.report = Some((iters, elapsed));
    }

    /// Times `routine` on inputs freshly produced by `setup`; only the
    /// routine is measured. The batch-size hint is ignored (each batch
    /// here is one input).
    pub fn iter_batched<I, T>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> T,
        _size: BatchSize,
    ) {
        let calib_input = setup();
        let calib_start = Instant::now();
        black_box(routine(calib_input));
        let once = calib_start.elapsed().max(Duration::from_nanos(20));
        let _ = once;
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < self.budget && iters < 1_000_000 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
            iters += 1;
        }
        self.report = Some((iters, elapsed));
    }
}

/// How much setup output to batch per measurement (accepted for API
/// compatibility; the shim always uses one input per measurement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

fn run_one(group: &str, id: &str, budget: Duration, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        budget,
        report: None,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    match b.report {
        Some((iters, elapsed)) if iters > 0 => {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            println!("{label:<50} {ns:>14.1} ns/iter  ({iters} iters)");
        }
        _ => println!("{label:<50}  (no measurement)"),
    }
}

/// Declares a benchmark group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(1); // minimum budget: keep the test fast
        let mut ran = false;
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            ran = true;
            b.iter(|| (0..n).sum::<u64>());
        });
        g.finish();
        assert!(ran);
    }
}
