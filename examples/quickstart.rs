//! Quickstart: the paper's §3 preference scenario, end to end.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Walks through the full operational-CQA pipeline on the running example
//! of the paper: an inconsistent preference relation, the support-based
//! repairing Markov chain of Example 4, the exact repair distribution of
//! Example 6, and the operational consistent answers of Example 7 —
//! contrasted with the (empty) classical certain answers.

use ocqa::prelude::*;

fn main() {
    // 1. An inconsistent database: the preference relation is supposed to
    //    be asymmetric, but a↔b and a↔c are mutual.
    let facts =
        parser::parse_facts("Pref(a,b). Pref(a,c). Pref(a,d). Pref(b,a). Pref(b,d). Pref(c,a).")
            .unwrap();
    let sigma = parser::parse_constraints("Pref(x,y), Pref(y,x) -> false.").unwrap();
    let schema = parser::infer_schema(&facts, &sigma).unwrap();
    let db = Database::from_facts(schema, facts).unwrap();

    println!("database:    {db}");
    println!("constraints: {}", sigma.constraints()[0]);
    let violations = ViolationSet::compute(&sigma, &db);
    println!("violations:  {violations}\n");

    // 2. The repairing process: justified operations at the initial state.
    let ctx = RepairContext::new(db, sigma);
    let state = RepairState::initial(ctx.clone());
    println!("justified operations at ε:");
    for op in state.extensions() {
        println!("  {op}");
    }

    // 3. Explore the repairing Markov chain of Example 4's generator: atoms
    //    with more support survive with higher probability.
    let gen = PreferenceGenerator::new();
    let dist =
        explore::repair_distribution(&ctx, &gen, &explore::ExploreOptions::default()).unwrap();
    println!("\noperational repairs (Example 6):");
    for info in dist.repairs() {
        println!(
            "  p = {} ≈ {:.4}  {}",
            info.probability,
            info.probability.to_f64(),
            info.db
        );
    }
    assert!(dist.success_mass().is_one());

    // 4. Query answering (Example 7): who is the most preferred product?
    let q = parser::parse_query("(x) <- forall y: (Pref(x,y) | x = y)").unwrap();
    println!("\nquery: {q}");
    println!("operational consistent answers:");
    for (tuple, p) in answer::operational_answers(&dist, &q) {
        println!("  {:?} with probability {} ≈ {:.2}", tuple, p, p.to_f64());
    }

    // 5. The classical baseline returns nothing.
    let repairs = ocqa::abc::subset_repairs(ctx.d0(), ctx.sigma()).unwrap();
    let certain = ocqa::abc::certain_answers(&repairs, &q);
    println!(
        "\nABC repairs: {}; classical certain answers: {:?} (empty — the \
         operational approach reports the 45% degree of certainty instead)",
        repairs.len(),
        certain
    );
}
