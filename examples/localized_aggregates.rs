//! Repair localization and aggregate answering (§6 extensions).
//!
//! Run with: `cargo run --example localized_aggregates --release`
//!
//! A key-violating relation with several independent conflicts: monolithic
//! exploration interleaves the conflicts (state count multiplies), while
//! localization explores each conflict component alone and composes the
//! exact product distribution. On top of the distribution we answer
//! COUNT-style aggregates: the expected number of answers and the full
//! answer-count distribution.

use ocqa::prelude::*;
use ocqa::workload::{KeyConflictSpec, KeyConflictWorkload};

fn main() {
    let w = KeyConflictWorkload::generate(&KeyConflictSpec {
        clean_tuples: 8,
        conflict_groups: 5,
        group_size: 2,
        value_domain: 30,
        seed: 77,
    });
    let ctx = RepairContext::new(w.db.clone(), w.sigma.clone());
    let gen = UniformGenerator::new();
    let opts = explore::ExploreOptions {
        max_states: 10_000_000,
        record_chain: false,
    };

    // Components of the conflict graph.
    let parts = localize::conflict_components(&ctx);
    println!(
        "{} facts, {} conflict components, {} clean facts",
        w.db.len(),
        parts.components.len(),
        parts.clean.len()
    );

    // Monolithic vs localized exploration.
    let t0 = std::time::Instant::now();
    let global = explore::repair_distribution(&ctx, &gen, &opts).unwrap();
    let t_global = t0.elapsed();
    let t0 = std::time::Instant::now();
    let local = localize::localized_distribution(&ctx, &gen, &opts).unwrap();
    let t_local = t0.elapsed();
    println!(
        "monolithic: {} states in {:?}; localized: {} states in {:?}",
        global.states_visited(),
        t_global,
        local.states_visited(),
        t_local
    );
    assert_eq!(global.repairs().len(), local.repairs().len());
    for info in global.repairs() {
        assert_eq!(local.probability_of(&info.db), info.probability);
    }
    println!(
        "identical distributions over {} repairs ✓",
        local.repairs().len()
    );

    // Aggregates over the repair distribution.
    let q = parser::parse_query("(x) <- exists y: R(x, y)").unwrap();
    let expected = answer::expected_count(&local, &q);
    println!(
        "\nexpected number of surviving keys: {} ≈ {:.4}",
        expected,
        expected.to_f64()
    );
    println!("answer-count distribution:");
    for (count, p) in answer::count_distribution(&local, &q) {
        println!("  |Q| = {count}: probability {} ≈ {:.4}", p, p.to_f64());
    }

    // Compare the probability-weighted CP with the equally-likely-repairs
    // measure for one conflicting key.
    let key = w.conflict_keys[0];
    let tuple = [key];
    let cp = answer::conditional_probability(&local, &q, &tuple);
    let frac = answer::uniform_repair_fraction(&local, &q, &tuple);
    println!(
        "\nconflicting key {key}: CP = {} ≈ {:.4}; equally-likely-repairs measure = {} ≈ {:.4}",
        cp,
        cp.to_f64(),
        frac,
        frac.to_f64()
    );
}
