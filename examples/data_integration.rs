//! Trust-based data integration (Example 5 of the paper).
//!
//! Run with: `cargo run --example data_integration`
//!
//! Two sources assert conflicting values for the same keys. Each fact
//! carries the reliability of its source; the trust-based repairing Markov
//! chain removes less-trusted facts with higher probability — and, unlike
//! classical CQA, also accounts (with lower probability) for the case
//! where *neither* source is right.

use ocqa::prelude::*;
use ocqa::workload::{IntegrationSpec, IntegrationWorkload};

fn main() {
    // Generate a small integration scenario: source 1 is more reliable
    // (trust 2/3) than source 0 (trust 1/3).
    let w = IntegrationWorkload::generate(&IntegrationSpec {
        entities: 5,
        sources: 2,
        conflict_percent: 70,
        seed: 42,
    });
    println!("merged database ({} facts):", w.db.len());
    for f in w.db.facts() {
        println!("  {f}   trust = {}", w.trust[&f]);
    }
    println!(
        "conflicting entities: {} of {}",
        w.conflicting_entities(),
        5
    );

    // Repair with the Example 5 generator.
    let gen = TrustGenerator::new(
        w.trust.iter().map(|(f, t)| (f.clone(), t.clone())),
        Rat::ratio(1, 2),
    );
    let ctx = RepairContext::new(w.db.clone(), w.sigma.clone());
    let dist =
        explore::repair_distribution(&ctx, &gen, &explore::ExploreOptions::default()).unwrap();

    println!("\nrepair distribution ({} repairs):", dist.repairs().len());
    for info in dist.repairs() {
        println!(
            "  p ≈ {:.4}  {} facts kept",
            info.probability.to_f64(),
            info.db.len()
        );
    }

    // Per-fact survival probabilities: trustworthy facts survive more.
    println!("\nper-fact survival probability:");
    for f in w.db.facts() {
        let survival: Rat = dist
            .repairs()
            .iter()
            .filter(|r| r.db.contains(&f))
            .map(|r| r.probability.clone())
            .sum();
        println!(
            "  {f}   trust {}  →  survives with p ≈ {:.4}",
            w.trust[&f],
            survival.to_f64()
        );
    }

    // Ask which value each entity ends up with, with probabilities.
    let q = parser::parse_query("(x, y) <- R(x, y)").unwrap();
    println!("\noperational consistent answers for R(x,y):");
    for (tuple, p) in answer::operational_answers(&dist, &q) {
        println!(
            "  R({},{}) with probability ≈ {:.4}",
            tuple[0],
            tuple[1],
            p.to_f64()
        );
    }
}
