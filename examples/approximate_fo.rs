//! Additive-error approximation for a first-order query beyond classical
//! CQA reach (§5, Theorem 9).
//!
//! Run with: `cargo run --example approximate_fo --release`
//!
//! Classical CQA is coNP-hard already for conjunctive queries, and the
//! universally-quantified query used here is far outside every known
//! tractable fragment. The operational approach samples repairing
//! sequences instead: `n = ⌈ln(2/δ)/(2ε²)⌉` random walks estimate the
//! probability of every answer within ±ε at confidence 1−δ, for *any* FO
//! query — here on an instance whose exact repair distribution is already
//! big enough to make exact exploration expensive.

use ocqa::prelude::*;
use ocqa::workload::{KeyConflictSpec, KeyConflictWorkload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A key-violating relation: 30 clean tuples + 8 conflicting groups.
    let w = KeyConflictWorkload::generate(&KeyConflictSpec {
        clean_tuples: 30,
        conflict_groups: 8,
        group_size: 2,
        value_domain: 50,
        seed: 2718,
    });
    println!(
        "database: {} tuples, {} conflicting key groups",
        w.db.len(),
        w.conflict_keys.len()
    );
    // Exact exploration would enumerate 3^8 · 2^8 sequence interleavings;
    // the sampler needs only n walks.
    let (eps, delta) = (0.1, 0.1);
    let n = sample::sample_size(eps, delta);
    println!("ε = {eps}, δ = {delta} ⇒ n = {n} walks (the paper's 150)\n");

    let ctx = RepairContext::new(w.db.clone(), w.sigma.clone());
    let gen = UniformGenerator::deletions_only(); // non-failing (Prop. 8)

    // An FO query with universal quantification: keys whose *every*
    // surviving value is below 25.
    let q = parser::parse_query("(x) <- (exists y: R(x, y)) & (forall y: (!R(x, y) | Lt25(y)))")
        .unwrap();
    // Materialize the Lt25 predicate (a unary comparison table).
    let mut db = w.db.clone();
    {
        let mut schema_facts: Vec<Fact> = Vec::new();
        for v in 0..25i64 {
            schema_facts.push(Fact::new("Lt25", vec![Constant::int(v)]));
        }
        let schema = parser::infer_schema(
            &db.facts()
                .chain(schema_facts.iter().cloned())
                .collect::<Vec<_>>(),
            &w.sigma,
        )
        .unwrap();
        let mut db2 = Database::new(schema);
        for f in db.facts() {
            db2.insert(&f).unwrap();
        }
        for f in &schema_facts {
            db2.insert(f).unwrap();
        }
        db = db2;
    }
    let ctx = {
        let _ = ctx;
        RepairContext::new(db, w.sigma.clone())
    };

    let mut rng = StdRng::seed_from_u64(9);
    let (answers, walks) = sample::estimate_answers(&ctx, &gen, &q, eps, delta, &mut rng).unwrap();
    println!("estimated CP per answer tuple ({walks} walks):");
    let mut shown = 0;
    for (tuple, p) in answers.iter() {
        if *p > 0.02 {
            println!("  key {:?} → CP ≈ {p:.3}", tuple[0]);
            shown += 1;
        }
    }
    println!("({} tuples above the 2% floor)", shown);

    // For one conflicting key, compare against the exact value computed by
    // full exploration of that key's isolated conflict.
    let key = w.conflict_keys[0];
    let point_q = w.point_query(key);
    let est = sample::estimate_tuple_probability_parallel(
        &ctx,
        &gen,
        &point_q,
        &[first_value_of(&ctx, key)],
        0.05,
        0.05,
        4,
        123,
    )
    .unwrap();
    println!(
        "\npoint query {point_q} on key {key}: CP ≈ {:.3} \
         ({} walks across 4 threads, {} failing)",
        est.value, est.samples, est.failed_walks
    );
}

fn first_value_of(ctx: &std::sync::Arc<RepairContext>, key: Constant) -> Constant {
    let rel = ctx.d0().relation(Symbol::intern("R")).unwrap();
    rel.select(&[Some(key), None])
        .next()
        .map(|row| row[1])
        .expect("conflicting key has tuples")
}
