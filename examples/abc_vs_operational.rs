//! Side-by-side comparison of the classical (ABC) and operational
//! semantics on one instance (Proposition 4 in action).
//!
//! Run with: `cargo run --example abc_vs_operational`

use ocqa::prelude::*;

fn main() {
    let facts = parser::parse_facts(
        "Emp(e1, sales). Emp(e1, hr). Emp(e2, sales). Emp(e3, hr). Dept(sales). Dept(hr).",
    )
    .unwrap();
    let sigma = parser::parse_constraints("Emp(x,y), Emp(x,z) -> y = z.").unwrap();
    let schema = parser::infer_schema(&facts, &sigma).unwrap();
    let db = Database::from_facts(schema, facts).unwrap();
    println!("database: {db}");
    println!(
        "constraint: {} (employee works in one department)\n",
        sigma.constraints()[0]
    );

    // Classical semantics.
    let repairs = ocqa::abc::subset_repairs(&db, &sigma).unwrap();
    println!("ABC repairs ({}):", repairs.len());
    for r in &repairs {
        println!("  {r}");
    }
    let q = parser::parse_query("(x) <- exists d: (Emp(x, d) & Dept(d))").unwrap();
    println!("\nquery: {q}");
    println!(
        "classical certain answers: {:?}",
        ocqa::abc::certain_answers(&repairs, &q)
    );

    // Operational semantics under the uniform generator.
    let ctx = RepairContext::new(db, sigma);
    let dist = explore::repair_distribution(
        &ctx,
        &UniformGenerator::new(),
        &explore::ExploreOptions::default(),
    )
    .unwrap();
    println!(
        "\noperational repairs under M^u_Σ ({}): note the extra repair that \
         deletes BOTH conflicting tuples —",
        dist.repairs().len()
    );
    for info in dist.repairs() {
        println!("  p = {}  {}", info.probability, info.db);
    }

    println!("\noperational consistent answers (degrees of certainty):");
    for (tuple, p) in answer::operational_answers(&dist, &q) {
        println!("  {} → {} ≈ {:.3}", tuple[0], p, p.to_f64());
    }

    // Proposition 4: every ABC repair is an operational repair.
    for r in &repairs {
        assert!(dist.probability_of(r).is_positive());
    }
    println!("\nProposition 4 verified: every ABC repair has positive operational probability.");

    // The §6 "equally likely repairs" measure for comparison.
    println!("\nrepair-fraction measure (every ABC repair equally likely):");
    for name in ["e1", "e2", "e3"] {
        let frac = ocqa::abc::repair_fraction(&repairs, &q, &[Constant::named(name)]);
        println!("  {name} → {frac}");
    }
}
