//! Per-relation tuple storage with column indexes.

use crate::Constant;
use std::collections::HashMap;

/// Storage for the tuples of one relation, with per-column posting lists.
///
/// Layout:
/// * `rows` — append-only slots; deleted rows become tombstones (`None`);
/// * `lookup` — tuple → slot, for O(1) membership and deletion;
/// * `cols[i]` — posting lists mapping each constant appearing in column
///   `i` to the slots that contain it. Lists may hold stale slot ids of
///   tombstoned rows; readers re-validate against `rows`, and the store
///   compacts itself once tombstones outnumber live rows.
///
/// The posting lists are what make violation detection fast: the
/// homomorphism engine looks up bound columns instead of scanning (an
/// ablation of this choice is benchmarked in `ocqa-bench`).
#[derive(Clone, Debug)]
pub struct RelationStore {
    arity: usize,
    rows: Vec<Option<Box<[Constant]>>>,
    lookup: HashMap<Box<[Constant]>, u32>,
    cols: Vec<HashMap<Constant, Vec<u32>>>,
    live: usize,
}

impl RelationStore {
    /// Creates an empty store for tuples of the given arity.
    pub fn new(arity: usize) -> Self {
        RelationStore {
            arity,
            rows: Vec::new(),
            lookup: HashMap::new(),
            cols: (0..arity).map(|_| HashMap::new()).collect(),
            live: 0,
        }
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Whether the tuple is present.
    pub fn contains(&self, tuple: &[Constant]) -> bool {
        self.lookup.contains_key(tuple)
    }

    /// Inserts a tuple; returns `false` if it was already present.
    ///
    /// # Panics
    /// Panics if the tuple has the wrong arity.
    pub fn insert(&mut self, tuple: &[Constant]) -> bool {
        assert_eq!(tuple.len(), self.arity, "tuple arity mismatch");
        if self.lookup.contains_key(tuple) {
            return false;
        }
        let slot = self.rows.len() as u32;
        let boxed: Box<[Constant]> = tuple.into();
        self.rows.push(Some(boxed.clone()));
        self.lookup.insert(boxed, slot);
        for (i, c) in tuple.iter().enumerate() {
            self.cols[i].entry(*c).or_default().push(slot);
        }
        self.live += 1;
        true
    }

    /// Removes a tuple; returns `false` if it was not present.
    pub fn remove(&mut self, tuple: &[Constant]) -> bool {
        match self.lookup.remove(tuple) {
            None => false,
            Some(slot) => {
                self.rows[slot as usize] = None;
                self.live -= 1;
                // Postings for `slot` become stale; compact when the
                // garbage outweighs the data.
                if self.rows.len() >= 16 && self.live * 2 < self.rows.len() {
                    self.compact();
                }
                true
            }
        }
    }

    /// Rebuilds storage without tombstones or stale postings.
    fn compact(&mut self) {
        let old_rows = std::mem::take(&mut self.rows);
        self.lookup.clear();
        for col in &mut self.cols {
            col.clear();
        }
        self.live = 0;
        for row in old_rows.into_iter().flatten() {
            let slot = self.rows.len() as u32;
            self.lookup.insert(row.clone(), slot);
            for (i, c) in row.iter().enumerate() {
                self.cols[i].entry(*c).or_default().push(slot);
            }
            self.rows.push(Some(row));
            self.live += 1;
        }
    }

    /// Iterates over live tuples in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &[Constant]> + '_ {
        self.rows.iter().filter_map(|r| r.as_deref())
    }

    /// Iterates over live tuples matching a binding pattern:
    /// `pattern[i] = Some(c)` requires column `i` to equal `c`.
    ///
    /// Uses the shortest posting list among bound columns as the access
    /// path, re-validating candidates against the pattern; with no bound
    /// column this degenerates to a scan.
    ///
    /// # Panics
    /// Panics if the pattern has the wrong arity.
    pub fn select<'a>(
        &'a self,
        pattern: &'a [Option<Constant>],
    ) -> Box<dyn Iterator<Item = &'a [Constant]> + 'a> {
        assert_eq!(pattern.len(), self.arity, "pattern arity mismatch");
        // Choose the most selective bound column.
        let mut best: Option<&[u32]> = None;
        for (i, p) in pattern.iter().enumerate() {
            if let Some(c) = p {
                match self.cols[i].get(c) {
                    None => return Box::new(std::iter::empty()),
                    Some(list) => {
                        if best.is_none_or(|b| list.len() < b.len()) {
                            best = Some(list);
                        }
                    }
                }
            }
        }
        let matches = move |row: &[Constant]| {
            pattern
                .iter()
                .zip(row.iter())
                .all(|(p, c)| p.is_none_or(|p| p == *c))
        };
        match best {
            Some(list) => Box::new(
                list.iter()
                    .filter_map(move |&slot| self.rows[slot as usize].as_deref())
                    .filter(move |row| matches(row)),
            ),
            None => Box::new(self.iter().filter(move |row| matches(row))),
        }
    }

    /// Counts tuples matching a binding pattern.
    pub fn count(&self, pattern: &[Option<Constant>]) -> usize {
        self.select(pattern).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Constant as C;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn t(vals: &[i64]) -> Vec<C> {
        vals.iter().map(|&v| C::int(v)).collect()
    }

    #[test]
    fn insert_remove_contains() {
        let mut r = RelationStore::new(2);
        assert!(r.insert(&t(&[1, 2])));
        assert!(!r.insert(&t(&[1, 2])), "duplicate insert rejected");
        assert!(r.contains(&t(&[1, 2])));
        assert_eq!(r.len(), 1);
        assert!(r.remove(&t(&[1, 2])));
        assert!(!r.remove(&t(&[1, 2])));
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        RelationStore::new(2).insert(&t(&[1]));
    }

    #[test]
    fn select_by_column() {
        let mut r = RelationStore::new(2);
        for (a, b) in [(1, 2), (1, 3), (2, 3), (3, 1)] {
            r.insert(&t(&[a, b]));
        }
        let got: BTreeSet<Vec<C>> = r
            .select(&[Some(C::int(1)), None])
            .map(|row| row.to_vec())
            .collect();
        assert_eq!(got, BTreeSet::from([t(&[1, 2]), t(&[1, 3])]));
        // Fully bound pattern.
        assert_eq!(r.count(&[Some(C::int(2)), Some(C::int(3))]), 1);
        // Unbound pattern scans everything.
        assert_eq!(r.count(&[None, None]), 4);
        // Constant not present anywhere: short-circuits.
        assert_eq!(r.count(&[Some(C::int(99)), None]), 0);
    }

    #[test]
    fn select_after_removals_sees_no_ghosts() {
        let mut r = RelationStore::new(2);
        for b in 0..10 {
            r.insert(&t(&[1, b]));
        }
        for b in 0..5 {
            r.remove(&t(&[1, b]));
        }
        let got: Vec<i64> = r
            .select(&[Some(C::int(1)), None])
            .map(|row| match row[1] {
                C::Int(v) => v,
                _ => unreachable!(),
            })
            .collect();
        let got: BTreeSet<i64> = got.into_iter().collect();
        assert_eq!(got, BTreeSet::from([5, 6, 7, 8, 9]));
    }

    #[test]
    fn compaction_preserves_contents() {
        let mut r = RelationStore::new(1);
        for v in 0..100 {
            r.insert(&t(&[v]));
        }
        // Remove most rows to trigger compaction repeatedly.
        for v in 0..90 {
            r.remove(&t(&[v]));
        }
        assert_eq!(r.len(), 10);
        let got: BTreeSet<Vec<C>> = r.iter().map(|row| row.to_vec()).collect();
        let want: BTreeSet<Vec<C>> = (90..100).map(|v| t(&[v])).collect();
        assert_eq!(got, want);
        // Reinsertion after compaction works.
        assert!(r.insert(&t(&[5])));
        assert!(r.contains(&t(&[5])));
    }

    proptest! {
        /// The store behaves like a set of tuples under arbitrary edit scripts.
        #[test]
        fn prop_matches_btreeset_model(script in prop::collection::vec((any::<bool>(), 0i64..8, 0i64..8), 0..200)) {
            let mut store = RelationStore::new(2);
            let mut model: BTreeSet<Vec<C>> = BTreeSet::new();
            for (insert, a, b) in script {
                let tuple = t(&[a, b]);
                if insert {
                    prop_assert_eq!(store.insert(&tuple), model.insert(tuple));
                } else {
                    prop_assert_eq!(store.remove(&tuple), model.remove(&tuple));
                }
                prop_assert_eq!(store.len(), model.len());
            }
            let got: BTreeSet<Vec<C>> = store.iter().map(|r| r.to_vec()).collect();
            prop_assert_eq!(&got, &model);
            // Every single-column selection agrees with the model.
            for v in 0..8 {
                let want: BTreeSet<Vec<C>> = model.iter().filter(|r| r[0] == C::int(v)).cloned().collect();
                let got: BTreeSet<Vec<C>> = store.select(&[Some(C::int(v)), None]).map(|r| r.to_vec()).collect();
                prop_assert_eq!(got, want);
            }
        }
    }
}
