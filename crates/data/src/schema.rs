//! Relational schemas.

use crate::{Fact, Symbol};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A relational schema **S**: a finite set of relation symbols with
/// associated arities (§2 of the paper).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    arities: BTreeMap<Symbol, usize>,
}

/// Error raised when facts or declarations do not fit a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// The predicate is not declared in the schema.
    UnknownRelation(Symbol),
    /// The fact's arity differs from the declared arity.
    ArityMismatch {
        /// Predicate involved.
        relation: Symbol,
        /// Arity declared in the schema.
        declared: usize,
        /// Arity actually used.
        used: usize,
    },
    /// A relation was declared twice with different arities.
    ConflictingDeclaration(Symbol),
    /// Relations must have arity at least one (facts are `R/n` with `n > 0`).
    ZeroArity(Symbol),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            SchemaError::ArityMismatch {
                relation,
                declared,
                used,
            } => write!(
                f,
                "arity mismatch for {relation}: declared {declared}, used {used}"
            ),
            SchemaError::ConflictingDeclaration(r) => {
                write!(f, "conflicting arity declarations for {r}")
            }
            SchemaError::ZeroArity(r) => write!(f, "relation {r} declared with arity 0"),
        }
    }
}

impl std::error::Error for SchemaError {}

impl Schema {
    /// Starts building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder {
            arities: BTreeMap::new(),
            error: None,
        }
    }

    /// Builds a schema directly from `(name, arity)` pairs.
    ///
    /// # Panics
    /// Panics on conflicting or zero-arity declarations; use
    /// [`Schema::builder`] for fallible construction.
    pub fn from_relations(rels: &[(&str, usize)]) -> Arc<Schema> {
        let mut b = Schema::builder();
        for (name, arity) in rels {
            b = b.relation(name, *arity);
        }
        b.build().expect("invalid schema declaration")
    }

    /// The declared arity of `rel`, if present.
    pub fn arity(&self, rel: Symbol) -> Option<usize> {
        self.arities.get(&rel).copied()
    }

    /// Whether `rel` is declared.
    pub fn contains(&self, rel: Symbol) -> bool {
        self.arities.contains_key(&rel)
    }

    /// Iterates over `(relation, arity)` pairs in name order.
    pub fn relations(&self) -> impl Iterator<Item = (Symbol, usize)> + '_ {
        self.arities.iter().map(|(&r, &a)| (r, a))
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.arities.len()
    }

    /// Whether the schema declares no relations.
    pub fn is_empty(&self) -> bool {
        self.arities.is_empty()
    }

    /// Validates a fact against the schema.
    pub fn validate(&self, fact: &Fact) -> Result<(), SchemaError> {
        match self.arity(fact.pred()) {
            None => Err(SchemaError::UnknownRelation(fact.pred())),
            Some(a) if a != fact.arity() => Err(SchemaError::ArityMismatch {
                relation: fact.pred(),
                declared: a,
                used: fact.arity(),
            }),
            Some(_) => Ok(()),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (r, a) in self.relations() {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{r}/{a}")?;
            first = false;
        }
        Ok(())
    }
}

/// Incremental, fallible [`Schema`] construction.
pub struct SchemaBuilder {
    arities: BTreeMap<Symbol, usize>,
    error: Option<SchemaError>,
}

impl SchemaBuilder {
    /// Declares relation `name` with the given arity.
    pub fn relation(mut self, name: &str, arity: usize) -> Self {
        if self.error.is_some() {
            return self;
        }
        let sym = Symbol::intern(name);
        if arity == 0 {
            self.error = Some(SchemaError::ZeroArity(sym));
            return self;
        }
        match self.arities.get(&sym) {
            Some(&a) if a != arity => {
                self.error = Some(SchemaError::ConflictingDeclaration(sym));
            }
            _ => {
                self.arities.insert(sym, arity);
            }
        }
        self
    }

    /// Finishes construction.
    pub fn build(self) -> Result<Arc<Schema>, SchemaError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(Arc::new(Schema {
                arities: self.arities,
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let s = Schema::from_relations(&[("R", 2), ("S", 3)]);
        assert_eq!(s.arity(Symbol::intern("R")), Some(2));
        assert_eq!(s.arity(Symbol::intern("S")), Some(3));
        assert_eq!(s.arity(Symbol::intern("T")), None);
        assert_eq!(s.len(), 2);
        assert_eq!(s.to_string(), "R/2, S/3");
    }

    #[test]
    fn validate_facts() {
        let s = Schema::from_relations(&[("R", 2)]);
        assert!(s.validate(&Fact::parts("R", &["a", "b"])).is_ok());
        assert_eq!(
            s.validate(&Fact::parts("R", &["a"])),
            Err(SchemaError::ArityMismatch {
                relation: Symbol::intern("R"),
                declared: 2,
                used: 1
            })
        );
        assert_eq!(
            s.validate(&Fact::parts("T", &["a"])),
            Err(SchemaError::UnknownRelation(Symbol::intern("T")))
        );
    }

    #[test]
    fn conflicting_declaration_rejected() {
        let err = Schema::builder()
            .relation("R", 2)
            .relation("R", 3)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            SchemaError::ConflictingDeclaration(Symbol::intern("R"))
        );
        // Redeclaring with the same arity is fine.
        assert!(Schema::builder()
            .relation("R", 2)
            .relation("R", 2)
            .build()
            .is_ok());
    }

    #[test]
    fn zero_arity_rejected() {
        let err = Schema::builder().relation("R", 0).build().unwrap_err();
        assert_eq!(err, SchemaError::ZeroArity(Symbol::intern("R")));
    }
}
