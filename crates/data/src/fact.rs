//! Ground facts.

use crate::{Constant, Symbol};
use std::fmt;

/// A fact `R(c₁, …, cₙ)`: a predicate applied to constants.
///
/// Facts are small immutable values ordered first by predicate name and
/// then lexicographically by arguments, giving every database a canonical
/// listing (used to key operational repairs by their instance).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fact {
    pred: Symbol,
    args: Box<[Constant]>,
}

impl Fact {
    /// Builds a fact from a predicate symbol and arguments.
    pub fn new(pred: impl Into<Symbol>, args: impl Into<Vec<Constant>>) -> Fact {
        Fact {
            pred: pred.into(),
            args: args.into().into_boxed_slice(),
        }
    }

    /// Convenience constructor from string-ish parts:
    /// `Fact::parts("Pref", &["a", "b"])`.
    pub fn parts(pred: &str, args: &[&str]) -> Fact {
        Fact::new(
            Symbol::intern(pred),
            args.iter().map(|a| Constant::named(a)).collect::<Vec<_>>(),
        )
    }

    /// The predicate symbol.
    pub fn pred(&self) -> Symbol {
        self.pred
    }

    /// The argument tuple.
    pub fn args(&self) -> &[Constant] {
        &self.args
    }

    /// The arity of the fact.
    pub fn arity(&self) -> usize {
        self.args.len()
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{a}")?;
        }
        f.write_str(")")
    }
}

impl fmt::Debug for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fact({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrip() {
        let f = Fact::parts("Pref", &["a", "b"]);
        assert_eq!(f.to_string(), "Pref(a,b)");
        assert_eq!(f.pred().as_str(), "Pref");
        assert_eq!(f.arity(), 2);
    }

    #[test]
    fn mixed_constants() {
        let f = Fact::new("R", vec![Constant::int(1), Constant::named("x")]);
        assert_eq!(f.to_string(), "R(1,x)");
    }

    #[test]
    fn equality_structural() {
        assert_eq!(Fact::parts("R", &["a"]), Fact::parts("R", &["a"]));
        assert_ne!(Fact::parts("R", &["a"]), Fact::parts("R", &["b"]));
        assert_ne!(Fact::parts("R", &["a"]), Fact::parts("S", &["a"]));
    }

    #[test]
    fn canonical_order() {
        let mut v = [
            Fact::parts("S", &["a"]),
            Fact::parts("R", &["b"]),
            Fact::parts("R", &["a"]),
        ];
        v.sort();
        assert_eq!(
            v.iter().map(|f| f.to_string()).collect::<Vec<_>>(),
            ["R(a)", "R(b)", "S(a)"]
        );
    }
}
