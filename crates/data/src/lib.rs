//! Relational storage engine for operational consistent query answering.
//!
//! The PODS 2018 operational-CQA framework constantly re-evaluates
//! constraint bodies against evolving databases: every step of a repairing
//! sequence enumerates violations (homomorphisms from constraint bodies into
//! the current instance), and the `Sample` walk of §5 repeats this thousands
//! of times. This crate provides the storage layer those loops run on:
//!
//! * [`Symbol`] — a global string interner, so predicate and constant names
//!   are word-sized copyable handles;
//! * [`Constant`] — typed database constants (interned strings or integers);
//! * [`Fact`] — a ground atom `R(c₁,…,cₙ)`;
//! * [`Schema`] — relation declarations with arities;
//! * [`RelationStore`] — one relation's tuples with per-column posting-list
//!   indexes, incrementally maintained under inserts and deletes;
//! * [`Database`] — a schema-validated set of facts with an active-domain
//!   tracker (`dom(D)` of the paper, maintained by reference counting).
//!
//! Databases are value types: cloning snapshots the full state, which the
//! repairing-sequence machinery uses for the paper's *global justification*
//! re-checks (Definition 4, condition 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod database;
mod fact;
mod relation;
mod schema;
mod symbol;
mod value;

pub use database::Database;
pub use fact::Fact;
pub use relation::RelationStore;
pub use schema::{Schema, SchemaBuilder, SchemaError};
pub use symbol::Symbol;
pub use value::Constant;
