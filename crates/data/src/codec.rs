//! Binary snapshot format for databases.
//!
//! Repair experiments want to persist inconsistent instances, repairs and
//! sampled worlds without re-parsing text. The format is a small, versioned
//! length-prefixed encoding:
//!
//! ```text
//! "OCQA" | u16 version | varint #relations
//!   per relation: varint name-len | name bytes | varint arity
//!                 varint #rows | rows (arity constants each)
//! constant: 0x00 i64-LE           (integer)
//!           0x01 varint len bytes (interned name, UTF-8)
//! ```
//!
//! Varints are LEB128. Decoding validates the magic, version, UTF-8 and
//! schema (arities) and rejects trailing bytes, so a truncated or corrupt
//! snapshot never produces a half-loaded database.

use crate::{Constant, Database, Fact, Schema, SchemaError, Symbol};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

const MAGIC: &[u8; 4] = b"OCQA";
const VERSION: u16 = 1;

/// Errors raised while decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input does not start with the `OCQA` magic.
    BadMagic,
    /// The snapshot version is newer than this library understands.
    UnsupportedVersion(u16),
    /// The input ended mid-structure.
    UnexpectedEof,
    /// A varint exceeded 64 bits.
    VarintOverflow,
    /// A name was not valid UTF-8.
    InvalidUtf8,
    /// An unknown constant tag byte.
    BadTag(u8),
    /// The decoded facts conflicted with the decoded schema.
    Schema(SchemaError),
    /// Extra bytes followed a well-formed snapshot.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not an OCQA snapshot (bad magic)"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            CodecError::UnexpectedEof => write!(f, "snapshot truncated"),
            CodecError::VarintOverflow => write!(f, "varint overflow"),
            CodecError::InvalidUtf8 => write!(f, "invalid UTF-8 in name"),
            CodecError::BadTag(t) => write!(f, "unknown constant tag {t:#x}"),
            CodecError::Schema(e) => write!(f, "schema error: {e}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after snapshot"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<SchemaError> for CodecError {
    fn from(e: SchemaError) -> Self {
        CodecError::Schema(e)
    }
}

/// Appends a LEB128 varint. Public as a **wire primitive**: storage
/// layers (`ocqa-store`) frame their own records around the codec's
/// database/fact payloads and must agree with it byte-for-byte.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads a LEB128 varint (inverse of [`put_varint`]).
pub fn get_varint(buf: &mut Bytes) -> Result<u64, CodecError> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(CodecError::UnexpectedEof);
        }
        let byte = buf.get_u8();
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(CodecError::VarintOverflow);
        }
        out |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

/// Appends a length-prefixed UTF-8 string (wire primitive).
pub fn put_name(buf: &mut BytesMut, name: &str) {
    put_varint(buf, name.len() as u64);
    buf.put_slice(name.as_bytes());
}

/// Reads a length-prefixed UTF-8 string (inverse of [`put_name`]).
pub fn get_name(buf: &mut Bytes) -> Result<String, CodecError> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(CodecError::UnexpectedEof);
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| CodecError::InvalidUtf8)
}

/// Appends one tagged constant (wire primitive).
pub fn put_constant(buf: &mut BytesMut, c: Constant) {
    match c {
        Constant::Int(v) => {
            buf.put_u8(0x00);
            buf.put_i64_le(v);
        }
        Constant::Sym(s) => {
            buf.put_u8(0x01);
            put_name(buf, s.as_str());
        }
    }
}

/// Reads one tagged constant (inverse of [`put_constant`]).
pub fn get_constant(buf: &mut Bytes) -> Result<Constant, CodecError> {
    if !buf.has_remaining() {
        return Err(CodecError::UnexpectedEof);
    }
    match buf.get_u8() {
        0x00 => {
            if buf.remaining() < 8 {
                return Err(CodecError::UnexpectedEof);
            }
            Ok(Constant::Int(buf.get_i64_le()))
        }
        0x01 => Ok(Constant::named(&get_name(buf)?)),
        tag => Err(CodecError::BadTag(tag)),
    }
}

/// Serializes a database (schema + all facts) into a snapshot.
pub fn encode_database(db: &Database) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + db.len() * 16);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    let relations: Vec<(Symbol, usize)> = db.schema().relations().collect();
    put_varint(&mut buf, relations.len() as u64);
    for (rel, arity) in relations {
        put_name(&mut buf, rel.as_str());
        put_varint(&mut buf, arity as u64);
        let store = db.relation(rel).expect("declared relation exists");
        put_varint(&mut buf, store.len() as u64);
        for row in store.iter() {
            for &c in row {
                put_constant(&mut buf, c);
            }
        }
    }
    buf.freeze()
}

/// Decodes a snapshot produced by [`encode_database`].
pub fn decode_database(input: &[u8]) -> Result<Database, CodecError> {
    let mut buf = Bytes::copy_from_slice(input);
    if buf.remaining() < 4 || &buf.copy_to_bytes(4)[..] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    if buf.remaining() < 2 {
        return Err(CodecError::UnexpectedEof);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let nrel = get_varint(&mut buf)? as usize;
    let mut builder = Schema::builder();
    // Rows are decoded eagerly but inserted only after the schema is
    // sealed, so arity validation applies to every fact.
    let mut rows: Vec<(Symbol, usize, Vec<Vec<Constant>>)> = Vec::with_capacity(nrel);
    for _ in 0..nrel {
        let name = get_name(&mut buf)?;
        let arity = get_varint(&mut buf)? as usize;
        builder = builder.relation(&name, arity);
        let count = get_varint(&mut buf)?;
        let mut rel_rows = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let mut row = Vec::with_capacity(arity);
            for _ in 0..arity {
                row.push(get_constant(&mut buf)?);
            }
            rel_rows.push(row);
        }
        rows.push((Symbol::intern(&name), arity, rel_rows));
    }
    if buf.has_remaining() {
        return Err(CodecError::TrailingBytes(buf.remaining()));
    }
    let schema = builder.build()?;
    let mut db = Database::new(schema);
    for (rel, _arity, rel_rows) in rows {
        for row in rel_rows {
            db.insert(&Fact::new(rel, row))?;
        }
    }
    Ok(db)
}

/// Appends one schema-less fact: predicate name, arity, constants
/// (wire primitive).
pub fn put_fact(buf: &mut BytesMut, f: &Fact) {
    put_name(buf, f.pred().as_str());
    put_varint(buf, f.arity() as u64);
    for &c in f.args() {
        put_constant(buf, c);
    }
}

/// Reads one schema-less fact (inverse of [`put_fact`]).
pub fn get_fact(buf: &mut Bytes) -> Result<Fact, CodecError> {
    let name = get_name(buf)?;
    let arity = get_varint(buf)? as usize;
    let mut args = Vec::with_capacity(arity);
    for _ in 0..arity {
        args.push(get_constant(buf)?);
    }
    Ok(Fact::new(Symbol::intern(&name), args))
}

/// Serializes a bare fact list (for deletion sets, answer materializations
/// and similar artifacts that carry no schema).
pub fn encode_facts(facts: &[Fact]) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + facts.len() * 16);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    put_varint(&mut buf, facts.len() as u64);
    for f in facts {
        put_fact(&mut buf, f);
    }
    buf.freeze()
}

/// Decodes a fact list produced by [`encode_facts`].
pub fn decode_facts(input: &[u8]) -> Result<Vec<Fact>, CodecError> {
    let mut buf = Bytes::copy_from_slice(input);
    if buf.remaining() < 4 || &buf.copy_to_bytes(4)[..] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    if buf.remaining() < 2 {
        return Err(CodecError::UnexpectedEof);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let count = get_varint(&mut buf)? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(get_fact(&mut buf)?);
    }
    if buf.has_remaining() {
        return Err(CodecError::TrailingBytes(buf.remaining()));
    }
    Ok(out)
}

/// Serializes an **update delta** — the facts a mutation added and the
/// facts it removed — as one self-contained record. This is the
/// incremental counterpart of [`encode_database`]: a write-ahead log can
/// journal each catalog update as one delta instead of re-encoding the
/// whole database, and replaying the deltas over a base snapshot
/// reconstructs the exact post-update fact set.
pub fn encode_delta(added: &[Fact], removed: &[Fact]) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + (added.len() + removed.len()) * 16);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    for list in [added, removed] {
        put_varint(&mut buf, list.len() as u64);
        for f in list {
            put_fact(&mut buf, f);
        }
    }
    buf.freeze()
}

/// Decodes a delta produced by [`encode_delta`], returning
/// `(added, removed)`.
pub fn decode_delta(input: &[u8]) -> Result<(Vec<Fact>, Vec<Fact>), CodecError> {
    let mut buf = Bytes::copy_from_slice(input);
    if buf.remaining() < 4 || &buf.copy_to_bytes(4)[..] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    if buf.remaining() < 2 {
        return Err(CodecError::UnexpectedEof);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let mut lists: [Vec<Fact>; 2] = [Vec::new(), Vec::new()];
    for list in &mut lists {
        let count = get_varint(&mut buf)? as usize;
        list.reserve(count);
        for _ in 0..count {
            list.push(get_fact(&mut buf)?);
        }
    }
    if buf.has_remaining() {
        return Err(CodecError::TrailingBytes(buf.remaining()));
    }
    let [added, removed] = lists;
    Ok((added, removed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_db() -> Database {
        let schema = Schema::from_relations(&[("R", 2), ("S", 1)]);
        let mut db = Database::new(schema);
        db.insert(&Fact::new(
            "R",
            vec![Constant::named("alpha"), Constant::int(-7)],
        ))
        .unwrap();
        db.insert(&Fact::new("R", vec![Constant::int(1), Constant::int(2)]))
            .unwrap();
        db.insert(&Fact::new("S", vec![Constant::named("日本語")]))
            .unwrap();
        db
    }

    #[test]
    fn database_roundtrip() {
        let db = sample_db();
        let bytes = encode_database(&db);
        let decoded = decode_database(&bytes).unwrap();
        assert!(db.same_facts(&decoded));
        assert_eq!(db.schema().as_ref(), decoded.schema().as_ref());
    }

    #[test]
    fn empty_database_roundtrip() {
        let db = Database::new(Schema::from_relations(&[("R", 3)]));
        let decoded = decode_database(&encode_database(&db)).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(decoded.schema().arity(Symbol::intern("R")), Some(3));
    }

    #[test]
    fn fact_list_roundtrip() {
        let facts = vec![
            Fact::parts("Pref", &["a", "b"]),
            Fact::new("R", vec![Constant::int(i64::MIN), Constant::int(i64::MAX)]),
        ];
        let decoded = decode_facts(&encode_facts(&facts)).unwrap();
        assert_eq!(facts, decoded);
    }

    #[test]
    fn delta_roundtrip() {
        let added = vec![
            Fact::parts("R", &["a", "b"]),
            Fact::new("R", vec![Constant::int(7), Constant::int(-7)]),
        ];
        let removed = vec![Fact::parts("S", &["gone"])];
        let bytes = encode_delta(&added, &removed);
        assert_eq!(decode_delta(&bytes).unwrap(), (added, removed));
        // Empty deltas (a no-op journal record) round-trip too.
        let bytes = encode_delta(&[], &[]);
        assert_eq!(decode_delta(&bytes).unwrap(), (vec![], vec![]));
    }

    #[test]
    fn delta_truncations_rejected() {
        let added = vec![Fact::parts("R", &["a", "b"])];
        let removed = vec![Fact::parts("R", &["c", "d"])];
        let bytes = encode_delta(&added, &removed);
        for cut in 1..bytes.len() {
            let err = decode_delta(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CodecError::BadMagic | CodecError::UnexpectedEof),
                "cut at {cut}: unexpected {err:?}"
            );
        }
        let mut long = bytes.to_vec();
        long.push(0);
        assert_eq!(
            decode_delta(&long).unwrap_err(),
            CodecError::TrailingBytes(1)
        );
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode_database(b"NOPE").unwrap_err(), CodecError::BadMagic);
        assert_eq!(decode_facts(b"").unwrap_err(), CodecError::BadMagic);
        assert_eq!(decode_delta(b"XXXX").unwrap_err(), CodecError::BadMagic);
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut bytes = encode_database(&sample_db()).to_vec();
        bytes[4] = 0xFF;
        bytes[5] = 0xFF;
        assert_eq!(
            decode_database(&bytes).unwrap_err(),
            CodecError::UnsupportedVersion(0xFFFF)
        );
    }

    #[test]
    fn truncations_rejected_everywhere() {
        let bytes = encode_database(&sample_db());
        for cut in 1..bytes.len() {
            let err = decode_database(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CodecError::BadMagic | CodecError::UnexpectedEof | CodecError::TrailingBytes(_)
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_database(&sample_db()).to_vec();
        bytes.push(0x99);
        assert_eq!(
            decode_database(&bytes).unwrap_err(),
            CodecError::TrailingBytes(1)
        );
    }

    #[test]
    fn bad_constant_tag_rejected() {
        let facts = vec![Fact::parts("R", &["a"])];
        let mut bytes = encode_facts(&facts).to_vec();
        // Locate the tag byte of the single constant: after magic(4) +
        // version(2) + count(1) + namelen(1) + "R"(1) + arity(1).
        bytes[10] = 0x7E;
        assert_eq!(decode_facts(&bytes).unwrap_err(), CodecError::BadTag(0x7E));
    }

    proptest! {
        #[test]
        fn prop_database_roundtrip(rows in prop::collection::vec((0i64..100, -50i64..50), 0..60)) {
            let schema = Schema::from_relations(&[("E", 2)]);
            let mut db = Database::new(schema);
            for (a, b) in rows {
                db.insert(&Fact::new("E", vec![Constant::int(a), Constant::int(b)])).unwrap();
            }
            let decoded = decode_database(&encode_database(&db)).unwrap();
            prop_assert!(db.same_facts(&decoded));
        }

        #[test]
        fn prop_varint_roundtrip(v: u64) {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut bytes = buf.freeze();
            prop_assert_eq!(get_varint(&mut bytes).unwrap(), v);
            prop_assert!(!bytes.has_remaining());
        }

        #[test]
        fn prop_fact_names_roundtrip(name in "[a-zA-Z][a-zA-Z0-9_]{0,12}") {
            let facts = vec![Fact::parts(&name, &[&name])];
            let decoded = decode_facts(&encode_facts(&facts)).unwrap();
            prop_assert_eq!(facts, decoded);
        }

        #[test]
        fn prop_delta_roundtrip(
            adds in prop::collection::vec((0i64..40, -20i64..20), 0..30),
            dels in prop::collection::vec((0i64..40, -20i64..20), 0..30),
        ) {
            let fact = |(a, b): (i64, i64)| Fact::new("E", vec![Constant::int(a), Constant::int(b)]);
            let added: Vec<Fact> = adds.into_iter().map(fact).collect();
            let removed: Vec<Fact> = dels.into_iter().map(fact).collect();
            let decoded = decode_delta(&encode_delta(&added, &removed)).unwrap();
            prop_assert_eq!(decoded, (added, removed));
        }
    }
}
