//! Schema-validated databases with active-domain tracking.

use crate::{Constant, Fact, RelationStore, Schema, SchemaError, Symbol};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// A database instance over a [`Schema`]: a finite set of facts (§2 of the
/// paper), stored per relation in indexed [`RelationStore`]s.
///
/// Beyond set semantics the database maintains:
/// * the **active domain** `dom(D)` — every constant occurring in some
///   fact, reference-counted so deletions shrink it correctly; the
///   operational framework needs `dom(D)` to build the base `B(D,Σ)`;
/// * a **version counter** bumped on every mutation, letting callers cheaply
///   detect staleness of derived structures.
///
/// `Database` is a value type: `clone` snapshots the full state. The
/// repairing-sequence machinery clones at most once per insertion operation
/// (for the paper's global-justification re-checks), and relation stores
/// clone their indexes along with the data.
#[derive(Clone)]
pub struct Database {
    schema: Arc<Schema>,
    relations: HashMap<Symbol, RelationStore>,
    domain: HashMap<Constant, usize>,
    version: u64,
}

impl Database {
    /// Creates an empty database over `schema`.
    pub fn new(schema: Arc<Schema>) -> Database {
        let relations = schema
            .relations()
            .map(|(r, a)| (r, RelationStore::new(a)))
            .collect();
        Database {
            schema,
            relations,
            domain: HashMap::new(),
            version: 0,
        }
    }

    /// Creates a database from facts, validating each against the schema.
    pub fn from_facts<I>(schema: Arc<Schema>, facts: I) -> Result<Database, SchemaError>
    where
        I: IntoIterator<Item = Fact>,
    {
        let mut db = Database::new(schema);
        for f in facts {
            db.insert(&f)?;
        }
        Ok(db)
    }

    /// The schema of the database.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Whether the database holds no facts.
    pub fn is_empty(&self) -> bool {
        self.relations.values().all(|r| r.is_empty())
    }

    /// Mutation counter; bumped on every successful insert or remove.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether the fact is present.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.relations
            .get(&fact.pred())
            .is_some_and(|r| r.contains(fact.args()))
    }

    /// Inserts a fact. Returns `Ok(true)` if it was newly added, `Ok(false)`
    /// if it was already present, and an error if it violates the schema.
    pub fn insert(&mut self, fact: &Fact) -> Result<bool, SchemaError> {
        self.schema.validate(fact)?;
        let rel = self
            .relations
            .get_mut(&fact.pred())
            .expect("schema-validated relation must exist");
        if !rel.insert(fact.args()) {
            return Ok(false);
        }
        for c in fact.args() {
            *self.domain.entry(*c).or_insert(0) += 1;
        }
        self.version += 1;
        Ok(true)
    }

    /// Removes a fact; returns whether it was present.
    pub fn remove(&mut self, fact: &Fact) -> bool {
        let Some(rel) = self.relations.get_mut(&fact.pred()) else {
            return false;
        };
        if !rel.remove(fact.args()) {
            return false;
        }
        for c in fact.args() {
            match self.domain.get_mut(c) {
                Some(n) if *n > 1 => *n -= 1,
                Some(_) => {
                    self.domain.remove(c);
                }
                None => unreachable!("domain refcount out of sync"),
            }
        }
        self.version += 1;
        true
    }

    /// The store for one relation, if declared.
    pub fn relation(&self, rel: Symbol) -> Option<&RelationStore> {
        self.relations.get(&rel)
    }

    /// Iterates over all facts (relation order by name, then slot order).
    pub fn facts(&self) -> impl Iterator<Item = Fact> + '_ {
        let mut rels: Vec<_> = self.relations.iter().collect();
        rels.sort_by_key(|(r, _)| **r);
        rels.into_iter()
            .flat_map(|(r, store)| store.iter().map(move |row| Fact::new(*r, row.to_vec())))
    }

    /// The active domain `dom(D)`: all constants occurring in some fact.
    pub fn active_domain(&self) -> impl Iterator<Item = Constant> + '_ {
        self.domain.keys().copied()
    }

    /// Size of the active domain.
    pub fn domain_size(&self) -> usize {
        self.domain.len()
    }

    /// Whether a constant occurs in the database.
    pub fn domain_contains(&self, c: Constant) -> bool {
        self.domain.contains_key(&c)
    }

    /// The facts as a sorted set — the canonical form used to identify
    /// operational repairs by their instance.
    pub fn canonical_facts(&self) -> BTreeSet<Fact> {
        self.facts().collect()
    }

    /// Set-semantics equality with another database.
    pub fn same_facts(&self, other: &Database) -> bool {
        self.len() == other.len() && self.facts().all(|f| other.contains(&f))
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Database{{")?;
        for (i, fact) in self.canonical_facts().iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{fact}")?;
        }
        f.write_str("}")
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, fact) in self.canonical_facts().iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{fact}.")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn schema() -> Arc<Schema> {
        Schema::from_relations(&[("R", 2), ("S", 1)])
    }

    #[test]
    fn insert_validates_schema() {
        let mut db = Database::new(schema());
        assert_eq!(db.insert(&Fact::parts("R", &["a", "b"])), Ok(true));
        assert_eq!(db.insert(&Fact::parts("R", &["a", "b"])), Ok(false));
        assert!(matches!(
            db.insert(&Fact::parts("R", &["a"])),
            Err(SchemaError::ArityMismatch { .. })
        ));
        assert!(matches!(
            db.insert(&Fact::parts("T", &["a"])),
            Err(SchemaError::UnknownRelation(_))
        ));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn active_domain_refcounting() {
        let mut db = Database::new(schema());
        db.insert(&Fact::parts("R", &["a", "b"])).unwrap();
        db.insert(&Fact::parts("R", &["a", "c"])).unwrap();
        db.insert(&Fact::parts("S", &["a"])).unwrap();
        assert_eq!(db.domain_size(), 3);
        // Removing one fact with `a` keeps `a` (still referenced twice).
        db.remove(&Fact::parts("R", &["a", "b"]));
        assert!(db.domain_contains(Constant::named("a")));
        assert!(!db.domain_contains(Constant::named("b")));
        db.remove(&Fact::parts("R", &["a", "c"]));
        db.remove(&Fact::parts("S", &["a"]));
        assert_eq!(db.domain_size(), 0);
    }

    #[test]
    fn version_bumps_only_on_change() {
        let mut db = Database::new(schema());
        let v0 = db.version();
        db.insert(&Fact::parts("R", &["a", "b"])).unwrap();
        let v1 = db.version();
        assert!(v1 > v0);
        db.insert(&Fact::parts("R", &["a", "b"])).unwrap(); // no-op
        assert_eq!(db.version(), v1);
        db.remove(&Fact::parts("R", &["x", "y"])); // absent: no-op
        assert_eq!(db.version(), v1);
    }

    #[test]
    fn clone_is_snapshot() {
        let mut db = Database::new(schema());
        db.insert(&Fact::parts("R", &["a", "b"])).unwrap();
        let snap = db.clone();
        db.remove(&Fact::parts("R", &["a", "b"]));
        db.insert(&Fact::parts("S", &["z"])).unwrap();
        assert!(snap.contains(&Fact::parts("R", &["a", "b"])));
        assert!(!snap.contains(&Fact::parts("S", &["z"])));
        assert!(snap.domain_contains(Constant::named("a")));
    }

    #[test]
    fn canonical_facts_sorted_and_display() {
        let mut db = Database::new(schema());
        db.insert(&Fact::parts("S", &["z"])).unwrap();
        db.insert(&Fact::parts("R", &["b", "a"])).unwrap();
        db.insert(&Fact::parts("R", &["a", "b"])).unwrap();
        let listed: Vec<String> = db.canonical_facts().iter().map(|f| f.to_string()).collect();
        assert_eq!(listed, ["R(a,b)", "R(b,a)", "S(z)"]);
        assert_eq!(db.to_string(), "R(a,b). R(b,a). S(z).");
    }

    #[test]
    fn same_facts_ignores_history() {
        let mut a = Database::new(schema());
        let mut b = Database::new(schema());
        a.insert(&Fact::parts("R", &["a", "b"])).unwrap();
        a.insert(&Fact::parts("S", &["x"])).unwrap();
        b.insert(&Fact::parts("S", &["x"])).unwrap();
        b.insert(&Fact::parts("R", &["a", "b"])).unwrap();
        b.insert(&Fact::parts("S", &["y"])).unwrap();
        b.remove(&Fact::parts("S", &["y"]));
        assert!(a.same_facts(&b));
        b.remove(&Fact::parts("S", &["x"]));
        assert!(!a.same_facts(&b));
    }

    proptest! {
        /// Database behaves as a schema-checked fact set, and the active
        /// domain always equals the set of constants in live facts.
        #[test]
        fn prop_domain_matches_model(script in prop::collection::vec((any::<bool>(), 0i64..6, 0i64..6), 0..120)) {
            let mut db = Database::new(schema());
            let mut model: BTreeSet<Fact> = BTreeSet::new();
            for (insert, a, b) in script {
                let fact = Fact::new("R", vec![Constant::int(a), Constant::int(b)]);
                if insert {
                    prop_assert_eq!(db.insert(&fact).unwrap(), model.insert(fact));
                } else {
                    prop_assert_eq!(db.remove(&fact), model.remove(&fact));
                }
            }
            prop_assert_eq!(db.canonical_facts(), model.clone());
            let want_domain: BTreeSet<Constant> =
                model.iter().flat_map(|f| f.args().iter().copied()).collect();
            let got_domain: BTreeSet<Constant> = db.active_domain().collect();
            prop_assert_eq!(got_domain, want_domain);
        }
    }
}
