//! Global string interning.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// An interned string: a word-sized, copyable handle to a process-global
/// string table.
///
/// Predicate names and string constants are interned once and compared by
/// id everywhere, which keeps facts small and hash/equality checks on the
/// hot homomorphism-enumeration path O(1). `Ord` compares the *resolved
/// strings* so that canonical orderings (sorted fact lists, deterministic
/// display) do not depend on interning order.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

struct Interner {
    by_name: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            by_name: HashMap::new(),
            names: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `name`, returning its global handle. Interning the same
    /// string twice yields the same handle.
    pub fn intern(name: &str) -> Symbol {
        let table = interner();
        if let Some(&id) = table.read().by_name.get(name) {
            return Symbol(id);
        }
        let mut w = table.write();
        if let Some(&id) = w.by_name.get(name) {
            return Symbol(id);
        }
        // Leak the string: interned names live for the process lifetime,
        // which is what makes `as_str` zero-cost.
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = w.names.len() as u32;
        w.names.push(leaked);
        w.by_name.insert(leaked, id);
        Symbol(id)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        interner().read().names[self.0 as usize]
    }

    /// The raw id (stable within a process run only).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("hello");
        let b = Symbol::intern("hello");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "hello");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        assert_ne!(Symbol::intern("R"), Symbol::intern("S"));
    }

    #[test]
    fn ordering_follows_strings() {
        let b = Symbol::intern("zzz_sym_b");
        let a = Symbol::intern("aaa_sym_a");
        // Interned in reverse lexicographic order, but Ord follows strings.
        assert!(a < b);
    }

    #[test]
    fn concurrent_interning() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    (0..100)
                        .map(|j| Symbol::intern(&format!("concurrent_{}", j % 50)).id())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<u32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Same string always resolves to the same id across threads.
        for w in &all {
            assert_eq!(w, &all[0]);
            for (j, &id) in w.iter().enumerate() {
                assert_eq!(Symbol(id).as_str(), format!("concurrent_{}", j % 50));
            }
        }
    }
}
