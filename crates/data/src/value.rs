//! Database constants.

use crate::Symbol;
use std::fmt;

/// A database constant: an element of the countably infinite domain **C**
/// of the paper, realized as either an interned name or a machine integer.
///
/// Integers exist so workload generators can produce large domains without
/// interning overhead; the semantics never distinguishes the two kinds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Constant {
    /// An integer constant.
    Int(i64),
    /// A named (interned string) constant.
    Sym(Symbol),
}

impl Constant {
    /// Interns `name` as a named constant.
    pub fn named(name: &str) -> Constant {
        Constant::Sym(Symbol::intern(name))
    }

    /// An integer constant.
    pub fn int(v: i64) -> Constant {
        Constant::Int(v)
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Int(v) => write!(f, "{v}"),
            Constant::Sym(s) => write!(f, "{s}"),
        }
    }
}

impl fmt::Debug for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Int(v) => write!(f, "Const({v})"),
            Constant::Sym(s) => write!(f, "Const({})", s.as_str()),
        }
    }
}

impl From<i64> for Constant {
    fn from(v: i64) -> Self {
        Constant::Int(v)
    }
}

impl From<&str> for Constant {
    fn from(s: &str) -> Self {
        Constant::named(s)
    }
}

impl From<Symbol> for Constant {
    fn from(s: Symbol) -> Self {
        Constant::Sym(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(Constant::named("a").to_string(), "a");
        assert_eq!(Constant::int(42).to_string(), "42");
    }

    #[test]
    fn equality_and_kinds() {
        assert_eq!(Constant::named("a"), Constant::named("a"));
        assert_ne!(Constant::named("1"), Constant::int(1));
        assert_ne!(Constant::named("a"), Constant::named("b"));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            Constant::named("b"),
            Constant::int(2),
            Constant::named("a"),
            Constant::int(1),
        ];
        v.sort();
        // Ints sort before symbols (enum order); within kinds, natural order.
        assert_eq!(
            v,
            vec![
                Constant::int(1),
                Constant::int(2),
                Constant::named("a"),
                Constant::named("b"),
            ]
        );
    }
}
