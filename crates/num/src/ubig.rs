//! Unsigned arbitrary-precision integers.

use crate::ParseNumError;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Shl, Shr, Sub, SubAssign};
use std::str::FromStr;

/// An unsigned arbitrary-precision integer.
///
/// Representation: little-endian `u64` limbs with no trailing zero limbs;
/// zero is the empty limb vector. This canonical form makes structural
/// equality, hashing and ordering agree with numeric equality.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct UBig {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    limbs: Vec<u64>,
}

impl UBig {
    /// The value `0`.
    pub const fn zero() -> Self {
        UBig { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        UBig { limbs: vec![1] }
    }

    /// Whether this value is `0`.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether this value is `1`.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Number of significant bits (`0` for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// The number of limbs in the canonical representation.
    pub fn limb_count(&self) -> usize {
        self.limbs.len()
    }

    /// Whether the value is even. Zero is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    fn trim(limbs: &mut Vec<u64>) {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
    }

    fn from_limbs(mut limbs: Vec<u64>) -> Self {
        Self::trim(&mut limbs);
        UBig { limbs }
    }

    /// Converts to `u64`, returning `None` on overflow.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128`, returning `None` on overflow.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }

    /// Lossy conversion to `f64` (correct to within normal floating-point
    /// rounding; values beyond the `f64` range become `inf`).
    pub fn to_f64(&self) -> f64 {
        match self.limbs.len() {
            0 => 0.0,
            1 => self.limbs[0] as f64,
            2 => (self.limbs[1] as u128) as f64 * 2f64.powi(64) + self.limbs[0] as f64,
            n => {
                // Use the top 128 bits and scale by the discarded bit count.
                let hi = (self.limbs[n - 1] as u128) << 64 | self.limbs[n - 2] as u128;
                let discarded = (n - 2) * 64;
                hi as f64 * 2f64.powi(discarded as i32)
            }
        }
    }

    /// `self + other`.
    pub fn add_ref(&self, other: &UBig) -> UBig {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &a) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        UBig::from_limbs(out)
    }

    /// `self - other`; returns `None` if `other > self`.
    pub fn checked_sub_ref(&self, other: &UBig) -> Option<UBig> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(UBig::from_limbs(out))
    }

    /// `self * other` (schoolbook; adequate for the magnitudes that appear
    /// in repair probabilities).
    pub fn mul_ref(&self, other: &UBig) -> UBig {
        if self.is_zero() || other.is_zero() {
            return UBig::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        UBig::from_limbs(out)
    }

    /// Quotient and remainder of `self / other`.
    ///
    /// # Panics
    /// Panics if `other` is zero.
    pub fn div_rem(&self, other: &UBig) -> (UBig, UBig) {
        assert!(!other.is_zero(), "division by zero UBig");
        match self.cmp(other) {
            Ordering::Less => return (UBig::zero(), self.clone()),
            Ordering::Equal => return (UBig::one(), UBig::zero()),
            Ordering::Greater => {}
        }
        if other.limbs.len() == 1 {
            let (q, r) = self.div_rem_limb(other.limbs[0]);
            return (q, UBig::from(r));
        }
        self.div_rem_knuth(other)
    }

    /// Division by a single limb.
    fn div_rem_limb(&self, d: u64) -> (UBig, u64) {
        debug_assert!(d != 0);
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = rem << 64 | self.limbs[i] as u128;
            out[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (UBig::from_limbs(out), rem as u64)
    }

    /// Knuth Algorithm D (TAOCP vol. 2, 4.3.1) for multi-limb divisors.
    fn div_rem_knuth(&self, other: &UBig) -> (UBig, UBig) {
        // Normalize: shift so the divisor's top limb has its high bit set.
        let shift = other.limbs.last().unwrap().leading_zeros() as usize;
        let v = other.shl_bits(shift).limbs;
        let mut u = self.shl_bits(shift).limbs;
        let n = v.len();
        u.push(0); // room for the virtual high limb
        let m = u.len() - n - 1;
        let mut q = vec![0u64; m + 1];
        let v_top = v[n - 1] as u128;
        let v_second = v[n - 2] as u128;

        for j in (0..=m).rev() {
            let top = (u[j + n] as u128) << 64 | u[j + n - 1] as u128;
            let mut qhat = top / v_top;
            let mut rhat = top % v_top;
            // Correct the 2-limb estimate down to at most one off.
            while qhat >> 64 != 0 || qhat * v_second > (rhat << 64 | u[j + n - 2] as u128) {
                qhat -= 1;
                rhat += v_top;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // Multiply-subtract: u[j..j+n+1] -= qhat * v.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * v[i] as u128 + carry;
                carry = p >> 64;
                let sub = (u[j + i] as i128) - (p as u64 as i128) + borrow;
                u[j + i] = sub as u64;
                borrow = sub >> 64;
            }
            let sub = (u[j + n] as i128) - (carry as i128) + borrow;
            u[j + n] = sub as u64;
            if sub < 0 {
                // qhat was one too large: add back.
                qhat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = u[j + i] as u128 + v[i] as u128 + carry;
                    u[j + i] = s as u64;
                    carry = s >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry as u64);
            }
            q[j] = qhat as u64;
        }
        u.truncate(n);
        let rem = UBig::from_limbs(u).shr_bits(shift);
        (UBig::from_limbs(q), rem)
    }

    /// Left shift by `bits`.
    pub fn shl_bits(&self, bits: usize) -> UBig {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; self.limbs.len() + limb_shift + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            out[i + limb_shift] |= l << bit_shift;
            if bit_shift != 0 {
                out[i + limb_shift + 1] |= l >> (64 - bit_shift);
            }
        }
        UBig::from_limbs(out)
    }

    /// Right shift by `bits`.
    pub fn shr_bits(&self, bits: usize) -> UBig {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return UBig::zero();
        }
        let bit_shift = bits % 64;
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        for i in limb_shift..self.limbs.len() {
            let mut l = self.limbs[i] >> bit_shift;
            if bit_shift != 0 {
                if let Some(&next) = self.limbs.get(i + 1) {
                    l |= next << (64 - bit_shift);
                }
            }
            out.push(l);
        }
        UBig::from_limbs(out)
    }

    /// Greatest common divisor (Euclid on top of exact division).
    pub fn gcd(&self, other: &UBig) -> UBig {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.div_rem(&b).1;
            a = b;
            b = r;
        }
        a
    }

    /// `self^exp` by binary exponentiation.
    pub fn pow(&self, mut exp: u32) -> UBig {
        let mut base = self.clone();
        let mut acc = UBig::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul_ref(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul_ref(&base);
            }
        }
        acc
    }
}

impl From<u64> for UBig {
    fn from(v: u64) -> Self {
        if v == 0 {
            UBig::zero()
        } else {
            UBig { limbs: vec![v] }
        }
    }
}

impl From<u128> for UBig {
    fn from(v: u128) -> Self {
        UBig::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl From<u32> for UBig {
    fn from(v: u32) -> Self {
        UBig::from(v as u64)
    }
}

impl From<usize> for UBig {
    fn from(v: usize) -> Self {
        UBig::from(v as u64)
    }
}

impl Ord for UBig {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => self.limbs.iter().rev().cmp(other.limbs.iter().rev()),
            ord => ord,
        }
    }
}

impl PartialOrd for UBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $impl_method:ident) => {
        impl $trait for &UBig {
            type Output = UBig;
            fn $method(self, rhs: &UBig) -> UBig {
                self.$impl_method(rhs)
            }
        }
        impl $trait for UBig {
            type Output = UBig;
            fn $method(self, rhs: UBig) -> UBig {
                (&self).$impl_method(&rhs)
            }
        }
        impl $trait<&UBig> for UBig {
            type Output = UBig;
            fn $method(self, rhs: &UBig) -> UBig {
                (&self).$impl_method(rhs)
            }
        }
    };
}

forward_binop!(Add, add, add_ref);
forward_binop!(Mul, mul, mul_ref);

impl Sub for &UBig {
    type Output = UBig;
    fn sub(self, rhs: &UBig) -> UBig {
        self.checked_sub_ref(rhs)
            .expect("UBig subtraction underflow")
    }
}

impl Sub for UBig {
    type Output = UBig;
    fn sub(self, rhs: UBig) -> UBig {
        &self - &rhs
    }
}

impl AddAssign<&UBig> for UBig {
    fn add_assign(&mut self, rhs: &UBig) {
        *self = self.add_ref(rhs);
    }
}

impl SubAssign<&UBig> for UBig {
    fn sub_assign(&mut self, rhs: &UBig) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&UBig> for UBig {
    fn mul_assign(&mut self, rhs: &UBig) {
        *self = self.mul_ref(rhs);
    }
}

impl Shl<usize> for &UBig {
    type Output = UBig;
    fn shl(self, bits: usize) -> UBig {
        self.shl_bits(bits)
    }
}

impl Shr<usize> for &UBig {
    type Output = UBig;
    fn shr(self, bits: usize) -> UBig {
        self.shr_bits(bits)
    }
}

impl fmt::Display for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Peel off 19 decimal digits at a time (10^19 < 2^64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_limb(CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut s = String::new();
        s.push_str(&chunks.pop().unwrap().to_string());
        for c in chunks.iter().rev() {
            s.push_str(&format!("{c:019}"));
        }
        f.write_str(&s)
    }
}

impl fmt::Debug for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UBig({self})")
    }
}

impl FromStr for UBig {
    type Err = ParseNumError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseNumError::new("empty string"));
        }
        let ten = UBig::from(10u64);
        let mut acc = UBig::zero();
        for c in s.chars() {
            let d = c
                .to_digit(10)
                .ok_or_else(|| ParseNumError::new(format!("invalid digit {c:?}")))?;
            acc = acc.mul_ref(&ten).add_ref(&UBig::from(d as u64));
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn big(v: u128) -> UBig {
        UBig::from(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(UBig::zero().is_zero());
        assert!(UBig::one().is_one());
        assert_eq!(UBig::zero().bit_len(), 0);
        assert_eq!(UBig::one().bit_len(), 1);
        assert!(UBig::zero().is_even());
        assert!(!UBig::one().is_even());
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = big(u128::from(u64::MAX));
        let b = UBig::one();
        assert_eq!(a.add_ref(&b), big(u64::MAX as u128 + 1));
    }

    #[test]
    fn sub_underflow_is_none() {
        assert_eq!(big(3).checked_sub_ref(&big(5)), None);
        assert_eq!(big(5).checked_sub_ref(&big(5)), Some(UBig::zero()));
    }

    #[test]
    fn mul_cross_limb() {
        let a = big(u64::MAX as u128);
        let sq = a.mul_ref(&a);
        assert_eq!(sq.to_u128(), Some((u64::MAX as u128) * (u64::MAX as u128)));
    }

    #[test]
    fn div_by_larger_is_zero() {
        let (q, r) = big(7).div_rem(&big(9));
        assert_eq!(q, UBig::zero());
        assert_eq!(r, big(7));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = big(1).div_rem(&UBig::zero());
    }

    #[test]
    fn knuth_division_three_limbs() {
        // (2^190 + 12345) / (2^70 + 7)
        let a = UBig::one().shl_bits(190).add_ref(&big(12345));
        let b = UBig::one().shl_bits(70).add_ref(&big(7));
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul_ref(&b).add_ref(&r), a);
        assert!(r < b);
    }

    #[test]
    fn shifts_roundtrip() {
        let a = big(0xDEAD_BEEF_CAFE_BABE);
        assert_eq!(a.shl_bits(100).shr_bits(100), a);
        assert_eq!(a.shr_bits(200), UBig::zero());
    }

    #[test]
    fn gcd_examples() {
        assert_eq!(big(54).gcd(&big(24)), big(6));
        assert_eq!(big(0).gcd(&big(5)), big(5));
        assert_eq!(big(5).gcd(&big(0)), big(5));
        let a = big(2u128.pow(61)).mul_ref(&big(9));
        let b = big(2u128.pow(50)).mul_ref(&big(15));
        assert_eq!(a.gcd(&b), big(2u128.pow(50)).mul_ref(&big(3)));
    }

    #[test]
    fn pow_examples() {
        assert_eq!(big(3).pow(0), UBig::one());
        assert_eq!(big(3).pow(5), big(243));
        assert_eq!(big(2).pow(200).bit_len(), 201);
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let v = big(2).pow(200).add_ref(&big(987654321));
        let s = v.to_string();
        assert_eq!(s.parse::<UBig>().unwrap(), v);
        assert_eq!(UBig::zero().to_string(), "0");
        assert_eq!("0".parse::<UBig>().unwrap(), UBig::zero());
        assert!("12x".parse::<UBig>().is_err());
        assert!("".parse::<UBig>().is_err());
    }

    #[test]
    fn to_f64_large() {
        let v = big(2).pow(100);
        let f = v.to_f64();
        assert!((f - 2f64.powi(100)).abs() / 2f64.powi(100) < 1e-10);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(big(2).pow(64) > big(u64::MAX as u128));
        assert!(big(5) < big(7));
        assert_eq!(big(7).cmp(&big(7)), Ordering::Equal);
    }

    proptest! {
        #[test]
        fn prop_add_matches_u128(a in 0u128..u128::MAX / 2, b in 0u128..u128::MAX / 2) {
            prop_assert_eq!(big(a).add_ref(&big(b)).to_u128(), Some(a + b));
        }

        #[test]
        fn prop_sub_matches_u128(a: u128, b: u128) {
            let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
            prop_assert_eq!(big(hi).checked_sub_ref(&big(lo)).unwrap().to_u128(), Some(hi - lo));
        }

        #[test]
        fn prop_mul_matches_u128(a in 0u128..1u128 << 64, b in 0u128..1u128 << 64) {
            prop_assert_eq!(big(a).mul_ref(&big(b)).to_u128(), Some(a * b));
        }

        #[test]
        fn prop_div_rem_matches_u128(a: u128, b in 1u128..u128::MAX) {
            let (q, r) = big(a).div_rem(&big(b));
            prop_assert_eq!(q.to_u128(), Some(a / b));
            prop_assert_eq!(r.to_u128(), Some(a % b));
        }

        #[test]
        fn prop_div_rem_reconstructs(a_lo: u128, a_hi: u128, b_lo: u128, b_hi in 0u128..u128::MAX) {
            // Random multi-limb values: a = a_hi * 2^128 + a_lo, similarly b.
            let a = big(a_hi).shl_bits(128).add_ref(&big(a_lo));
            let b = big(b_hi).shl_bits(128).add_ref(&big(b_lo.max(1)));
            let (q, r) = a.div_rem(&b);
            prop_assert!(r < b);
            prop_assert_eq!(q.mul_ref(&b).add_ref(&r), a);
        }

        #[test]
        fn prop_gcd_divides_both(a in 1u128..u128::MAX, b in 1u128..u128::MAX) {
            let g = big(a).gcd(&big(b));
            prop_assert!(!g.is_zero());
            prop_assert!(big(a).div_rem(&g).1.is_zero());
            prop_assert!(big(b).div_rem(&g).1.is_zero());
        }

        #[test]
        fn prop_display_parse_roundtrip(a_hi: u128, a_lo: u128) {
            let v = big(a_hi).shl_bits(128).add_ref(&big(a_lo));
            prop_assert_eq!(v.to_string().parse::<UBig>().unwrap(), v);
        }

        #[test]
        fn prop_shift_is_mul_by_power_of_two(a: u128, s in 0usize..200) {
            let shifted = big(a).shl_bits(s);
            prop_assert_eq!(shifted, big(a).mul_ref(&big(2).pow(s as u32)));
        }
    }
}
