//! Exact rational numbers.

use crate::{IBig, ParseNumError, UBig};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number, always stored in lowest terms with a positive
/// denominator.
///
/// [`Rat`] is the probability type of the operational CQA engine: edge
/// weights of repairing Markov chains, hitting distributions, repair
/// probabilities and `CP(t̄)` values are all exact rationals, so semantic
/// invariants like "the masses of all reachable absorbing states sum to 1"
/// can be asserted with `==` rather than approximate comparisons.
///
/// ```
/// use ocqa_num::Rat;
///
/// // Example 6 of the paper: 3/9·3/4 + 3/9·3/5 = 9/20 = 0.45.
/// let p = Rat::ratio(3, 9) * Rat::ratio(3, 4) + Rat::ratio(3, 9) * Rat::ratio(3, 5);
/// assert_eq!(p, Rat::ratio(9, 20));
/// assert_eq!(p.to_f64(), 0.45);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rat {
    num: IBig,
    den: UBig, // invariant: den > 0, gcd(|num|, den) = 1
}

impl Rat {
    /// The value `0`.
    pub fn zero() -> Self {
        Rat {
            num: IBig::zero(),
            den: UBig::one(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        Rat {
            num: IBig::one(),
            den: UBig::one(),
        }
    }

    /// Builds `num / den` in lowest terms.
    ///
    /// # Panics
    /// Panics if `den` is zero.
    pub fn new(num: IBig, den: IBig) -> Self {
        assert!(!den.is_zero(), "zero denominator in Rat::new");
        let sign = num.sign().mul(den.sign());
        let (num_mag, den_mag) = (num.into_magnitude(), den.into_magnitude());
        let g = num_mag.gcd(&den_mag);
        if g.is_zero() {
            // num was zero.
            return Rat::zero();
        }
        let num_red = num_mag.div_rem(&g).0;
        let den_red = den_mag.div_rem(&g).0;
        Rat {
            num: IBig::from_sign_mag(sign, num_red),
            den: den_red,
        }
    }

    /// Builds `num / den` from machine integers.
    ///
    /// # Panics
    /// Panics if `den` is zero.
    pub fn ratio(num: i64, den: i64) -> Self {
        Rat::new(IBig::from(num), IBig::from(den))
    }

    /// Builds a rational from an integer.
    pub fn integer(v: i64) -> Self {
        Rat {
            num: IBig::from(v),
            den: UBig::one(),
        }
    }

    /// The numerator (in lowest terms; carries the sign).
    pub fn numer(&self) -> &IBig {
        &self.num
    }

    /// The denominator (in lowest terms; always positive).
    pub fn denom(&self) -> &UBig {
        &self.den
    }

    /// Whether this value is `0`.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Whether this value is `1`.
    pub fn is_one(&self) -> bool {
        self.num.is_one() && self.den.is_one()
    }

    /// Whether this value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Whether this value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Whether this value lies in the closed interval `[0, 1]` — every
    /// probability produced by the engine must satisfy this.
    pub fn is_probability(&self) -> bool {
        !self.is_negative() && *self <= Rat::one()
    }

    /// `self + other`.
    pub fn add_ref(&self, other: &Rat) -> Rat {
        // a/b + c/d = (a*d + c*b) / (b*d), then reduce.
        let num = self
            .num
            .mul_ref(&IBig::from(other.den.clone()))
            .add_ref(&other.num.mul_ref(&IBig::from(self.den.clone())));
        let den = IBig::from(self.den.mul_ref(&other.den));
        Rat::new(num, den)
    }

    /// `self - other`.
    pub fn sub_ref(&self, other: &Rat) -> Rat {
        self.add_ref(&other.clone().neg())
    }

    /// `self * other`.
    pub fn mul_ref(&self, other: &Rat) -> Rat {
        let num = self.num.mul_ref(&other.num);
        let den = IBig::from(self.den.mul_ref(&other.den));
        Rat::new(num, den)
    }

    /// `self / other`.
    ///
    /// # Panics
    /// Panics if `other` is zero.
    pub fn div_ref(&self, other: &Rat) -> Rat {
        assert!(!other.is_zero(), "division by zero Rat");
        let num = self.num.mul_ref(&IBig::from(other.den.clone()));
        let den = other.num.mul_ref(&IBig::from(self.den.clone()));
        Rat::new(num, den)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if `self` is zero.
    pub fn recip(&self) -> Rat {
        Rat::one().div_ref(self)
    }

    /// Absolute value.
    pub fn abs(&self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Lossy conversion to `f64` for presentation and sampling tallies.
    pub fn to_f64(&self) -> f64 {
        // Scale numerator and denominator to comparable bit lengths before
        // converting, so huge-but-balanced fractions stay finite.
        let nb = self.num.magnitude().bit_len() as isize;
        let db = self.den.bit_len() as isize;
        let excess = (nb.max(db) - 900).max(0) as usize;
        if excess == 0 {
            self.num.to_f64() / self.den.to_f64()
        } else {
            let n = self.num.magnitude().shr_bits(excess).to_f64();
            let d = self.den.shr_bits(excess).to_f64();
            let f = n / d;
            if self.num.is_negative() {
                -f
            } else {
                f
            }
        }
    }

    /// `self^exp` by binary exponentiation.
    pub fn pow(&self, exp: u32) -> Rat {
        Rat {
            num: self.num.pow(exp),
            den: self.den.pow(exp),
        }
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::zero()
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Self {
        Rat::integer(v)
    }
}

impl From<u32> for Rat {
    fn from(v: u32) -> Self {
        Rat::integer(v as i64)
    }
}

impl From<IBig> for Rat {
    fn from(v: IBig) -> Self {
        Rat {
            num: v,
            den: UBig::one(),
        }
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Neg for &Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        self.clone().neg()
    }
}

macro_rules! forward_rat_binop {
    ($trait:ident, $method:ident, $impl_method:ident) => {
        impl $trait for &Rat {
            type Output = Rat;
            fn $method(self, rhs: &Rat) -> Rat {
                self.$impl_method(rhs)
            }
        }
        impl $trait for Rat {
            type Output = Rat;
            fn $method(self, rhs: Rat) -> Rat {
                (&self).$impl_method(&rhs)
            }
        }
        impl $trait<&Rat> for Rat {
            type Output = Rat;
            fn $method(self, rhs: &Rat) -> Rat {
                (&self).$impl_method(rhs)
            }
        }
    };
}

forward_rat_binop!(Add, add, add_ref);
forward_rat_binop!(Sub, sub, sub_ref);
forward_rat_binop!(Mul, mul, mul_ref);
forward_rat_binop!(Div, div, div_ref);

impl AddAssign<&Rat> for Rat {
    fn add_assign(&mut self, rhs: &Rat) {
        *self = self.add_ref(rhs);
    }
}

impl SubAssign<&Rat> for Rat {
    fn sub_assign(&mut self, rhs: &Rat) {
        *self = self.sub_ref(rhs);
    }
}

impl MulAssign<&Rat> for Rat {
    fn mul_assign(&mut self, rhs: &Rat) {
        *self = self.mul_ref(rhs);
    }
}

impl Sum for Rat {
    fn sum<I: Iterator<Item = Rat>>(iter: I) -> Rat {
        iter.fold(Rat::zero(), |acc, x| acc.add_ref(&x))
    }
}

impl<'a> Sum<&'a Rat> for Rat {
    fn sum<I: Iterator<Item = &'a Rat>>(iter: I) -> Rat {
        iter.fold(Rat::zero(), |acc, x| acc.add_ref(x))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  ⇔  a*d vs c*b  (b, d > 0).
        let lhs = self.num.mul_ref(&IBig::from(other.den.clone()));
        let rhs = other.num.mul_ref(&IBig::from(self.den.clone()));
        lhs.cmp(&rhs)
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rat({self})")
    }
}

impl FromStr for Rat {
    type Err = ParseNumError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('/') {
            Some((n, d)) => {
                let num: IBig = n.trim().parse()?;
                let den: IBig = d.trim().parse()?;
                if den.is_zero() {
                    return Err(ParseNumError::new("zero denominator"));
                }
                Ok(Rat::new(num, den))
            }
            None => Ok(Rat::from(s.trim().parse::<IBig>()?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(n: i64, d: i64) -> Rat {
        Rat::ratio(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, 4), r(1, -2));
        assert_eq!(r(0, 5), Rat::zero());
        assert_eq!(r(-3, -9), r(1, 3));
        assert_eq!(r(6, 3), Rat::integer(2));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn example6_probabilities_sum_to_one() {
        // The four repair probabilities from Example 6 of the paper.
        let p1 = r(2, 9) * r(1, 3) + r(1, 9) * r(2, 4);
        let p2 = r(2, 9) * r(2, 3) + r(3, 9) * r(2, 5);
        let p3 = r(3, 9) * r(1, 4) + r(1, 9) * r(2, 4);
        let p4 = r(3, 9) * r(3, 4) + r(3, 9) * r(3, 5);
        assert_eq!(p1, r(7, 54));
        assert_eq!(p2, r(38, 135));
        assert_eq!(p3, r(5, 36));
        assert_eq!(p4, r(9, 20));
        assert_eq!(p4.to_f64(), 0.45);
        assert_eq!(p1 + p2 + p3 + p4, Rat::one());
    }

    #[test]
    fn arithmetic_identities() {
        let x = r(3, 7);
        assert_eq!(&x + &Rat::zero(), x);
        assert_eq!(&x * &Rat::one(), x);
        assert_eq!(&x - &x, Rat::zero());
        assert_eq!(&x / &x, Rat::one());
        assert_eq!(x.recip(), r(7, 3));
        assert_eq!(x.pow(2), r(9, 49));
        assert_eq!(x.pow(0), Rat::one());
    }

    #[test]
    fn is_probability_bounds() {
        assert!(Rat::zero().is_probability());
        assert!(Rat::one().is_probability());
        assert!(r(1, 2).is_probability());
        assert!(!r(3, 2).is_probability());
        assert!(!r(-1, 2).is_probability());
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(2, 4) == r(1, 2));
        assert!(r(7, 8) > r(6, 7));
    }

    #[test]
    fn display_parse_roundtrip() {
        for v in [r(1, 2), r(-3, 4), Rat::integer(5), Rat::zero(), r(-7, 1)] {
            assert_eq!(v.to_string().parse::<Rat>().unwrap(), v);
        }
        assert_eq!("  2 / 4 ".parse::<Rat>().unwrap(), r(1, 2));
        assert!("1/0".parse::<Rat>().is_err());
    }

    #[test]
    fn sum_iterator() {
        let parts: Vec<Rat> = (1..=4).map(|_| r(1, 4)).collect();
        assert_eq!(parts.iter().sum::<Rat>(), Rat::one());
        assert_eq!(parts.into_iter().sum::<Rat>(), Rat::one());
    }

    #[test]
    fn to_f64_huge_balanced_fraction_is_finite() {
        // (2^1000 + 1) / 2^1000 ≈ 1.0 — would be inf/inf with naive conversion.
        let big = Rat::new(
            IBig::from(UBig::one().shl_bits(1000).add_ref(&UBig::one())),
            IBig::from(UBig::one().shl_bits(1000)),
        );
        let f = big.to_f64();
        assert!((f - 1.0).abs() < 1e-9, "got {f}");
    }

    proptest! {
        #[test]
        fn prop_add_matches_f64(an in -1000i64..1000, ad in 1i64..1000, bn in -1000i64..1000, bd in 1i64..1000) {
            let exact = (r(an, ad) + r(bn, bd)).to_f64();
            let approx = an as f64 / ad as f64 + bn as f64 / bd as f64;
            prop_assert!((exact - approx).abs() < 1e-9);
        }

        #[test]
        fn prop_field_axioms(an in -100i64..100, ad in 1i64..100, bn in -100i64..100, bd in 1i64..100, cn in -100i64..100, cd in 1i64..100) {
            let (a, b, c) = (r(an, ad), r(bn, bd), r(cn, cd));
            prop_assert_eq!(&a + &b, &b + &a);
            prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
            prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
            if !b.is_zero() {
                prop_assert_eq!(&(&a / &b) * &b, a);
            }
        }

        #[test]
        fn prop_cmp_matches_f64(an in -1000i64..1000, ad in 1i64..1000, bn in -1000i64..1000, bd in 1i64..1000) {
            let exact = r(an, ad).cmp(&r(bn, bd));
            let fa = an as f64 / ad as f64;
            let fb = bn as f64 / bd as f64;
            if (fa - fb).abs() > 1e-6 {
                prop_assert_eq!(exact, fa.partial_cmp(&fb).unwrap());
            }
        }

        #[test]
        fn prop_normalized_invariants(n in -10000i64..10000, d in (-10000i64..10000).prop_filter("nonzero", |v| *v != 0)) {
            let v = r(n, d);
            // Denominator positive, fraction in lowest terms.
            prop_assert!(!v.denom().is_zero());
            let g = v.numer().magnitude().gcd(v.denom());
            prop_assert!(g.is_one() || v.is_zero());
        }
    }
}
