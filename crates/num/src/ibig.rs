//! Signed arbitrary-precision integers.

use crate::{ParseNumError, UBig};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// Sign of an [`IBig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Zero.
    Zero,
    /// Strictly positive.
    Positive,
}

impl Sign {
    /// Product-of-signs rule.
    // Deliberately an inherent method: `Sign` is not a number, and a full
    // `std::ops::Mul` impl would suggest it is.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Sign) -> Sign {
        use Sign::*;
        match (self, other) {
            (Zero, _) | (_, Zero) => Zero,
            (Positive, Positive) | (Negative, Negative) => Positive,
            _ => Negative,
        }
    }

    /// The opposite sign.
    pub fn negate(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }
}

/// A signed arbitrary-precision integer (sign + magnitude).
///
/// Invariant: `sign == Sign::Zero` iff `mag.is_zero()`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IBig {
    sign: Sign,
    mag: UBig,
}

impl IBig {
    /// The value `0`.
    pub const fn zero() -> Self {
        IBig {
            sign: Sign::Zero,
            mag: UBig::zero(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        IBig {
            sign: Sign::Positive,
            mag: UBig::one(),
        }
    }

    /// Builds a signed integer from a sign and a magnitude; the sign of a
    /// zero magnitude is normalized to [`Sign::Zero`].
    pub fn from_sign_mag(sign: Sign, mag: UBig) -> Self {
        if mag.is_zero() {
            IBig::zero()
        } else {
            debug_assert!(sign != Sign::Zero, "nonzero magnitude with Zero sign");
            IBig { sign, mag }
        }
    }

    /// The sign of this value.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude (absolute value) of this value.
    pub fn magnitude(&self) -> &UBig {
        &self.mag
    }

    /// Consumes `self`, returning the magnitude.
    pub fn into_magnitude(self) -> UBig {
        self.mag
    }

    /// Whether this value is `0`.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Whether this value is `1`.
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Positive && self.mag.is_one()
    }

    /// Whether this value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Whether this value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// Absolute value.
    pub fn abs(&self) -> IBig {
        IBig::from_sign_mag(
            if self.is_zero() {
                Sign::Zero
            } else {
                Sign::Positive
            },
            self.mag.clone(),
        )
    }

    /// `self + other`.
    pub fn add_ref(&self, other: &IBig) -> IBig {
        use Sign::*;
        match (self.sign, other.sign) {
            (Zero, _) => other.clone(),
            (_, Zero) => self.clone(),
            (a, b) if a == b => IBig::from_sign_mag(a, self.mag.add_ref(&other.mag)),
            _ => match self.mag.cmp(&other.mag) {
                Ordering::Equal => IBig::zero(),
                Ordering::Greater => {
                    IBig::from_sign_mag(self.sign, self.mag.checked_sub_ref(&other.mag).unwrap())
                }
                Ordering::Less => {
                    IBig::from_sign_mag(other.sign, other.mag.checked_sub_ref(&self.mag).unwrap())
                }
            },
        }
    }

    /// `self - other`.
    pub fn sub_ref(&self, other: &IBig) -> IBig {
        self.add_ref(&other.clone().neg())
    }

    /// `self * other`.
    pub fn mul_ref(&self, other: &IBig) -> IBig {
        IBig::from_sign_mag(self.sign.mul(other.sign), self.mag.mul_ref(&other.mag))
    }

    /// Truncated division: quotient and remainder with
    /// `self = q * other + r`, `|r| < |other|`, and `r` having the sign of
    /// `self` (like Rust's `/` and `%` on primitive integers).
    ///
    /// # Panics
    /// Panics if `other` is zero.
    pub fn div_rem(&self, other: &IBig) -> (IBig, IBig) {
        let (q_mag, r_mag) = self.mag.div_rem(&other.mag);
        let q_sign = self.sign.mul(other.sign);
        (
            IBig::from_sign_mag(q_sign, q_mag),
            IBig::from_sign_mag(self.sign, r_mag),
        )
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        let f = self.mag.to_f64();
        match self.sign {
            Sign::Negative => -f,
            _ => f,
        }
    }

    /// Converts to `i64`, returning `None` on overflow.
    pub fn to_i64(&self) -> Option<i64> {
        let mag = self.mag.to_u128()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => (mag <= i64::MAX as u128).then_some(mag as i64),
            Sign::Negative => {
                (mag <= i64::MAX as u128 + 1).then(|| (mag as u64).wrapping_neg() as i64)
            }
        }
    }

    /// `self^exp` by binary exponentiation.
    pub fn pow(&self, exp: u32) -> IBig {
        let mag = self.mag.pow(exp);
        let sign = if exp == 0 {
            Sign::Positive
        } else if self.sign == Sign::Negative && exp % 2 == 1 {
            Sign::Negative
        } else if self.sign == Sign::Zero {
            Sign::Zero
        } else {
            Sign::Positive
        };
        IBig::from_sign_mag(sign, mag)
    }
}

impl From<i64> for IBig {
    fn from(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => IBig::zero(),
            Ordering::Greater => IBig::from_sign_mag(Sign::Positive, UBig::from(v as u64)),
            Ordering::Less => IBig::from_sign_mag(Sign::Negative, UBig::from(v.unsigned_abs())),
        }
    }
}

impl From<i32> for IBig {
    fn from(v: i32) -> Self {
        IBig::from(v as i64)
    }
}

impl From<u64> for IBig {
    fn from(v: u64) -> Self {
        IBig::from(UBig::from(v))
    }
}

impl From<UBig> for IBig {
    fn from(mag: UBig) -> Self {
        let sign = if mag.is_zero() {
            Sign::Zero
        } else {
            Sign::Positive
        };
        IBig::from_sign_mag(sign, mag)
    }
}

impl Neg for IBig {
    type Output = IBig;
    fn neg(self) -> IBig {
        IBig::from_sign_mag(self.sign.negate(), self.mag)
    }
}

impl Neg for &IBig {
    type Output = IBig;
    fn neg(self) -> IBig {
        self.clone().neg()
    }
}

macro_rules! forward_ibig_binop {
    ($trait:ident, $method:ident, $impl_method:ident) => {
        impl $trait for &IBig {
            type Output = IBig;
            fn $method(self, rhs: &IBig) -> IBig {
                self.$impl_method(rhs)
            }
        }
        impl $trait for IBig {
            type Output = IBig;
            fn $method(self, rhs: IBig) -> IBig {
                (&self).$impl_method(&rhs)
            }
        }
        impl $trait<&IBig> for IBig {
            type Output = IBig;
            fn $method(self, rhs: &IBig) -> IBig {
                (&self).$impl_method(rhs)
            }
        }
    };
}

forward_ibig_binop!(Add, add, add_ref);
forward_ibig_binop!(Sub, sub, sub_ref);
forward_ibig_binop!(Mul, mul, mul_ref);

impl AddAssign<&IBig> for IBig {
    fn add_assign(&mut self, rhs: &IBig) {
        *self = self.add_ref(rhs);
    }
}

impl SubAssign<&IBig> for IBig {
    fn sub_assign(&mut self, rhs: &IBig) {
        *self = self.sub_ref(rhs);
    }
}

impl MulAssign<&IBig> for IBig {
    fn mul_assign(&mut self, rhs: &IBig) {
        *self = self.mul_ref(rhs);
    }
}

impl Ord for IBig {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.sign.cmp(&other.sign) {
            Ordering::Equal => match self.sign {
                Sign::Negative => other.mag.cmp(&self.mag),
                Sign::Zero => Ordering::Equal,
                Sign::Positive => self.mag.cmp(&other.mag),
            },
            ord => ord,
        }
    }
}

impl PartialOrd for IBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for IBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Negative {
            write!(f, "-{}", self.mag)
        } else {
            write!(f, "{}", self.mag)
        }
    }
}

impl fmt::Debug for IBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IBig({self})")
    }
}

impl FromStr for IBig {
    type Err = ParseNumError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(rest) = s.strip_prefix('-') {
            let mag: UBig = rest.parse()?;
            Ok(IBig::from_sign_mag(
                if mag.is_zero() {
                    Sign::Zero
                } else {
                    Sign::Negative
                },
                mag,
            ))
        } else {
            let s = s.strip_prefix('+').unwrap_or(s);
            Ok(IBig::from(s.parse::<UBig>()?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ib(v: i64) -> IBig {
        IBig::from(v)
    }

    #[test]
    fn sign_normalization() {
        assert_eq!(
            IBig::from_sign_mag(Sign::Negative, UBig::zero()),
            IBig::zero()
        );
        assert_eq!(ib(0).sign(), Sign::Zero);
        assert_eq!(ib(-3).sign(), Sign::Negative);
        assert_eq!(ib(3).sign(), Sign::Positive);
    }

    #[test]
    fn mixed_sign_addition() {
        assert_eq!(ib(5).add_ref(&ib(-3)), ib(2));
        assert_eq!(ib(3).add_ref(&ib(-5)), ib(-2));
        assert_eq!(ib(-5).add_ref(&ib(5)), ib(0));
        assert_eq!(ib(-5).add_ref(&ib(-5)), ib(-10));
    }

    #[test]
    fn truncated_division_signs() {
        // Matches Rust primitive semantics.
        assert_eq!(ib(7).div_rem(&ib(2)), (ib(3), ib(1)));
        assert_eq!(ib(-7).div_rem(&ib(2)), (ib(-3), ib(-1)));
        assert_eq!(ib(7).div_rem(&ib(-2)), (ib(-3), ib(1)));
        assert_eq!(ib(-7).div_rem(&ib(-2)), (ib(3), ib(-1)));
    }

    #[test]
    fn to_i64_bounds() {
        assert_eq!(ib(i64::MAX).to_i64(), Some(i64::MAX));
        assert_eq!(ib(i64::MIN).to_i64(), Some(i64::MIN));
        let too_big = IBig::from(UBig::from(i64::MAX as u64).add_ref(&UBig::one()));
        assert_eq!(too_big.to_i64(), None);
        assert_eq!((-too_big).to_i64(), Some(i64::MIN));
    }

    #[test]
    fn pow_sign_rules() {
        assert_eq!(ib(-2).pow(3), ib(-8));
        assert_eq!(ib(-2).pow(4), ib(16));
        assert_eq!(ib(0).pow(0), ib(1));
        assert_eq!(ib(0).pow(3), ib(0));
    }

    #[test]
    fn display_parse() {
        assert_eq!(ib(-42).to_string(), "-42");
        assert_eq!("-42".parse::<IBig>().unwrap(), ib(-42));
        assert_eq!("+17".parse::<IBig>().unwrap(), ib(17));
        assert_eq!("-0".parse::<IBig>().unwrap(), IBig::zero());
    }

    proptest! {
        #[test]
        fn prop_arith_matches_i128(a in -(1i128 << 62)..(1i128 << 62), b in -(1i128 << 62)..(1i128 << 62)) {
            let (ba, bb) = (IBig::from(a as i64), IBig::from(b as i64));
            prop_assert_eq!(ba.add_ref(&bb).to_string(), (a + b).to_string());
            prop_assert_eq!(ba.sub_ref(&bb).to_string(), (a - b).to_string());
            prop_assert_eq!(ba.mul_ref(&bb).to_string(), (a * b).to_string());
        }

        #[test]
        fn prop_div_rem_matches_i64(a: i64, b in prop::num::i64::ANY.prop_filter("nonzero", |v| *v != 0)) {
            // i64::MIN / -1 overflows the primitive type; skip that single case.
            prop_assume!(!(a == i64::MIN && b == -1));
            let (q, r) = IBig::from(a).div_rem(&IBig::from(b));
            prop_assert_eq!(q.to_i64(), Some(a / b));
            prop_assert_eq!(r.to_i64(), Some(a % b));
        }

        #[test]
        fn prop_ordering_matches_i64(a: i64, b: i64) {
            prop_assert_eq!(IBig::from(a).cmp(&IBig::from(b)), a.cmp(&b));
        }

        #[test]
        fn prop_neg_involution(a: i64) {
            let v = IBig::from(a);
            prop_assert_eq!(-(-v.clone()), v);
        }
    }
}
