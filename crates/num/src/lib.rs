//! Arbitrary-precision integer and exact rational arithmetic.
//!
//! The operational CQA semantics of Calautti, Libkin and Pieris (PODS 2018)
//! assigns *exact* probabilities to repairing sequences: every edge of a
//! repairing Markov chain carries a rational weight, and the probability of a
//! repair is a sum of products of such weights (the hitting distribution of a
//! tree-shaped absorbing chain). Along deep repairing sequences these
//! products accumulate denominators that overflow any fixed-width integer,
//! and floating point would silently break the invariants the semantics is
//! built on (masses summing to exactly 1, conditional probabilities of
//! `p/q` form, comparisons between repairs of near-equal likelihood).
//!
//! This crate therefore provides:
//!
//! * [`UBig`] — an unsigned arbitrary-precision integer (little-endian
//!   `u64` limbs, schoolbook multiplication, Knuth Algorithm D division);
//! * [`IBig`] — a signed integer on top of [`UBig`];
//! * [`Rat`]  — an always-normalized exact rational, the number type used
//!   throughout `ocqa-core` for probabilities.
//!
//! The implementation favours clarity and exactness over asymptotic speed:
//! the magnitudes that appear in repair distributions are a few hundred to a
//! few thousand bits, where schoolbook algorithms are perfectly adequate
//! (see `benches/num.rs` in `ocqa-bench`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ibig;
mod rational;
mod ubig;

pub use ibig::{IBig, Sign};
pub use rational::Rat;
pub use ubig::UBig;

/// Error returned when parsing a number from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNumError {
    msg: String,
}

impl ParseNumError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for ParseNumError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid number: {}", self.msg)
    }
}

impl std::error::Error for ParseNumError {}
