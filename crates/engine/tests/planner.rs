//! Planner equivalence: for fixed seeds, planner-served answers must agree
//! with the exact conditional probabilities (computed by full chain
//! exploration) within ε, and stay bit-identical across pool sizes.

use ocqa_core::explore::{repair_distribution, ExploreOptions};
use ocqa_core::{RepairContext, UniformGenerator};
use ocqa_data::Database;
use ocqa_engine::{Engine, EngineConfig, EngineRequest, EngineResponse, PlanKind, QueryRef};
use ocqa_logic::parser;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Exact CP per answer tuple via monolithic exploration.
fn exact_cp(facts: &str, constraints: &str, query: &str) -> BTreeMap<String, f64> {
    let parsed = parser::parse_facts(facts).unwrap();
    let sigma = parser::parse_constraints(constraints).unwrap();
    let schema = parser::infer_schema(&parsed, &sigma).unwrap();
    let db = Database::from_facts(schema, parsed).unwrap();
    let ctx = RepairContext::new(db, sigma);
    let dist =
        repair_distribution(&ctx, &UniformGenerator::new(), &ExploreOptions::default()).unwrap();
    let q = parser::parse_query(query).unwrap();
    ocqa_core::answer::operational_answers(&dist, &q)
        .into_iter()
        .map(|(tuple, p)| {
            let key = tuple
                .iter()
                .map(|c| format!("{c}"))
                .collect::<Vec<_>>()
                .join(",");
            (key, p.to_f64())
        })
        .collect()
}

fn engine(workers: usize) -> Arc<Engine> {
    Engine::new(EngineConfig {
        workers,
        cache_capacity: 64,
        ..EngineConfig::default()
    })
}

fn answer(e: &Engine, db: &str, query: &str, eps: f64, seed: u64) -> ocqa_engine::AnswerPayload {
    let EngineResponse::Answer(a) = e.handle(EngineRequest::Answer {
        db: db.into(),
        query: QueryRef::Text(query.into()),
        generator: "uniform".into(),
        eps,
        delta: eps,
        seed,
        plan: None,
    }) else {
        panic!("expected answer");
    };
    a
}

const KEY_FACTS: &str = "R(1,10). R(1,20). R(2,30). R(2,40). R(2,50). R(3,60).";
const KEY_SIGMA: &str = "R(x,y), R(x,z) -> y = z.";
const DC_FACTS: &str = "Pref(a,b). Pref(b,a). Pref(c,d). Pref(d,c). Pref(e,f).";
const DC_SIGMA: &str = "Pref(x,y), Pref(y,x) -> false.";
const QUERY_R: &str = "(x) <- exists y: R(x,y)";
const QUERY_P: &str = "(x) <- exists y: Pref(x,y)";

#[test]
fn key_repair_plan_agrees_with_exact_cp() {
    let exact = exact_cp(KEY_FACTS, KEY_SIGMA, QUERY_R);
    let e = engine(2);
    let resp = e.handle(EngineRequest::CreateDb {
        name: "kv".into(),
        facts: KEY_FACTS.into(),
        constraints: KEY_SIGMA.into(),
    });
    assert!(matches!(resp, EngineResponse::Created(_)));
    // ε = δ = 0.05 ⇒ 738 walks; the additive bound holds with prob .95
    // per tuple, and these seeds are fixed (deterministic regression).
    for seed in [1u64, 2, 3] {
        let a = answer(&e, "kv", QUERY_R, 0.05, seed);
        assert_eq!(a.plan, PlanKind::KeyRepair);
        assert_eq!(a.failed_walks, 0);
        for row in &a.answers {
            let key = format!("{}", row.tuple[0]);
            let cp = exact[&key];
            assert!(
                (row.p - cp).abs() <= 0.05,
                "seed {seed}, tuple {key}: served {} vs exact {cp}",
                row.p
            );
            assert_eq!(row.p, row.p_cond, "non-failing chain: estimators agree");
        }
    }
}

#[test]
fn localized_plan_agrees_with_exact_cp() {
    let exact = exact_cp(DC_FACTS, DC_SIGMA, QUERY_P);
    let e = engine(2);
    let resp = e.handle(EngineRequest::CreateDb {
        name: "prefs".into(),
        facts: DC_FACTS.into(),
        constraints: DC_SIGMA.into(),
    });
    assert!(matches!(resp, EngineResponse::Created(_)));
    for seed in [1u64, 2, 3] {
        let a = answer(&e, "prefs", QUERY_P, 0.05, seed);
        assert_eq!(a.plan, PlanKind::Localized);
        for row in &a.answers {
            let key = format!("{}", row.tuple[0]);
            let cp = exact[&key];
            assert!(
                (row.p - cp).abs() <= 0.05,
                "seed {seed}, tuple {key}: served {} vs exact {cp}",
                row.p
            );
        }
    }
}

#[test]
fn planner_answers_bit_identical_across_pool_sizes() {
    // The engine-level counterpart of the pool's determinism test: for
    // each planned database the full served payload (tuples and both
    // estimators) must not depend on the worker count.
    for (name, facts, sigma, query, plan) in [
        ("kv", KEY_FACTS, KEY_SIGMA, QUERY_R, PlanKind::KeyRepair),
        ("prefs", DC_FACTS, DC_SIGMA, QUERY_P, PlanKind::Localized),
    ] {
        let mut outputs = Vec::new();
        for workers in [1usize, 2, 8] {
            let e = engine(workers);
            let resp = e.handle(EngineRequest::CreateDb {
                name: name.into(),
                facts: facts.into(),
                constraints: sigma.into(),
            });
            assert!(matches!(resp, EngineResponse::Created(_)));
            let a = answer(&e, name, query, 0.05, 123);
            assert_eq!(a.plan, plan);
            outputs.push(
                a.answers
                    .iter()
                    .map(|r| (r.tuple.clone(), r.p, r.p_cond))
                    .collect::<Vec<_>>(),
            );
        }
        assert_eq!(outputs[0], outputs[1], "{name}: 1 vs 2 workers");
        assert_eq!(outputs[0], outputs[2], "{name}: 1 vs 8 workers");
    }
}
