//! Planner equivalence: for fixed seeds, planner-served answers must agree
//! with the exact conditional probabilities (computed by full chain
//! exploration) within ε, and stay bit-identical across pool sizes.

use ocqa_core::explore::{repair_distribution, ExploreOptions};
use ocqa_core::{RepairContext, UniformGenerator};
use ocqa_data::Database;
use ocqa_engine::{Engine, EngineConfig, EngineRequest, EngineResponse, PlanKind, QueryRef};
use ocqa_logic::parser;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Exact CP per answer tuple via monolithic exploration.
fn exact_cp(facts: &str, constraints: &str, query: &str) -> BTreeMap<String, f64> {
    let parsed = parser::parse_facts(facts).unwrap();
    let sigma = parser::parse_constraints(constraints).unwrap();
    let schema = parser::infer_schema(&parsed, &sigma).unwrap();
    let db = Database::from_facts(schema, parsed).unwrap();
    let ctx = RepairContext::new(db, sigma);
    let dist =
        repair_distribution(&ctx, &UniformGenerator::new(), &ExploreOptions::default()).unwrap();
    let q = parser::parse_query(query).unwrap();
    ocqa_core::answer::operational_answers(&dist, &q)
        .into_iter()
        .map(|(tuple, p)| {
            let key = tuple
                .iter()
                .map(|c| format!("{c}"))
                .collect::<Vec<_>>()
                .join(",");
            (key, p.to_f64())
        })
        .collect()
}

fn engine(workers: usize) -> Arc<Engine> {
    Engine::new(EngineConfig {
        workers,
        cache_capacity: 64,
        ..EngineConfig::default()
    })
}

fn answer(e: &Engine, db: &str, query: &str, eps: f64, seed: u64) -> ocqa_engine::AnswerPayload {
    let EngineResponse::Answer(a) = e.handle(EngineRequest::Answer {
        db: db.into(),
        query: QueryRef::Text(query.into()),
        generator: "uniform".into(),
        eps,
        delta: eps,
        seed,
        plan: None,
    }) else {
        panic!("expected answer");
    };
    a
}

const KEY_FACTS: &str = "R(1,10). R(1,20). R(2,30). R(2,40). R(2,50). R(3,60).";
const KEY_SIGMA: &str = "R(x,y), R(x,z) -> y = z.";
const DC_FACTS: &str = "Pref(a,b). Pref(b,a). Pref(c,d). Pref(d,c). Pref(e,f).";
const DC_SIGMA: &str = "Pref(x,y), Pref(y,x) -> false.";
const QUERY_R: &str = "(x) <- exists y: R(x,y)";
const QUERY_P: &str = "(x) <- exists y: Pref(x,y)";

#[test]
fn key_repair_plan_agrees_with_exact_cp() {
    let exact = exact_cp(KEY_FACTS, KEY_SIGMA, QUERY_R);
    let e = engine(2);
    let resp = e.handle(EngineRequest::CreateDb {
        name: "kv".into(),
        facts: KEY_FACTS.into(),
        constraints: KEY_SIGMA.into(),
    });
    assert!(matches!(resp, EngineResponse::Created(_)));
    // ε = δ = 0.05 ⇒ 738 walks; the additive bound holds with prob .95
    // per tuple, and these seeds are fixed (deterministic regression).
    for seed in [1u64, 2, 3] {
        let a = answer(&e, "kv", QUERY_R, 0.05, seed);
        assert_eq!(a.plan, PlanKind::KeyRepair);
        assert_eq!(a.failed_walks, 0);
        for row in &a.answers {
            let key = format!("{}", row.tuple[0]);
            let cp = exact[&key];
            assert!(
                (row.p - cp).abs() <= 0.05,
                "seed {seed}, tuple {key}: served {} vs exact {cp}",
                row.p
            );
            assert_eq!(row.p, row.p_cond, "non-failing chain: estimators agree");
        }
    }
}

#[test]
fn localized_plan_agrees_with_exact_cp() {
    let exact = exact_cp(DC_FACTS, DC_SIGMA, QUERY_P);
    let e = engine(2);
    let resp = e.handle(EngineRequest::CreateDb {
        name: "prefs".into(),
        facts: DC_FACTS.into(),
        constraints: DC_SIGMA.into(),
    });
    assert!(matches!(resp, EngineResponse::Created(_)));
    for seed in [1u64, 2, 3] {
        let a = answer(&e, "prefs", QUERY_P, 0.05, seed);
        assert_eq!(a.plan, PlanKind::Localized);
        for row in &a.answers {
            let key = format!("{}", row.tuple[0]);
            let cp = exact[&key];
            assert!(
                (row.p - cp).abs() <= 0.05,
                "seed {seed}, tuple {key}: served {} vs exact {cp}",
                row.p
            );
        }
    }
}

/// Two 3-cycles under a 2-path denial constraint, plus one clean fact:
/// multi-component, so the static classifier and the cost model both
/// start on the localized plan.
const DRIFT_FACTS: &str =
    "Pref(a,b). Pref(b,c). Pref(c,a). Pref(d,e). Pref(e,f). Pref(f,d). Pref(q,r).";
const DRIFT_SIGMA: &str = "Pref(x,y), Pref(y,z) -> false.";
/// The drift: collapse everything into one 12-node cycle. The clean
/// fact survives, so the static guard (`components != 1 || clean > 0`)
/// keeps localized forever — only the cost model can flip.
const DRIFT_DELETE: &str = "Pref(c,a). Pref(d,e). Pref(e,f). Pref(f,d).";
const DRIFT_INSERT: &str = "Pref(c,d). Pref(d,e2). Pref(e2,f2). Pref(f2,g). Pref(g,h). \
     Pref(h,i). Pref(i,j). Pref(j,k). Pref(k,l). Pref(l,a).";

#[test]
fn drifted_database_flips_to_monolithic_only_under_the_cost_model() {
    use ocqa_engine::PlannerMode;

    let cost = engine(2);
    let fixed = Engine::new(EngineConfig {
        workers: 2,
        cache_capacity: 64,
        planner: PlannerMode::Static,
        ..EngineConfig::default()
    });
    for e in [&cost, &fixed] {
        let resp = e.handle(EngineRequest::CreateDb {
            name: "drift".into(),
            facts: DRIFT_FACTS.into(),
            constraints: DRIFT_SIGMA.into(),
        });
        assert!(matches!(resp, EngineResponse::Created(_)));
    }

    // Pre-drift: both modes serve localized, bit-identically.
    let a_cost = answer(&cost, "drift", QUERY_P, 0.1, 5);
    let a_fixed = answer(&fixed, "drift", QUERY_P, 0.1, 5);
    assert_eq!(a_cost.plan, PlanKind::Localized);
    assert_eq!(a_fixed.plan, PlanKind::Localized);
    assert_eq!(a_cost.answers, a_fixed.answers);

    // Drift: the same update stream on both engines grows one giant
    // conflict component (a 12-cycle) while the clean fact remains.
    for e in [&cost, &fixed] {
        let resp = e.handle(EngineRequest::Delete {
            db: "drift".into(),
            facts: DRIFT_DELETE.into(),
        });
        assert!(matches!(resp, EngineResponse::Updated(_)), "{resp:?}");
        let resp = e.handle(EngineRequest::Insert {
            db: "drift".into(),
            facts: DRIFT_INSERT.into(),
        });
        assert!(matches!(resp, EngineResponse::Updated(_)), "{resp:?}");
    }

    // Post-drift: the static classifier cannot move (the clean region
    // still argues for localization), the cost model flips to
    // monolithic.
    let a_fixed = answer(&fixed, "drift", QUERY_P, 0.1, 9);
    let a_cost = answer(&cost, "drift", QUERY_P, 0.1, 9);
    assert_eq!(a_fixed.plan, PlanKind::Localized);
    assert_eq!(a_cost.plan, PlanKind::Monolithic);
    // The flip changed only *which* plan serves: the cost engine's
    // monolithic payload is bit-identical to an explicit monolithic
    // override on the static engine (determinism contract), and both
    // plans' estimates agree within their summed ε bounds.
    let EngineResponse::Answer(a_override) = fixed.handle(EngineRequest::Answer {
        db: "drift".into(),
        query: QueryRef::Text(QUERY_P.into()),
        generator: "uniform".into(),
        eps: 0.1,
        delta: 0.1,
        seed: 9,
        plan: Some(PlanKind::Monolithic),
    }) else {
        panic!("expected answer");
    };
    assert_eq!(a_cost.answers, a_override.answers);
    assert_eq!(a_cost.answers.len(), a_fixed.answers.len());
    for (m, l) in a_cost.answers.iter().zip(&a_fixed.answers) {
        assert_eq!(m.tuple, l.tuple);
        assert!(
            (m.p - l.p).abs() <= 0.2,
            "plans disagree beyond 2ε on {:?}: {} vs {}",
            m.tuple,
            m.p,
            l.p
        );
    }

    // `explain` reports the new winner with the losing candidate still
    // feasible, and the static engine reports its own (unmoved) choice.
    let EngineResponse::Explain(x) = cost.handle(EngineRequest::Explain {
        db: "drift".into(),
        generator: "uniform".into(),
    }) else {
        panic!("expected explain");
    };
    assert_eq!(x.mode, PlannerMode::Cost);
    assert_eq!(x.chosen, PlanKind::Monolithic);
    assert_eq!(x.stats.components, 1);
    assert_eq!(x.stats.clean_facts, 1);
    let localized = x
        .candidates
        .iter()
        .find(|c| c.plan == PlanKind::Localized)
        .unwrap();
    assert!(
        localized.feasible,
        "the loser stays feasible: {localized:?}"
    );
    let key_repair = x
        .candidates
        .iter()
        .find(|c| c.plan == PlanKind::KeyRepair)
        .unwrap();
    assert!(!key_repair.feasible);
    assert_eq!(key_repair.gate, Some("key-cover"));
    let EngineResponse::Explain(x) = fixed.handle(EngineRequest::Explain {
        db: "drift".into(),
        generator: "uniform".into(),
    }) else {
        panic!("expected explain");
    };
    assert_eq!(x.mode, PlannerMode::Static);
    assert_eq!(x.chosen, PlanKind::Localized);
}

#[test]
fn planner_answers_bit_identical_across_pool_sizes() {
    // The engine-level counterpart of the pool's determinism test: for
    // each planned database the full served payload (tuples and both
    // estimators) must not depend on the worker count.
    for (name, facts, sigma, query, plan) in [
        ("kv", KEY_FACTS, KEY_SIGMA, QUERY_R, PlanKind::KeyRepair),
        ("prefs", DC_FACTS, DC_SIGMA, QUERY_P, PlanKind::Localized),
    ] {
        let mut outputs = Vec::new();
        for workers in [1usize, 2, 8] {
            let e = engine(workers);
            let resp = e.handle(EngineRequest::CreateDb {
                name: name.into(),
                facts: facts.into(),
                constraints: sigma.into(),
            });
            assert!(matches!(resp, EngineResponse::Created(_)));
            let a = answer(&e, name, query, 0.05, 123);
            assert_eq!(a.plan, plan);
            outputs.push(
                a.answers
                    .iter()
                    .map(|r| (r.tuple.clone(), r.p, r.p_cond))
                    .collect::<Vec<_>>(),
            );
        }
        assert_eq!(outputs[0], outputs[1], "{name}: 1 vs 2 workers");
        assert_eq!(outputs[0], outputs[2], "{name}: 1 vs 8 workers");
    }
}
