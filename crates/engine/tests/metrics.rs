//! End-to-end tests of the `metrics` protocol op, from shard to router.
//!
//! Two properties matter. **Shape determinism**: a `metrics` response is
//! a fixed-schema document (every op/plan/stage key present, sparse
//! buckets), so a zero-traffic route proxy over N single-shard upstreams
//! answers byte-identically to an in-process N-shard engine — the same
//! determinism contract `tests/route.rs` enforces for the serving ops,
//! extended to the observability surface. **Count determinism**: latency
//! *sums* are wall-clock and cannot be compared across deployments, but
//! histogram *counts* move in lockstep with the workload, so identical
//! workloads must report identical counts through either front door.

use ocqa_engine::obs::{Op, Stage, PLANS};
use ocqa_engine::{
    json, serve_listener, Engine, EngineConfig, MetricsSnapshot, PlanKind, PushSession, RouteProxy,
};

/// Starts `n` single-shard engines behind TCP listeners, as
/// `ocqa serve --shards 1 --listen …` would.
fn spawn_upstreams(n: usize, workers: usize, cache: usize) -> Vec<String> {
    (0..n)
        .map(|_| {
            let engine = Engine::new(EngineConfig {
                workers,
                cache_capacity: cache,
                ..EngineConfig::default()
            });
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().unwrap().to_string();
            std::thread::spawn(move || {
                let _ = serve_listener(engine, listener);
            });
            addr
        })
        .collect()
}

/// Parses a `metrics` response line into its per-shard snapshots.
fn parse_metrics(line: &str) -> Vec<MetricsSnapshot> {
    let v = json::parse(line).expect("metrics response parses");
    assert_eq!(v.get("ok").and_then(|j| j.as_bool()), Some(true), "{line}");
    let Some(json::Json::Arr(entries)) = v.get("per_shard") else {
        panic!("no per_shard array in {line}");
    };
    entries
        .iter()
        .map(|e| MetricsSnapshot::from_json(e).expect("per_shard entry parses"))
        .collect()
}

fn op_count(snap: &MetricsSnapshot, op: Op) -> u64 {
    let idx = Op::ALL.iter().position(|o| *o == op).unwrap();
    snap.ops[idx].count
}

fn merged(shards: &[MetricsSnapshot]) -> MetricsSnapshot {
    let mut total = MetricsSnapshot::default();
    for snap in shards {
        total.merge(snap);
    }
    total
}

#[test]
fn routed_metrics_are_byte_identical_to_in_process_sharding() {
    let addrs = spawn_upstreams(3, 1, 16);
    let proxy = RouteProxy::connect(addrs).expect("connect router");
    let reference = Engine::new(EngineConfig {
        workers: 3,
        cache_capacity: 48,
        shards: 3,
        ..EngineConfig::default()
    });

    // Zero traffic: both deployments must render the identical
    // fixed-schema document, byte for byte. The router's `upstreams`
    // health block is router-only by design and is the sole exemption.
    let routed = proxy.handle_line(r#"{"op":"metrics"}"#);
    let direct = reference.handle_line(r#"{"op":"metrics"}"#).to_string();
    let strip_upstreams = |line: &str| {
        let mut v = json::parse(line).expect("metrics parses");
        v.remove("upstreams");
        v.to_string()
    };
    assert_eq!(
        strip_upstreams(&routed),
        direct,
        "zero-traffic metrics diverged"
    );

    // Identical workload through both front doors: latency sums are
    // wall-clock, but every histogram *count* must agree.
    let workload = [
        r#"{"op":"create_db","name":"orders","facts":"R(1,10). R(1,20).","constraints":"R(x,y), R(x,z) -> y = z."}"#.to_string(),
        r#"{"op":"create_db","name":"users","facts":"R(2,30). R(2,40).","constraints":"R(x,y), R(x,z) -> y = z."}"#.to_string(),
        r#"{"op":"answer","db":"orders","query":"(x) <- exists y: R(x,y)","eps":0.1,"delta":0.1,"seed":7}"#.to_string(),
        r#"{"op":"answer","db":"orders","query":"(x) <- exists y: R(x,y)","eps":0.1,"delta":0.1,"seed":7}"#.to_string(),
        r#"{"op":"answer","db":"users","query":"(x) <- exists y: R(x,y)","eps":0.1,"delta":0.1,"seed":3}"#.to_string(),
        r#"{"op":"insert","db":"users","facts":"R(5,50)."}"#.to_string(),
        r#"{"op":"drop_db","name":"users"}"#.to_string(),
    ];
    for line in &workload {
        assert_eq!(
            proxy.handle_line(line),
            reference.handle_line(line).to_string()
        );
    }

    let routed = merged(&parse_metrics(&proxy.handle_line(r#"{"op":"metrics"}"#)));
    let direct = merged(&parse_metrics(
        &reference.handle_line(r#"{"op":"metrics"}"#).to_string(),
    ));
    for op in Op::ALL {
        assert_eq!(
            op_count(&routed, op),
            op_count(&direct, op),
            "count for op {:?} diverged",
            op
        );
    }
    for (i, _) in PLANS.iter().enumerate() {
        assert_eq!(
            routed.plans[i].count,
            direct.plans[i].count,
            "count for plan {} diverged",
            PLANS[i].as_str()
        );
    }
    assert_eq!(op_count(&routed, Op::Answer), 3);
    assert_eq!(op_count(&routed, Op::Install), 2);
    assert_eq!(op_count(&routed, Op::Update), 1);
    assert_eq!(op_count(&routed, Op::Drop), 1);
}

#[test]
fn routed_explain_is_byte_identical_to_in_process_sharding() {
    let addrs = spawn_upstreams(3, 1, 16);
    let proxy = RouteProxy::connect(addrs).expect("connect router");
    let reference = Engine::new(EngineConfig {
        workers: 3,
        cache_capacity: 48,
        shards: 3,
        ..EngineConfig::default()
    });

    // Zero-feedback state on purpose: with no recorded observations the
    // candidate costs are the integer analytic priors, so the whole
    // `explain` document — costs included — must agree byte for byte.
    let workload = [
        r#"{"op":"create_db","name":"kv","facts":"R(1,10). R(1,20). R(2,30).","constraints":"R(x,y), R(x,z) -> y = z."}"#,
        r#"{"op":"create_db","name":"net","facts":"Pref(a,b). Pref(b,a). Pref(c,d). Pref(d,c).","constraints":"Pref(x,y), Pref(y,x) -> false."}"#,
    ];
    for line in workload {
        assert_eq!(
            proxy.handle_line(line),
            reference.handle_line(line).to_string()
        );
    }
    for (explain, chosen, prior) in [
        (
            r#"{"op":"explain","db":"kv"}"#,
            "\"chosen\":\"key-repair\"",
            "\"source\":\"prior\"",
        ),
        (
            r#"{"op":"explain","db":"net"}"#,
            "\"chosen\":\"localized\"",
            "\"source\":\"prior\"",
        ),
        // A non-component-local generator gates out both fast paths.
        (
            r#"{"op":"explain","db":"net","generator":"preference"}"#,
            "\"chosen\":\"monolithic\"",
            "\"gate\":\"component-local\"",
        ),
    ] {
        let routed = proxy.handle_line(explain);
        let direct = reference.handle_line(explain).to_string();
        assert_eq!(routed, direct, "explain diverged for {explain}");
        assert!(routed.contains("\"mode\":\"cost\""), "{routed}");
        assert!(routed.contains(chosen), "{routed}");
        assert!(routed.contains(prior), "{routed}");
    }
}

#[test]
fn metrics_counts_reflect_the_workload() {
    let engine = Engine::new(EngineConfig {
        workers: 2,
        cache_capacity: 16,
        shards: 2,
        ..EngineConfig::default()
    });
    let create = r#"{"op":"create_db","name":"kv","facts":"R(1,10). R(1,20). R(2,30).","constraints":"R(x,y), R(x,z) -> y = z."}"#;
    assert!(engine
        .handle_line(create)
        .to_string()
        .contains("\"ok\":true"));
    let answer = r#"{"op":"answer","db":"kv","query":"(x) <- exists y: R(x,y)","eps":0.1,"delta":0.1,"seed":7}"#;
    let cold = engine.handle_line(answer).to_string();
    assert!(cold.contains("\"plan\":\"key-repair\""), "{cold}");
    let cached = engine.handle_line(answer).to_string();
    assert!(cached.contains("\"cached\":true"), "{cached}");
    // A failed answer must not move the op/plan histograms.
    let err = engine
        .handle_line(r#"{"op":"answer","db":"ghost","query":"(x) <- R(x,y)","seed":0}"#)
        .to_string();
    assert!(err.contains("\"ok\":false"), "{err}");

    let line = engine.handle_line(r#"{"op":"metrics"}"#).to_string();
    let v = json::parse(&line).unwrap();
    assert_eq!(v.get("shards").and_then(|j| j.as_u64()), Some(2));
    let shards = parse_metrics(&line);
    assert_eq!(shards.len(), 2);
    let total = merged(&shards);

    assert_eq!(op_count(&total, Op::Answer), 2, "{line}");
    assert_eq!(op_count(&total, Op::Install), 1);
    let plan_idx = PLANS
        .iter()
        .position(|p| *p == PlanKind::KeyRepair)
        .unwrap();
    assert_eq!(total.plans[plan_idx].count, 2, "both answers key-repair");
    let stage_idx = Stage::ALL
        .iter()
        .position(|s| *s == Stage::CacheLookup)
        .unwrap();
    assert!(
        total.stages[stage_idx].count >= 2,
        "cache lookups recorded: {line}"
    );
    // The rendered `total` must equal the merge of `per_shard` — the
    // same invariant the router relies on when it aggregates upstreams.
    let rendered_total = MetricsSnapshot::from_json(v.get("total").unwrap()).unwrap();
    assert_eq!(rendered_total, total, "total is the per-shard merge");
}

#[test]
fn subscription_gauges_sum_exactly_once_through_the_router() {
    let addrs = spawn_upstreams(2, 1, 8);
    let proxy = RouteProxy::connect_with(addrs, 0, 64).expect("connect router");
    let reference = Engine::new(EngineConfig {
        workers: 2,
        cache_capacity: 16,
        shards: 2,
        ..EngineConfig::default()
    });
    let setup = [
        r#"{"op":"create_db","name":"prefs","facts":"R(1,10). R(1,20).","constraints":"R(x,y), R(x,z) -> y = z."}"#,
        r#"{"op":"create_db","name":"orders","facts":"R(2,30). R(2,40).","constraints":"R(x,y), R(x,z) -> y = z."}"#,
    ];
    for line in setup {
        assert_eq!(
            proxy.handle_line(line),
            reference.handle_line(line).to_string()
        );
    }
    let subscribes = [
        r#"{"op":"subscribe","db":"prefs","query":"(x) <- exists y: R(x,y)","eps":0.1,"delta":0.1,"seed":7}"#,
        r#"{"op":"subscribe","db":"prefs","query":"(y) <- exists x: R(x,y)","eps":0.1,"delta":0.1,"seed":7}"#,
        r#"{"op":"subscribe","db":"orders","query":"(x) <- exists y: R(x,y)","eps":0.1,"delta":0.1,"seed":7}"#,
    ];
    let routed_session = PushSession::new();
    let direct_session = PushSession::new();
    for line in subscribes {
        assert_eq!(
            proxy.handle_open_line(line, &routed_session),
            reference
                .handle_open_line(line, &direct_session)
                .to_string()
        );
    }

    // The gauge is per-shard; the router's merge must count each
    // shard's registry exactly once — three live subscriptions total,
    // however the databases landed.
    let check = |line: &str| {
        let shards = parse_metrics(line);
        let per_shard: u64 = shards.iter().map(|s| s.subscriptions).sum();
        assert_eq!(per_shard, 3, "{line}");
        let v = json::parse(line).unwrap();
        let total = MetricsSnapshot::from_json(v.get("total").unwrap()).unwrap();
        assert_eq!(total.subscriptions, 3, "double-counted: {line}");
    };
    check(&proxy.handle_line(r#"{"op":"metrics"}"#));
    check(&reference.handle_line(r#"{"op":"metrics"}"#).to_string());

    // The `stats` gauge is the same sum, through both front doors.
    for line in [
        proxy.handle_line(r#"{"op":"stats"}"#),
        reference.handle_line(r#"{"op":"stats"}"#).to_string(),
    ] {
        let v = json::parse(&line).unwrap();
        assert_eq!(
            v.get("subscriptions").and_then(|j| j.as_u64()),
            Some(3),
            "{line}"
        );
    }

    // Unsubscribing moves the gauge down identically.
    let unsub = r#"{"op":"unsubscribe","db":"prefs","sub":1}"#;
    assert_eq!(
        proxy.handle_open_line(unsub, &routed_session),
        reference
            .handle_open_line(unsub, &direct_session)
            .to_string()
    );
    for line in [
        proxy.handle_line(r#"{"op":"stats"}"#),
        reference.handle_line(r#"{"op":"stats"}"#).to_string(),
    ] {
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("subscriptions").and_then(|j| j.as_u64()), Some(2));
    }
}

#[test]
fn stats_report_uptime_and_build_version() {
    let engine = Engine::new(EngineConfig::default());
    let line = engine.handle_line(r#"{"op":"stats"}"#).to_string();
    let v = json::parse(&line).unwrap();
    assert!(
        v.get("uptime_ms").and_then(|j| j.as_u64()).is_some(),
        "{line}"
    );
    assert_eq!(
        v.get("build").and_then(|j| j.as_str()),
        Some(env!("CARGO_PKG_VERSION")),
        "{line}"
    );
}

#[test]
fn routed_stats_carry_per_upstream_health() {
    let addrs = spawn_upstreams(2, 1, 8);
    let proxy = RouteProxy::connect(addrs.clone()).expect("connect router");
    let line = proxy.handle_line(r#"{"op":"stats"}"#);
    let v = json::parse(&line).unwrap();
    let Some(json::Json::Arr(ups)) = v.get("upstreams") else {
        panic!("no upstreams health in {line}");
    };
    assert_eq!(ups.len(), 2, "{line}");
    for (entry, addr) in ups.iter().zip(&addrs) {
        assert_eq!(
            entry.get("addr").and_then(|j| j.as_str()),
            Some(addr.as_str())
        );
        assert_eq!(entry.get("healthy").and_then(|j| j.as_bool()), Some(true));
        assert_eq!(entry.get("reconnects").and_then(|j| j.as_u64()), Some(0));
        let dial = entry.get("dial").expect("dial histogram present");
        assert!(
            dial.get("count").and_then(|j| j.as_u64()).unwrap_or(0) >= 1,
            "connect() dialed at least once: {line}"
        );
    }
}
