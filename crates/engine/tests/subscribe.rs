//! End-to-end tests of the streaming subsystem: `subscribe` over real
//! TCP sessions, pushed re-estimates, and the routed relay.
//!
//! Three contracts are pinned here. **Touch discipline**: an update
//! pushes a re-estimate iff it perturbs a conflict component the
//! subscribed query reads — clean-region-only updates push nothing and
//! sample nothing (verified through the `sample`-stage walk counter).
//! **Invalidation ordering**: by the time a pushed frame is readable,
//! the answer cache already serves the new version, so a subscriber
//! reacting with an immediate `answer` sees `"cached":true` at the
//! pushed `db_version`. **Relay byte identity**: a subscriber behind
//! `ocqa route` reads responses and frames byte-for-byte equal to one
//! connected to the equivalent in-process sharded engine.

use ocqa_engine::{
    json, serve_listener, Engine, EngineConfig, MetricsSnapshot, PushSession, RouteProxy,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A blocking NDJSON test client over one TCP connection. Reads are
/// bounded by a socket timeout so a missing push fails the test instead
/// of wedging it.
struct Client {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            stream,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.stream, "{line}").unwrap();
        self.stream.flush().unwrap();
    }

    /// The next line the server writes — a response or a pushed frame.
    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read line");
        assert!(n > 0, "server closed the connection");
        line.trim_end().to_string()
    }

    fn request(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

fn spawn_engine(config: EngineConfig) -> String {
    let engine = Engine::new(config);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let _ = serve_listener(engine, listener);
    });
    addr
}

/// Starts `n` single-shard engines behind TCP listeners plus a route
/// proxy over them, itself behind a listener. Returns the proxy address.
fn spawn_routed(n: usize, workers: usize, cache: usize, max_subs: usize) -> String {
    let addrs: Vec<String> = (0..n)
        .map(|_| {
            spawn_engine(EngineConfig {
                workers,
                cache_capacity: cache,
                ..EngineConfig::default()
            })
        })
        .collect();
    let proxy = RouteProxy::connect_with(addrs, 0, max_subs).expect("connect router");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let _ = serve_listener(proxy, listener);
    });
    addr
}

const CREATE: &str = r#"{"op":"create_db","name":"prefs","facts":"R(1,10). R(1,20). S(1,1).","constraints":"R(x,y), R(x,z) -> y = z."}"#;
const SUBSCRIBE: &str = r#"{"op":"subscribe","db":"prefs","query":"(x) <- exists y: R(x,y)","eps":0.1,"delta":0.1,"seed":7}"#;

fn field_u64(line: &str, key: &str) -> u64 {
    json::parse(line)
        .expect("line parses")
        .get(key)
        .and_then(json::Json::as_u64)
        .unwrap_or_else(|| panic!("no {key:?} in {line}"))
}

/// Total `sample`-stage runs across all shards — the walk counter the
/// no-resampling pin reads.
fn sample_runs(control: &mut Client) -> u64 {
    let line = control.request(r#"{"op":"metrics"}"#);
    let v = json::parse(&line).expect("metrics parses");
    let Some(json::Json::Arr(entries)) = v.get("per_shard") else {
        panic!("no per_shard in {line}");
    };
    let idx = ocqa_engine::obs::Stage::ALL
        .iter()
        .position(|s| *s == ocqa_engine::obs::Stage::Sample)
        .unwrap();
    entries
        .iter()
        .map(|e| {
            MetricsSnapshot::from_json(e)
                .expect("snapshot parses")
                .stages[idx]
                .count
        })
        .sum()
}

#[test]
fn pushes_land_only_for_touching_updates() {
    let addr = spawn_engine(EngineConfig {
        workers: 2,
        cache_capacity: 64,
        ..EngineConfig::default()
    });
    let mut control = Client::connect(&addr);
    let mut sub = Client::connect(&addr);

    assert!(control.request(CREATE).contains("\"ok\":true"));
    let resp = sub.request(SUBSCRIBE);
    assert_eq!(resp, r#"{"db":"prefs","ok":true,"shard":0,"sub":1}"#);

    // A conflicting insert touches the subscriber's component: one
    // estimate frame, at the bumped version, with the fixed frame schema.
    assert!(control
        .request(r#"{"op":"insert","db":"prefs","facts":"R(2,30). R(2,31)."}"#)
        .contains("\"ok\":true"));
    let frame = sub.recv();
    assert_eq!(field_u64(&frame, "sub"), 1);
    assert_eq!(field_u64(&frame, "walks"), 150);
    let v1 = field_u64(&frame, "db_version");
    for key in ["\"answers\":", "\"event\":\"estimate\"", "\"plan\":"] {
        assert!(frame.contains(key), "{frame}");
    }
    for absent in ["\"shard\"", "\"cached\""] {
        assert!(!frame.contains(absent), "deployment field leaked: {frame}");
    }

    // A clean-region-only insert (unconstrained relation S): no push,
    // and — the stronger claim — no sampling run at all.
    let walks_before = sample_runs(&mut control);
    assert!(control
        .request(r#"{"op":"insert","db":"prefs","facts":"S(9,9)."}"#)
        .contains("\"ok\":true"));
    assert_eq!(
        sample_runs(&mut control),
        walks_before,
        "clean update must not resample"
    );
    // The next touching update's frame is the *next* line the
    // subscriber reads, and it skips the clean update's version —
    // proving nothing was pushed for it.
    assert!(control
        .request(r#"{"op":"insert","db":"prefs","facts":"R(1,40)."}"#)
        .contains("\"ok\":true"));
    let frame = sub.recv();
    assert_eq!(field_u64(&frame, "db_version"), v1 + 2);
    assert_eq!(field_u64(&frame, "sub"), 1);

    // Unsubscribe is session-scoped and immediate.
    assert_eq!(
        sub.request(r#"{"op":"unsubscribe","db":"prefs","sub":1}"#),
        r#"{"db":"prefs","ok":true,"shard":0,"sub":1,"unsubscribed":true}"#
    );
    assert!(control
        .request(r#"{"op":"insert","db":"prefs","facts":"R(1,41)."}"#)
        .contains("\"ok\":true"));

    // Re-subscribe, then drop the database: the subscriber's next line
    // is the closed frame — no stray estimate from the post-unsubscribe
    // insert ahead of it.
    assert_eq!(field_u64(&sub.request(SUBSCRIBE), "sub"), 2);
    assert!(control
        .request(r#"{"op":"drop_db","name":"prefs"}"#)
        .contains("\"ok\":true"));
    assert_eq!(
        sub.recv(),
        r#"{"db":"prefs","event":"closed","reason":"dropped","sub":2}"#
    );
}

#[test]
fn window_thins_pushes_to_every_nth_touch() {
    let addr = spawn_engine(EngineConfig {
        workers: 1,
        cache_capacity: 16,
        ..EngineConfig::default()
    });
    let mut control = Client::connect(&addr);
    let mut sub = Client::connect(&addr);
    assert!(control.request(CREATE).contains("\"ok\":true"));
    let windowed = r#"{"op":"subscribe","db":"prefs","query":"(x) <- exists y: R(x,y)","eps":0.1,"delta":0.1,"seed":7,"window":2}"#;
    assert_eq!(field_u64(&sub.request(windowed), "sub"), 1);

    // Two touching updates: the window admits only the second.
    assert!(control
        .request(r#"{"op":"insert","db":"prefs","facts":"R(1,30)."}"#)
        .contains("\"ok\":true"));
    assert!(control
        .request(r#"{"op":"insert","db":"prefs","facts":"R(1,31)."}"#)
        .contains("\"ok\":true"));
    let frame = sub.recv();
    assert_eq!(field_u64(&frame, "db_version"), 3, "{frame}");

    // `window: 0` is rejected at parse time.
    let bad = sub
        .request(r#"{"op":"subscribe","db":"prefs","query":"(x) <- exists y: R(x,y)","window":0}"#);
    assert!(
        bad.contains(r#"\"window\" must be a positive integer"#) && bad.contains("\"ok\":false"),
        "{bad}"
    );
}

#[test]
fn pushed_frame_sees_the_already_invalidated_cache() {
    let addr = spawn_engine(EngineConfig {
        workers: 2,
        cache_capacity: 64,
        ..EngineConfig::default()
    });
    let mut control = Client::connect(&addr);
    let mut sub = Client::connect(&addr);
    assert!(control.request(CREATE).contains("\"ok\":true"));
    assert_eq!(field_u64(&sub.request(SUBSCRIBE), "sub"), 1);

    assert!(control
        .request(r#"{"op":"insert","db":"prefs","facts":"R(2,30). R(2,31)."}"#)
        .contains("\"ok\":true"));
    let frame = sub.recv();
    let pushed_version = field_u64(&frame, "db_version");

    // Ordering contract: the cache was floored to the new version
    // *before* the frame was emitted, and the re-estimate itself went
    // through the answer path — so reacting to the push with the same
    // answer parameters is a cache hit at the pushed version, with the
    // pushed tallies.
    let answer = control.request(
        r#"{"op":"answer","db":"prefs","query":"(x) <- exists y: R(x,y)","eps":0.1,"delta":0.1,"seed":7}"#,
    );
    assert!(answer.contains("\"cached\":true"), "{answer}");
    assert_eq!(field_u64(&answer, "db_version"), pushed_version);
    let frame_answers = json::parse(&frame)
        .unwrap()
        .get("answers")
        .unwrap()
        .to_string();
    let answer_answers = json::parse(&answer)
        .unwrap()
        .get("answers")
        .unwrap()
        .to_string();
    assert_eq!(frame_answers, answer_answers, "pushed tally diverged");
}

/// Runs the full streaming script against one endpoint, returning every
/// line read (responses and frames, labeled by connection) in order.
fn streaming_transcript(addr: &str) -> Vec<(&'static str, String)> {
    let mut control = Client::connect(addr);
    let mut sub = Client::connect(addr);
    let mut log: Vec<(&'static str, String)> = Vec::new();
    let ctl = |c: &mut Client, line: &str, log: &mut Vec<(&'static str, String)>| {
        log.push(("control", c.request(line)));
    };
    ctl(&mut control, CREATE, &mut log);
    log.push(("sub", sub.request(SUBSCRIBE)));
    ctl(
        &mut control,
        r#"{"op":"insert","db":"prefs","facts":"R(2,30). R(2,31)."}"#,
        &mut log,
    );
    log.push(("frame", sub.recv()));
    // Clean insert: no frame (the next frame read below must skip it).
    ctl(
        &mut control,
        r#"{"op":"insert","db":"prefs","facts":"S(5,5)."}"#,
        &mut log,
    );
    ctl(
        &mut control,
        r#"{"op":"insert","db":"prefs","facts":"R(1,40)."}"#,
        &mut log,
    );
    log.push(("frame", sub.recv()));
    // Satellite ordering check, routed variant included: the reaction
    // answer is a cache hit in *both* deployments, so it byte-compares.
    ctl(
        &mut control,
        r#"{"op":"answer","db":"prefs","query":"(x) <- exists y: R(x,y)","eps":0.1,"delta":0.1,"seed":7}"#,
        &mut log,
    );
    // Live-subscription stats: normalized below for wall-clock and
    // router-only fields, byte-identical otherwise.
    let stats = control.request(r#"{"op":"stats"}"#);
    let mut v = json::parse(&stats).expect("stats parses");
    v.remove("uptime_ms");
    v.remove("upstreams");
    v.remove("topology");
    log.push(("stats", v.to_string()));
    log.push((
        "sub",
        sub.request(r#"{"op":"unsubscribe","db":"prefs","sub":1}"#),
    ));
    log.push(("sub", sub.request(SUBSCRIBE)));
    ctl(&mut control, r#"{"op":"drop_db","name":"prefs"}"#, &mut log);
    log.push(("frame", sub.recv()));
    // The closed subscription is deregistered everywhere: a late
    // unsubscribe renders the canonical unknown-subscription error.
    log.push((
        "sub",
        sub.request(r#"{"op":"unsubscribe","db":"prefs","sub":2}"#),
    ));
    log
}

#[test]
fn routed_streaming_is_byte_identical_to_in_process_sharding() {
    let routed_addr = spawn_routed(2, 1, 32, 64);
    let direct_addr = spawn_engine(EngineConfig {
        workers: 2,
        cache_capacity: 64,
        shards: 2,
        ..EngineConfig::default()
    });

    let routed = streaming_transcript(&routed_addr);
    let direct = streaming_transcript(&direct_addr);
    assert_eq!(routed.len(), direct.len());
    for (i, ((rl, routed), (dl, direct))) in routed.iter().zip(&direct).enumerate() {
        assert_eq!(rl, dl);
        assert_eq!(
            routed, direct,
            "line {i} ({rl}) diverged\n  routed: {routed}\n  direct: {direct}"
        );
    }
    // The script exercised what it claims: pushes, a cache-hit
    // reaction, live-subscription stats, and the closed frame.
    let frames: Vec<&String> = routed
        .iter()
        .filter(|(l, _)| *l == "frame")
        .map(|(_, f)| f)
        .collect();
    assert_eq!(frames.len(), 3);
    assert!(frames[0].contains("\"event\":\"estimate\""));
    assert!(frames[2].contains("\"reason\":\"dropped\""));
    let stats = &routed.iter().find(|(l, _)| *l == "stats").unwrap().1;
    assert!(stats.contains("\"subscriptions\":1"), "{stats}");
    let cached = &routed[7].1;
    assert!(cached.contains("\"cached\":true"), "{cached}");
}

#[test]
fn session_subscription_limit_rejects_identically_everywhere() {
    let direct_addr = spawn_engine(EngineConfig {
        workers: 1,
        cache_capacity: 16,
        max_subs_per_conn: 2,
        ..EngineConfig::default()
    });
    let routed_addr = spawn_routed(1, 1, 16, 2);

    let run = |addr: &str| {
        let mut c = Client::connect(addr);
        assert!(c.request(CREATE).contains("\"ok\":true"));
        assert_eq!(field_u64(&c.request(SUBSCRIBE), "sub"), 1);
        assert_eq!(field_u64(&c.request(SUBSCRIBE), "sub"), 2);
        let rejected = c.request(SUBSCRIBE);
        assert!(
            rejected.contains("session subscription limit of 2 reached")
                && rejected.contains("\"ok\":false"),
            "{rejected}"
        );
        // Releasing a slot re-admits.
        assert!(c
            .request(r#"{"op":"unsubscribe","db":"prefs","sub":1}"#)
            .contains("\"unsubscribed\":true"));
        assert_eq!(field_u64(&c.request(SUBSCRIBE), "sub"), 3);
        rejected
    };
    assert_eq!(
        run(&direct_addr),
        run(&routed_addr),
        "rejection bytes diverged"
    );
}

#[test]
fn stdio_sessions_reject_subscribe() {
    let engine = Engine::new(EngineConfig::default());
    assert!(engine
        .handle_line(CREATE)
        .to_string()
        .contains("\"ok\":true"));
    let resp = engine.handle_line(SUBSCRIBE).to_string();
    assert!(
        resp.contains("subscribe needs a streaming session") && resp.contains("\"ok\":false"),
        "{resp}"
    );
}

#[test]
fn upstream_death_synthesizes_the_closed_frame() {
    // A real single-shard engine behind an accept loop that remembers
    // every connection, so the test can sever them all — the in-process
    // stand-in for `kill -9` on the upstream.
    let engine = Engine::new(EngineConfig {
        workers: 1,
        cache_capacity: 16,
        ..EngineConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let conns: Arc<std::sync::Mutex<Vec<TcpStream>>> = Arc::new(std::sync::Mutex::new(Vec::new()));
    {
        let conns = conns.clone();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { return };
                conns.lock().unwrap().push(stream.try_clone().unwrap());
                let engine = engine.clone();
                std::thread::spawn(move || {
                    let _ = ocqa_engine::handle_connection(&*engine, stream);
                });
            }
        });
    }
    let proxy = RouteProxy::connect_with(vec![addr], 0, 64).expect("connect");
    let session = PushSession::new();
    assert!(proxy.handle_line(CREATE).contains("\"ok\":true"));
    let resp = proxy.handle_open_line(SUBSCRIBE, &session);
    assert!(resp.contains("\"sub\":1"), "{resp}");
    assert!(proxy
        .handle_line(r#"{"op":"insert","db":"prefs","facts":"R(2,30). R(2,31)."}"#)
        .contains("\"ok\":true"));
    let frame = pop_timeout(&session);
    assert!(frame.contains("\"event\":\"estimate\""), "{frame}");

    // Sever every upstream socket: the relay must synthesize the
    // structured closed frame instead of leaving the subscriber hanging.
    for stream in conns.lock().unwrap().iter() {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    let frame = pop_timeout(&session);
    assert_eq!(
        frame,
        r#"{"db":"prefs","event":"closed","reason":"upstream","sub":1}"#
    );
    // The slot was released and the subscription deregistered.
    assert_eq!(session.sub_count(), 0);
    let resp = proxy.handle_open_line(r#"{"op":"unsubscribe","db":"prefs","sub":1}"#, &session);
    assert!(
        resp.contains(r#"no subscription 1 on database \"prefs\" in this session"#),
        "{resp}"
    );
}

/// Bounded `pop_wait` so relay failures surface as assertions.
fn pop_timeout(session: &PushSession) -> String {
    let (tx, rx) = std::sync::mpsc::channel();
    let s = session.clone();
    std::thread::spawn(move || {
        let _ = tx.send(s.pop_wait());
    });
    rx.recv_timeout(Duration::from_secs(30))
        .expect("timed out waiting for a pushed frame")
        .expect("session closed without the expected frame")
}
