//! End-to-end tests of the multi-process route proxy.
//!
//! The acceptance bar is **byte identity**: a workload served through a
//! [`RouteProxy`] over N single-shard upstream servers must produce
//! responses byte-for-byte equal to the same workload against an
//! in-process `Engine` with N shards — the determinism contract
//! (placement never changes an estimate), extended across the process
//! boundary. The `shard` field needs no exemption: the proxy rewrites
//! each upstream's local `0` to the global shard index, which matches
//! the in-process router because both use the same rendezvous hash.

use ocqa_engine::{serve_listener, Engine, EngineConfig, RouteProxy};
use std::sync::Arc;

/// Starts `n` single-shard engines, each behind its own TCP listener
/// (exactly what `ocqa serve --shards 1 --listen …` runs), and returns
/// their addresses.
fn spawn_upstreams(n: usize, workers: usize, cache: usize) -> Vec<String> {
    (0..n)
        .map(|_| {
            let engine = Engine::new(EngineConfig {
                workers,
                cache_capacity: cache,
                ..EngineConfig::default()
            });
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().unwrap().to_string();
            std::thread::spawn(move || {
                let _ = serve_listener(engine, listener);
            });
            addr
        })
        .collect()
}

/// The reference: one in-process engine partitioned identically — same
/// per-shard worker and cache budget as the upstreams.
fn reference_engine(
    shards: usize,
    workers_per_shard: usize,
    cache_per_shard: usize,
) -> Arc<Engine> {
    Engine::new(EngineConfig {
        workers: workers_per_shard * shards,
        cache_capacity: cache_per_shard * shards,
        shards,
        ..EngineConfig::default()
    })
}

#[test]
fn routed_responses_are_byte_identical_to_in_process_sharding() {
    let addrs = spawn_upstreams(3, 2, 64);
    let proxy = RouteProxy::connect(addrs).expect("connect router");
    let reference = reference_engine(3, 2, 64);

    let names = ["orders", "users", "events", "billing", "audit"];
    let mut workload: Vec<String> = Vec::new();
    for name in names {
        workload.push(format!(
            r#"{{"op":"create_db","name":"{name}","facts":"R(1,10). R(1,20). R(2,30). R(2,40). R(3,50).","constraints":"R(x,y), R(x,z) -> y = z."}}"#
        ));
    }
    // A duplicate create (routed to the owner, fails identically).
    workload.push(r#"{"op":"create_db","name":"orders","facts":"","constraints":""}"#.to_string());
    // Prepared handles: minted by shard 0, usable against every shard.
    workload.push(r#"{"op":"prepare","query":"(x) <- exists y: R(x,y)"}"#.to_string());
    workload.push(r#"{"op":"prepared_get","id":"q1"}"#.to_string());
    workload.push(r#"{"op":"prepared_get","id":"q999"}"#.to_string());
    for (i, name) in names.iter().enumerate() {
        // Inline-text answers…
        workload.push(format!(
            r#"{{"op":"answer","db":"{name}","query":"(y) <- exists x: R(x,y)","eps":0.1,"delta":0.1,"seed":{i}}}"#
        ));
        // …and prepared-handle answers (rewritten to text for shards ≠ 0).
        workload.push(format!(
            r#"{{"op":"answer","db":"{name}","prepared":"q1","eps":0.1,"delta":0.1,"seed":7}}"#
        ));
    }
    // Cache hits, updates, invalidation, drops — the mutating surface.
    workload.push(
        r#"{"op":"answer","db":"orders","prepared":"q1","eps":0.1,"delta":0.1,"seed":7}"#
            .to_string(),
    );
    workload.push(r#"{"op":"insert","db":"users","facts":"R(9,90)."}"#.to_string());
    workload.push(
        r#"{"op":"answer","db":"users","query":"(y) <- exists x: R(x,y)","eps":0.1,"delta":0.1,"seed":1}"#
            .to_string(),
    );
    workload.push(r#"{"op":"delete","db":"users","facts":"R(9,90)."}"#.to_string());
    workload.push(r#"{"op":"drop_db","name":"audit"}"#.to_string());
    // Error surface: unknown db, unknown generator, bad plan, bad JSON.
    workload.push(r#"{"op":"answer","db":"ghost","query":"(x) <- R(x)","seed":0}"#.to_string());
    workload.push(
        r#"{"op":"answer","db":"orders","query":"(x) <- R(x,y)","generator":"nope"}"#.to_string(),
    );
    workload.push("}{not json".to_string());
    workload.push(r#"{"op":"ping"}"#.to_string());
    // Fan-outs: merged list (sorted, shard-tagged) and summed stats.
    workload.push(r#"{"op":"list"}"#.to_string());

    for (i, line) in workload.iter().enumerate() {
        let routed = proxy.handle_line(line);
        let direct = reference.handle_line(line).to_string();
        assert_eq!(
            routed, direct,
            "request {i} diverged\n  request: {line}\n  routed:  {routed}\n  direct:  {direct}"
        );
    }

    // Stats too: the route proxy's request counter, upstream counter
    // sums and shard count all line up with the in-process fan-out.
    // `uptime_ms` is wall-clock, and `upstreams` (per-upstream health)
    // and `topology` (membership, epoch, moves) are router-only by
    // design — everything else must match byte-for-byte.
    let routed = proxy.handle_line(r#"{"op":"stats"}"#);
    let direct = reference.handle_line(r#"{"op":"stats"}"#).to_string();
    let normalize = |line: &str| {
        let mut v = ocqa_engine::json::parse(line).expect("stats parses");
        v.remove("uptime_ms");
        v.remove("upstreams");
        v.remove("topology");
        v.to_string()
    };
    assert_eq!(normalize(&routed), normalize(&direct), "stats diverged");

    // Sanity: the workload actually spread over several shards.
    let shards: std::collections::HashSet<usize> =
        names.iter().map(|n| proxy.shard_of(n)).collect();
    assert!(shards.len() > 1, "workload stayed on one shard: {shards:?}");
    // And the proxy agrees with the reference on every placement.
    for name in names {
        assert_eq!(proxy.shard_of(name), reference.shard_of(name), "{name}");
    }
}

#[test]
fn connect_rejects_duplicate_databases_across_upstreams() {
    let addrs = spawn_upstreams(2, 1, 8);
    // Install the same database name directly on both upstreams,
    // bypassing any router — the "resharding gone wrong" state.
    for addr in &addrs {
        let up = ocqa_engine::Upstream::new(addr.clone());
        let resp = up
            .exchange(r#"{"op":"create_db","name":"kv","facts":"R(1,1).","constraints":""}"#)
            .unwrap();
        assert!(resp.contains("\"ok\":true"), "{resp}");
    }
    let Err(err) = RouteProxy::connect(addrs) else {
        panic!("duplicate name must refuse to serve");
    };
    let msg = err.to_string();
    assert!(msg.contains("\"kv\"") && msg.contains("rebalance"), "{msg}");
}

#[test]
fn connect_fails_fast_on_unreachable_upstream() {
    let mut addrs = spawn_upstreams(1, 1, 8);
    // A second upstream that is not listening.
    let dead = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    addrs.push(dead.local_addr().unwrap().to_string());
    drop(dead);
    let Err(err) = RouteProxy::connect(addrs) else {
        panic!("dead upstream must fail connect");
    };
    assert!(
        matches!(err, ocqa_engine::EngineError::Unavailable(_)),
        "{err:?}"
    );
}

#[test]
fn proxy_survives_upstream_connection_churn() {
    // An upstream that drops every connection after a single request:
    // every exchange after the first exercises reconnect-on-broken-pipe.
    let engine = Engine::new(EngineConfig {
        workers: 1,
        cache_capacity: 8,
        ..EngineConfig::default()
    });
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(stream) = conn else { return };
            let engine = engine.clone();
            std::thread::spawn(move || {
                use std::io::{BufRead, BufReader, Write};
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut line = String::new();
                if reader.read_line(&mut line).unwrap_or(0) > 0 {
                    let mut stream = stream;
                    let _ = writeln!(stream, "{}", engine.handle_line(line.trim_end()));
                }
                // Connection dropped after one request.
            });
        }
    });
    let proxy = RouteProxy::connect(vec![addr]).expect("connect");
    let resp = proxy.handle_line(
        r#"{"op":"create_db","name":"kv","facts":"R(1,10). R(1,20).","constraints":"R(x,y), R(x,z) -> y = z."}"#,
    );
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let first = proxy.handle_line(
        r#"{"op":"answer","db":"kv","query":"(x) <- exists y: R(x,y)","eps":0.1,"delta":0.1,"seed":7}"#,
    );
    assert!(first.contains("\"answers\":"), "{first}");
    // Same request again: the upstream's cache serves it, through yet
    // another reconnect, with the cached flag the only difference.
    let second = proxy.handle_line(
        r#"{"op":"answer","db":"kv","query":"(x) <- exists y: R(x,y)","eps":0.1,"delta":0.1,"seed":7}"#,
    );
    assert!(second.contains("\"cached\":true"), "{second}");
    assert!(proxy.upstream(0).reconnects() >= 1, "churn not exercised");
    assert!(proxy.upstream(0).healthy());
}
