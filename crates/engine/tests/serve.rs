//! End-to-end tests of the serving engine over real TCP connections.

use ocqa_engine::{serve_listener, Engine, EngineConfig, EngineRequest, EngineResponse, QueryRef};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

/// Starts an engine + TCP server on an ephemeral port.
fn spawn_server(workers: usize) -> (Arc<Engine>, std::net::SocketAddr) {
    let engine = Engine::new(EngineConfig {
        workers,
        cache_capacity: 256,
        ..EngineConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    let server_engine = engine.clone();
    std::thread::spawn(move || {
        let _ = serve_listener(server_engine, listener);
    });
    (engine, addr)
}

/// One protocol exchange on an open connection.
fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &str) -> String {
    writeln!(stream, "{req}").unwrap();
    stream.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    line
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

const CREATE: &str = r#"{"op":"create_db","name":"kv","facts":"R(1,10). R(1,20). R(2,30). R(2,40). R(3,50).","constraints":"R(x,y), R(x,z) -> y = z."}"#;
const ANSWER: &str =
    r#"{"op":"answer","db":"kv","query":"(x) <- exists y: R(x,y)","eps":0.1,"delta":0.1,"seed":7}"#;

#[test]
fn four_concurrent_sessions_share_one_catalog() {
    let (_engine, addr) = spawn_server(4);
    {
        let (mut s, mut r) = connect(addr);
        let resp = roundtrip(&mut s, &mut r, CREATE);
        assert!(resp.contains("\"ok\":true"), "{resp}");
    }

    // Four clients answer the same query against the shared catalog,
    // simultaneously; every one must see the full, identical result.
    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let (mut s, mut r) = connect(addr);
                roundtrip(&mut s, &mut r, ANSWER)
            })
        })
        .collect();
    let responses: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for resp in &responses {
        assert!(resp.contains("\"ok\":true"), "{resp}");
        assert!(resp.contains("\"walks\":150"), "{resp}");
        // Key 3 is conflict-free: survives every repair with p = 1.
        assert!(resp.contains("\"tuple\":[3]"), "{resp}");
    }
    // All four sampled the same (db, query, generator, ε/δ, seed) —
    // whether or not they raced past the cache, the answers must agree.
    let strip = |s: &str| {
        // The cache counters and cached flag legitimately differ.
        let v = ocqa_engine::json::parse(s.trim()).unwrap();
        v.get("answers").unwrap().to_string()
    };
    let first = strip(&responses[0]);
    for resp in &responses[1..] {
        assert_eq!(strip(resp), first, "divergent answers across sessions");
    }
}

#[test]
fn cache_hits_are_observable_and_updates_invalidate() {
    let (_engine, addr) = spawn_server(2);
    let (mut s, mut r) = connect(addr);
    assert!(roundtrip(&mut s, &mut r, CREATE).contains("\"ok\":true"));

    let cold = roundtrip(&mut s, &mut r, ANSWER);
    assert!(cold.contains("\"cached\":false"), "{cold}");
    assert!(cold.contains("\"db_version\":1"), "{cold}");

    // Same request from a *different* session: served from the cache.
    let (mut s2, mut r2) = connect(addr);
    let warm = roundtrip(&mut s2, &mut r2, ANSWER);
    assert!(warm.contains("\"cached\":true"), "{warm}");
    assert!(warm.contains("\"cache_hits\":1"), "{warm}");

    // Insert bumps the version and invalidates: a recompute follows.
    let upd = roundtrip(
        &mut s,
        &mut r,
        r#"{"op":"insert","db":"kv","facts":"R(4,60)."}"#,
    );
    assert!(upd.contains("\"version\":2"), "{upd}");
    let after = roundtrip(&mut s, &mut r, ANSWER);
    assert!(after.contains("\"cached\":false"), "{after}");
    assert!(after.contains("\"db_version\":2"), "{after}");
    assert!(after.contains("\"tuple\":[4]"), "new fact visible: {after}");

    // Delete likewise.
    let upd = roundtrip(
        &mut s,
        &mut r,
        r#"{"op":"delete","db":"kv","facts":"R(4,60)."}"#,
    );
    assert!(upd.contains("\"version\":3"), "{upd}");
    let after = roundtrip(&mut s, &mut r, ANSWER);
    assert!(after.contains("\"db_version\":3"), "{after}");
    assert!(!after.contains("\"tuple\":[4]"), "stale fact gone: {after}");
}

#[test]
fn fixed_seed_answers_identical_across_pool_sizes() {
    let mut outputs = Vec::new();
    for workers in [1, 2, 8] {
        let engine = Engine::new(EngineConfig {
            workers,
            cache_capacity: 16,
            ..EngineConfig::default()
        });
        let resp = engine.handle(EngineRequest::CreateDb {
            name: "kv".into(),
            facts: "R(1,10). R(1,20). R(2,30). R(2,40).".into(),
            constraints: "R(x,y), R(x,z) -> y = z.".into(),
        });
        assert!(matches!(resp, EngineResponse::Created(_)));
        let EngineResponse::Answer(a) = engine.handle(EngineRequest::Answer {
            db: "kv".into(),
            query: QueryRef::Text("(y) <- exists x: R(x,y)".into()),
            generator: "uniform".into(),
            eps: 0.05,
            delta: 0.05,
            seed: 123,
            plan: None,
        }) else {
            panic!("expected answer");
        };
        outputs.push(
            a.answers
                .iter()
                .map(|row| (row.tuple.clone(), row.p))
                .collect::<Vec<_>>(),
        );
    }
    assert_eq!(outputs[0], outputs[1], "1 vs 2 workers");
    assert_eq!(outputs[0], outputs[2], "1 vs 8 workers");
}

#[test]
fn answers_report_their_plan_over_the_wire() {
    let (_engine, addr) = spawn_server(2);
    let (mut s, mut r) = connect(addr);

    // Key-only database: served by the key-repair fast path.
    assert!(roundtrip(&mut s, &mut r, CREATE).contains("\"ok\":true"));
    let resp = roundtrip(&mut s, &mut r, ANSWER);
    assert!(resp.contains("\"plan\":\"key-repair\""), "{resp}");
    assert!(resp.contains("\"p_cond\":"), "{resp}");

    // Multi-component denial database: localized sampling.
    let create_dc = r#"{"op":"create_db","name":"net","facts":"Pref(a,b). Pref(b,a). Pref(c,d). Pref(d,c).","constraints":"Pref(x,y), Pref(y,x) -> false."}"#;
    assert!(roundtrip(&mut s, &mut r, create_dc).contains("\"ok\":true"));
    let resp = roundtrip(
        &mut s,
        &mut r,
        r#"{"op":"answer","db":"net","query":"(x) <- exists y: Pref(x,y)","seed":7}"#,
    );
    assert!(resp.contains("\"plan\":\"localized\""), "{resp}");

    // A non-component-local generator on the same database falls back.
    let resp = roundtrip(
        &mut s,
        &mut r,
        r#"{"op":"answer","db":"net","query":"(x) <- exists y: Pref(x,y)","generator":"preference","seed":7}"#,
    );
    assert!(resp.contains("\"plan\":\"monolithic\""), "{resp}");

    // Explicit overrides work over the wire, unsound ones error.
    let resp = roundtrip(
        &mut s,
        &mut r,
        r#"{"op":"answer","db":"kv","query":"(x) <- exists y: R(x,y)","plan":"monolithic","seed":7}"#,
    );
    assert!(resp.contains("\"plan\":\"monolithic\""), "{resp}");
    // An unsound override is a structured rejection naming the plan and
    // the feasibility gate that refused it — never a silent fallback to
    // a different plan.
    let resp = roundtrip(
        &mut s,
        &mut r,
        r#"{"op":"answer","db":"net","query":"(x) <- exists y: Pref(x,y)","plan":"key-repair","seed":7}"#,
    );
    assert!(resp.contains("\"ok\":false"), "{resp}");
    assert!(resp.contains("\"plan\":\"key-repair\""), "{resp}");
    assert!(resp.contains("\"gate\":\"key-cover\""), "{resp}");
    assert!(resp.contains("\"error\":\"bad request"), "{resp}");
    // Same database, localized override under a non-component-local
    // generator: a different gate.
    let resp = roundtrip(
        &mut s,
        &mut r,
        r#"{"op":"answer","db":"net","query":"(x) <- exists y: Pref(x,y)","generator":"preference","plan":"localized","seed":7}"#,
    );
    assert!(resp.contains("\"ok\":false"), "{resp}");
    assert!(resp.contains("\"gate\":\"component-local\""), "{resp}");

    // `list` exposes each database's structural classification.
    let resp = roundtrip(&mut s, &mut r, r#"{"op":"list"}"#);
    assert!(resp.contains("\"plan\":\"key-repair\""), "{resp}");
    assert!(resp.contains("\"plan\":\"localized\""), "{resp}");
}

#[test]
fn sharded_server_reports_shards_over_the_wire() {
    // A 4-shard engine behind one TCP front door: routed responses carry
    // the serving shard, list entries carry each database's shard, and
    // stats fan out across every shard exactly once.
    let engine = Engine::new(EngineConfig {
        workers: 4,
        cache_capacity: 64,
        shards: 4,
        ..EngineConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    let server_engine = engine.clone();
    std::thread::spawn(move || {
        let _ = serve_listener(server_engine, listener);
    });
    let (mut s, mut r) = connect(addr);

    let names = ["orders", "users", "events", "billing", "audit"];
    for name in names {
        let create = format!(
            r#"{{"op":"create_db","name":"{name}","facts":"R(1,10). R(1,20).","constraints":"R(x,y), R(x,z) -> y = z."}}"#
        );
        let resp = roundtrip(&mut s, &mut r, &create);
        assert!(resp.contains("\"ok\":true"), "{resp}");
        assert!(
            resp.contains("\"shard\":"),
            "create must report its shard: {resp}"
        );
        // The reported shard matches the front door's routing.
        let shard = engine.shard_of(name) as u64;
        assert!(
            resp.contains(&format!("\"shard\":{shard}")),
            "{name} routed to {shard}: {resp}"
        );
    }
    // Answers carry the shard and the coalesced flag.
    let resp = roundtrip(
        &mut s,
        &mut r,
        r#"{"op":"answer","db":"orders","query":"(x) <- exists y: R(x,y)","seed":7}"#,
    );
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("\"coalesced\":false"), "{resp}");
    let shard = engine.shard_of("orders") as u64;
    assert!(resp.contains(&format!("\"shard\":{shard}")), "{resp}");

    // Every list entry names its shard; the merged list is complete.
    let resp = roundtrip(&mut s, &mut r, r#"{"op":"list"}"#);
    for name in names {
        assert!(resp.contains(&format!("\"name\":\"{name}\"")), "{resp}");
    }
    assert_eq!(
        resp.matches("\"shard\":").count(),
        names.len(),
        "one shard tag per database: {resp}"
    );

    // Stats report the shard count and sum per-shard counters once.
    let resp = roundtrip(&mut s, &mut r, r#"{"op":"stats"}"#);
    assert!(resp.contains("\"shards\":4"), "{resp}");
    assert!(resp.contains("\"databases\":5"), "{resp}");
    assert!(resp.contains("\"answers\":1"), "{resp}");
    assert!(resp.contains("\"walks\":150"), "{resp}");
    assert!(resp.contains("\"coalesced\":0"), "{resp}");
    assert!(resp.contains("\"cache_expired\":0"), "{resp}");
}

#[test]
fn sessions_see_errors_inline_and_keep_going() {
    let (_engine, addr) = spawn_server(1);
    let (mut s, mut r) = connect(addr);
    let resp = roundtrip(
        &mut s,
        &mut r,
        r#"{"op":"answer","db":"ghost","query":"(x) <- R(x)"}"#,
    );
    assert!(resp.contains("\"ok\":false") && resp.contains("unknown database"));
    let resp = roundtrip(&mut s, &mut r, "}{");
    assert!(resp.contains("\"ok\":false"));
    // The session survives bad requests.
    let resp = roundtrip(&mut s, &mut r, r#"{"op":"ping"}"#);
    assert!(resp.contains("\"pong\":true"));
}
