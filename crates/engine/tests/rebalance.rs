//! End-to-end tests of the elastic cluster: live rebalancing (growing
//! the upstream set by snapshot-shipping reassigned databases) and
//! WAL-replicated standby failover.
//!
//! The acceptance bar is the same byte identity the static router is
//! held to, extended across membership changes: answers after a 2→3
//! grow must equal a fresh 3-shard deployment's byte-for-byte, no acked
//! write may be lost while databases move, and a primary killed
//! mid-flight must fail over to a standby that answers bit-identically.

use ocqa_engine::{serve_listener, Engine, EngineConfig, RouteConfig, RouteProxy, Router};
use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const WORKERS: usize = 2;
const CACHE: usize = 64;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::AtomicU64;
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ocqa-rebalance-{}-{}-{tag}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Starts `n` single-shard engines behind TCP listeners (what
/// `ocqa serve --shards 1 --listen …` runs) and returns their addresses.
fn spawn_upstreams(n: usize) -> Vec<String> {
    (0..n).map(|_| spawn_upstream().1).collect()
}

fn spawn_upstream() -> (Arc<Engine>, String) {
    let engine = Engine::new(EngineConfig {
        workers: WORKERS,
        cache_capacity: CACHE,
        ..EngineConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap().to_string();
    let served = engine.clone();
    std::thread::spawn(move || {
        let _ = serve_listener(served, listener);
    });
    (engine, addr)
}

/// The reference a grown cluster is compared against: a fresh in-process
/// engine already partitioned over the final shard count, same per-shard
/// worker and cache budget.
fn reference_engine(shards: usize) -> Arc<Engine> {
    Engine::new(EngineConfig {
        workers: WORKERS * shards,
        cache_capacity: CACHE * shards,
        shards,
        ..EngineConfig::default()
    })
}

fn create_line(name: &str) -> String {
    format!(
        r#"{{"op":"create_db","name":"{name}","facts":"R(1,10). R(1,20). R(2,30). R(2,40). R(3,50).","constraints":"R(x,y), R(x,z) -> y = z."}}"#
    )
}

fn answer_line(name: &str, seed: u64) -> String {
    format!(
        r#"{{"op":"answer","db":"{name}","query":"(y) <- exists x: R(x,y)","eps":0.1,"delta":0.1,"seed":{seed}}}"#
    )
}

#[test]
fn rebalance_grows_cluster_live_under_traffic_with_byte_identical_answers() {
    let addrs = spawn_upstreams(2);
    let proxy = RouteProxy::connect(addrs).expect("connect router");
    assert_eq!(proxy.epoch(), 1, "fresh cluster starts at epoch 1");

    // Enough names that the HRW grow 2→3 reassigns some and keeps some.
    let names = [
        "orders", "users", "events", "billing", "audit", "sessions", "carts", "ledger",
    ];
    for name in names {
        let resp = proxy.handle_line(&create_line(name));
        assert!(resp.contains("\"ok\":true"), "{resp}");
    }
    let expected_moved: HashSet<String> = {
        let grown = Router::new(3);
        names
            .iter()
            .filter(|n| grown.shard_for(n) == 2)
            .map(|n| n.to_string())
            .collect()
    };
    assert!(
        !expected_moved.is_empty() && expected_moved.len() < names.len(),
        "workload must both move and keep databases: {expected_moved:?}"
    );

    // Traffic while the grow runs: inserts of distinct facts (retried on
    // the structured mid-move/stale-epoch rejection until acked) and
    // interleaved answers. Every ack is recorded so the reference can
    // replay exactly the writes the cluster acknowledged.
    let stop = Arc::new(AtomicBool::new(false));
    let acked: Arc<Mutex<Vec<(String, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let traffic = {
        let proxy = proxy.clone();
        let stop = stop.clone();
        let acked = acked.clone();
        std::thread::spawn(move || {
            let mut k = 0u64;
            while !stop.load(Ordering::SeqCst) {
                let name = names[(k as usize) % names.len()];
                let fact = format!("R({}, {})", 1000 + k, 1000 + k);
                let line = format!(r#"{{"op":"insert","db":"{name}","facts":"{fact}."}}"#);
                loop {
                    let resp = proxy.handle_line(&line);
                    if resp.contains("\"ok\":true") {
                        acked.lock().unwrap().push((name.to_string(), fact.clone()));
                        break;
                    }
                    // The only legal refusal mid-grow is the structured
                    // retry (mid-move database or stale pinned epoch).
                    assert!(
                        resp.contains("\"retry\":true"),
                        "insert hard-failed: {resp}"
                    );
                }
                let read = proxy.handle_line(&answer_line(name, k % 5));
                assert!(read.contains("\"answers\":"), "{read}");
                k += 1;
            }
        })
    };

    // Grow 2→3 through the admin op, live.
    let (_new_engine, new_addr) = spawn_upstream();
    let resp = proxy.handle_line(&format!(r#"{{"op":"rebalance","add":"{new_addr}"}}"#));
    assert!(resp.contains("\"ok\":true"), "{resp}");
    stop.store(true, Ordering::SeqCst);
    traffic.join().expect("traffic thread");

    let grown = ocqa_engine::json::parse(&resp).unwrap();
    assert_eq!(
        grown
            .get("shards")
            .and_then(ocqa_engine::json::Json::as_u64),
        Some(3)
    );
    let moved: HashSet<String> = match grown.get("moved") {
        Some(ocqa_engine::json::Json::Arr(names)) => names
            .iter()
            .filter_map(|n| n.as_str().map(str::to_string))
            .collect(),
        other => panic!("no moved list in {other:?}"),
    };
    assert_eq!(
        moved, expected_moved,
        "grow must reassign exactly the HRW losers"
    );
    // Epoch: one bump per committed move plus the final shard-count bump.
    assert_eq!(proxy.epoch(), 1 + moved.len() as u64 + 1);
    assert_eq!(proxy.shards(), 3);

    // A client still pinning the pre-grow epoch gets a structured retry
    // carrying the current one.
    let stale = proxy.handle_line(
        r#"{"op":"answer","db":"orders","query":"(y) <- exists x: R(x,y)","eps":0.1,"delta":0.1,"seed":0,"epoch":1}"#,
    );
    assert!(stale.contains("\"retry\":true"), "{stale}");
    assert!(
        stale.contains(&format!("\"epoch\":{}", proxy.epoch())),
        "{stale}"
    );

    // Zero lost acked writes and byte-identical answers: a fresh
    // 3-shard deployment given the same creates plus exactly the acked
    // inserts must answer every database identically (fresh seeds, so
    // both sides compute cold).
    let reference = reference_engine(3);
    for name in names {
        let resp = reference.handle_line(&create_line(name)).to_string();
        assert!(resp.contains("\"ok\":true"), "{resp}");
    }
    for (name, fact) in acked.lock().unwrap().iter() {
        let line = format!(r#"{{"op":"insert","db":"{name}","facts":"{fact}."}}"#);
        let resp = reference.handle_line(&line).to_string();
        assert!(resp.contains("\"ok\":true"), "{resp}");
    }
    // `db_version`, `cache_hits` and `cache_misses` are shard-local
    // bookkeeping: they count a shard's own create/mutate/lookup
    // interleaving, which legitimately differs between a cluster that
    // *grew into* this placement under traffic and one deployed there
    // fresh. Everything that touches the estimate — the answers, walk
    // counts, plan, serving shard — must match byte-for-byte.
    let normalize = |line: &str| {
        let mut v = ocqa_engine::json::parse(line).expect("answer parses");
        v.remove("cache_hits");
        v.remove("cache_misses");
        v.remove("db_version");
        v.to_string()
    };
    for (i, name) in names.iter().enumerate() {
        let line = answer_line(name, 1000 + i as u64);
        let routed = proxy.handle_line(&line);
        let direct = reference.handle_line(&line).to_string();
        assert_eq!(
            normalize(&routed),
            normalize(&direct),
            "post-grow answer diverged for {name}\n  routed: {routed}\n  direct: {direct}"
        );
        // Placement converged on the pure 3-shard HRW assignment.
        assert_eq!(proxy.shard_of(name), reference.shard_of(name), "{name}");
    }

    // The observability surface reflects the grow: the routed stats
    // carry the topology block, the metrics op the epoch and move count.
    let stats = proxy.handle_line(r#"{"op":"stats"}"#);
    assert!(
        stats.contains(&format!("\"epoch\":{}", proxy.epoch())),
        "{stats}"
    );
    let metrics = proxy.handle_line(r#"{"op":"metrics"}"#);
    assert!(
        metrics.contains(&format!("\"topology_epoch\":{}", proxy.epoch())),
        "{metrics}"
    );
    assert!(
        metrics.contains(&format!("\"rebalance_moves\":{}", moved.len())),
        "{metrics}"
    );
}

#[test]
fn rebalance_refuses_a_non_empty_upstream() {
    let addrs = spawn_upstreams(2);
    let proxy = RouteProxy::connect(addrs).expect("connect router");
    // A prospective member that already serves a database is not a
    // fresh shard — admitting it would shadow existing placements.
    let (_engine, tainted) = spawn_upstream();
    let up = ocqa_engine::Upstream::new(tainted.clone());
    let resp = up.exchange(&create_line("kv")).unwrap();
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let resp = proxy.handle_line(&format!(r#"{{"op":"rebalance","add":"{tainted}"}}"#));
    assert!(resp.contains("\"ok\":false"), "{resp}");
    assert_eq!(proxy.shards(), 2, "failed grow must not change membership");
    assert_eq!(proxy.epoch(), 1);
}

#[test]
fn rebalance_resumes_after_router_restart_without_duplicating_members() {
    // Simulate a grow that crashed after persisting the grown
    // membership but before shipping every database: install databases
    // under a 2-shard layout, then "restart" the router over all three
    // upstreams (the state a crashed router recovers into — persisted
    // topology lists the new member, catalogs still hold the pre-grow
    // placement).
    let two = spawn_upstreams(2);
    let (_new_engine, new_addr) = spawn_upstream();
    let names = [
        "orders", "users", "events", "billing", "audit", "sessions", "carts", "ledger",
    ];
    {
        let staging = RouteProxy::connect(two.clone()).expect("connect 2-shard router");
        for name in names {
            let resp = staging.handle_line(&create_line(name));
            assert!(resp.contains("\"ok\":true"), "{resp}");
        }
    }
    let mut addrs = two;
    addrs.push(new_addr.clone());
    let proxy = RouteProxy::connect(addrs).expect("restart router over grown membership");
    assert_eq!(proxy.shards(), 3);

    let stranded: HashSet<String> = {
        let grown = Router::new(3);
        names
            .iter()
            .filter(|n| grown.shard_for(n) == 2)
            .map(|n| n.to_string())
            .collect()
    };
    assert!(!stranded.is_empty(), "workload must leave stranded names");

    // Re-issuing the grow with the member's address resumes: the
    // stranded tail ships, and no duplicate slot is registered.
    let standby_for_new = "127.0.0.1:1"; // recorded only, never dialed
    let resp = proxy.handle_line(&format!(
        r#"{{"op":"rebalance","add":"{new_addr}","standby":"{standby_for_new}"}}"#
    ));
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let resumed = ocqa_engine::json::parse(&resp).unwrap();
    assert_eq!(
        resumed
            .get("shards")
            .and_then(ocqa_engine::json::Json::as_u64),
        Some(3),
        "resume must not add a fourth member: {resp}"
    );
    let moved: HashSet<String> = match resumed.get("moved") {
        Some(ocqa_engine::json::Json::Arr(names)) => names
            .iter()
            .filter_map(|n| n.as_str().map(str::to_string))
            .collect(),
        other => panic!("no moved list in {other:?}"),
    };
    assert_eq!(
        moved, stranded,
        "resume must ship exactly the stranded tail"
    );
    assert_eq!(proxy.shards(), 3);
    assert_eq!(proxy.upstream_addrs().len(), 3, "no duplicate slot");
    // The resumed member adopted the provided standby (it was None).
    let stats = proxy.handle_line(r#"{"op":"stats"}"#);
    assert!(
        stats.contains(&format!("\"standby\":\"{standby_for_new}\"")),
        "{stats}"
    );
    // A conflicting standby on a later re-issue is refused, not
    // silently ignored.
    let resp = proxy.handle_line(&format!(
        r#"{{"op":"rebalance","add":"{new_addr}","standby":"127.0.0.1:2"}}"#
    ));
    assert!(resp.contains("\"ok\":false"), "{resp}");
    assert!(resp.contains("standby"), "{resp}");

    // Re-issuing with a fully settled member is a no-op — same epoch,
    // nothing moved, membership unchanged.
    let epoch = proxy.epoch();
    let resp = proxy.handle_line(&format!(r#"{{"op":"rebalance","add":"{new_addr}"}}"#));
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("\"moved\":[]"), "{resp}");
    assert_eq!(
        proxy.epoch(),
        epoch,
        "a no-op resume must not bump the epoch"
    );
    assert_eq!(proxy.shards(), 3);

    // The finished placement answers byte-identically to a fresh
    // 3-shard deployment given the same creates.
    let reference = reference_engine(3);
    for name in names {
        let resp = reference.handle_line(&create_line(name)).to_string();
        assert!(resp.contains("\"ok\":true"), "{resp}");
    }
    // `db_version` is a shard-local allocation counter: it reflects the
    // order a shard first saw each database, which differs between a
    // cluster that grew into this placement and one deployed fresh —
    // the snapshot preserves the *source* shard's numbering. Everything
    // touching the estimate must match byte-for-byte.
    let normalize = |line: &str| {
        let mut v = ocqa_engine::json::parse(line).expect("answer parses");
        v.remove("db_version");
        v.to_string()
    };
    for (i, name) in names.iter().enumerate() {
        let line = answer_line(name, 2000 + i as u64);
        let routed = proxy.handle_line(&line);
        let direct = reference.handle_line(&line).to_string();
        assert_eq!(
            normalize(&routed),
            normalize(&direct),
            "post-resume answer diverged for {name}\n  routed: {routed}\n  direct: {direct}"
        );
        assert_eq!(proxy.shard_of(name), reference.shard_of(name), "{name}");
    }
}

#[test]
fn in_process_engine_refuses_the_rebalance_op() {
    let engine = Engine::new(EngineConfig::default());
    let resp = engine
        .handle_line(r#"{"op":"rebalance","add":"127.0.0.1:9"}"#)
        .to_string();
    assert!(resp.contains("\"ok\":false"), "{resp}");
    assert!(resp.contains("router op"), "{resp}");
}

/// A single-shard upstream server that can be killed abruptly:
/// `kill()` severs every established connection and stops the listener,
/// exactly what a `kill -9`'d `ocqa serve` looks like from the router.
struct KillableUpstream {
    addr: String,
    kill: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl KillableUpstream {
    fn spawn(engine: Arc<Engine>) -> KillableUpstream {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap().to_string();
        let kill = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let kill = kill.clone();
            let conns = conns.clone();
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if kill.load(Ordering::SeqCst) {
                        return; // drops the listener: no new dials succeed
                    }
                    let Ok(stream) = conn else { return };
                    conns.lock().unwrap().push(stream.try_clone().unwrap());
                    let engine = engine.clone();
                    std::thread::spawn(move || {
                        let mut reader = BufReader::new(stream.try_clone().unwrap());
                        let mut stream = stream;
                        let mut line = String::new();
                        loop {
                            line.clear();
                            match reader.read_line(&mut line) {
                                Ok(0) | Err(_) => return,
                                Ok(_) => {}
                            }
                            if writeln!(stream, "{}", engine.handle_line(line.trim_end())).is_err()
                            {
                                return;
                            }
                        }
                    });
                }
            });
        }
        KillableUpstream { addr, kill, conns }
    }

    fn kill(&self) {
        self.kill.store(true, Ordering::SeqCst);
        for conn in self.conns.lock().unwrap().iter() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        // Unblock the accept loop so it observes the flag and drops the
        // listener, then give it a beat — afterwards every dial fails.
        let _ = TcpStream::connect(&self.addr);
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
}

#[test]
fn killed_primary_fails_over_to_wal_replicated_standby_bit_identically() {
    let dir = temp_dir("failover");
    let topology_path = dir.join("topology.json");

    // The standby: an ordinary serve process. The primary replicates
    // every acked mutation to it synchronously before responding.
    let (_standby_engine, standby_addr) = spawn_upstream();
    let primary_engine = Engine::new(EngineConfig {
        workers: WORKERS,
        cache_capacity: CACHE,
        ..EngineConfig::default()
    });
    primary_engine.attach_replica(&standby_addr);
    let primary = KillableUpstream::spawn(primary_engine);

    let proxy = RouteProxy::connect_cfg(RouteConfig {
        upstreams: vec![primary.addr.clone()],
        standbys: vec![Some(standby_addr.clone())],
        slow_ms: 0,
        max_subs: 64,
        probe_ms: 0, // probing is driven by hand below, deterministically
        topology_path: Some(topology_path.clone()),
    })
    .expect("connect router");

    // Acked writes through the primary: a create and an insert, both
    // replicated before their acks. Then a cold answer — the bytes the
    // standby must reproduce.
    let resp = proxy.handle_line(&create_line("kv"));
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let resp = proxy.handle_line(r#"{"op":"insert","db":"kv","facts":"R(7, 70)."}"#);
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let first = proxy.handle_line(&answer_line("kv", 7));
    assert!(first.contains("\"answers\":"), "{first}");
    let metrics = proxy.handle_line(r#"{"op":"metrics"}"#);
    assert!(metrics.contains("\"replication_lag\":0"), "{metrics}");

    primary.kill();

    // Drive the probe sweep: FAILOVER_AFTER consecutive failures, then
    // the standby takes the slot at a new epoch.
    let mut fails = Vec::new();
    for sweep in 1..=ocqa_engine::FAILOVER_AFTER {
        proxy.probe_once(&mut fails);
        if sweep < ocqa_engine::FAILOVER_AFTER {
            assert_eq!(proxy.epoch(), 1, "failed over after only {sweep} probes");
        }
    }
    assert_eq!(proxy.epoch(), 2, "failover must bump the epoch");
    assert_eq!(proxy.upstream_addrs(), vec![standby_addr.clone()]);

    // The promoted standby answers byte-identically: same facts (no
    // acked write lost), same seed, cold on both sides.
    let failed_over = proxy.handle_line(&answer_line("kv", 7));
    assert_eq!(first, failed_over, "standby diverged from the dead primary");
    // And both match a fresh in-process engine given the same history —
    // replication preserved determinism, not just availability.
    let reference = reference_engine(1);
    let resp = reference.handle_line(&create_line("kv")).to_string();
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let resp = reference
        .handle_line(r#"{"op":"insert","db":"kv","facts":"R(7, 70)."}"#)
        .to_string();
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert_eq!(
        first,
        reference.handle_line(&answer_line("kv", 7)).to_string()
    );

    // Clients pinning the pre-failover epoch get the structured retry.
    let stale = proxy.handle_line(
        r#"{"op":"answer","db":"kv","query":"(y) <- exists x: R(x,y)","eps":0.1,"delta":0.1,"seed":7,"epoch":1}"#,
    );
    assert!(stale.contains("\"retry\":true"), "{stale}");
    assert!(stale.contains("\"epoch\":2"), "{stale}");

    // The failover persisted: a router restarted with the *stale* CLI
    // flags resumes from the topology file, pointing at the standby.
    let raw = std::fs::read_to_string(&topology_path).expect("topology file");
    assert!(raw.contains(&standby_addr), "{raw}");
    assert!(raw.contains("\"epoch\":2"), "{raw}");
    let resumed = RouteProxy::connect_cfg(RouteConfig {
        upstreams: vec![primary.addr.clone()], // dead — the file wins
        standbys: vec![None],
        slow_ms: 0,
        max_subs: 64,
        probe_ms: 0,
        topology_path: Some(topology_path),
    })
    .expect("resume from topology file");
    assert_eq!(resumed.epoch(), 2);
    assert_eq!(resumed.upstream_addrs(), vec![standby_addr]);
    // Same standby engine serving: this re-ask hits its cache.
    let resumed_answer = resumed.handle_line(&answer_line("kv", 7));
    assert!(
        resumed_answer.contains("\"cached\":true"),
        "{resumed_answer}"
    );
}

#[test]
fn failover_is_refused_for_a_standby_that_detached_mid_stream() {
    // The standby dies mid-stream: the primary detaches it, keeps
    // acking, and accrues replication_lag. When the primary later dies
    // too, the router must NOT promote the stale standby — it missed
    // acked writes.
    let standby_engine = Engine::new(EngineConfig {
        workers: WORKERS,
        cache_capacity: CACHE,
        ..EngineConfig::default()
    });
    let standby = KillableUpstream::spawn(standby_engine);
    let primary_engine = Engine::new(EngineConfig {
        workers: WORKERS,
        cache_capacity: CACHE,
        ..EngineConfig::default()
    });
    primary_engine.attach_replica(&standby.addr);
    let primary = KillableUpstream::spawn(primary_engine);

    let proxy = RouteProxy::connect_cfg(RouteConfig {
        upstreams: vec![primary.addr.clone()],
        standbys: vec![Some(standby.addr.clone())],
        slow_ms: 0,
        max_subs: 64,
        probe_ms: 0, // probing driven by hand, deterministically
        topology_path: None,
    })
    .expect("connect router");

    // Replicated while the standby lives…
    let resp = proxy.handle_line(&create_line("kv"));
    assert!(resp.contains("\"ok\":true"), "{resp}");
    // …then the standby dies and an acked insert goes unreplicated:
    // the primary detaches the standby and counts the lag.
    standby.kill();
    let resp = proxy.handle_line(r#"{"op":"insert","db":"kv","facts":"R(7, 70)."}"#);
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let stats = proxy.handle_line(r#"{"op":"stats"}"#);
    assert!(stats.contains("\"replication_lag\":1"), "{stats}");

    // A probe sweep while the primary still lives records its reported
    // lag on the router side.
    let mut fails = Vec::new();
    proxy.probe_once(&mut fails);
    assert_eq!(proxy.epoch(), 1);

    // Now the primary dies too. Probe to the failover threshold: the
    // promotion must be refused — the last observed lag was non-zero.
    primary.kill();
    for _ in 0..ocqa_engine::FAILOVER_AFTER + 1 {
        proxy.probe_once(&mut fails);
    }
    assert_eq!(proxy.epoch(), 1, "a diverged standby must not be promoted");
    assert_eq!(proxy.upstream_addrs(), vec![primary.addr.clone()]);
    let err = proxy.fail_over(0).expect_err("promotion must be refused");
    let msg = err.to_string();
    assert!(msg.contains("replication_lag 1"), "{msg}");
    assert!(msg.contains("missed acked writes"), "{msg}");
}
