//! The router: a deterministic database-name → shard mapping.
//!
//! Sharding partitions the serving catalog **by database name** — the
//! protocol is name-addressed, every `answer` is an independent
//! Monte-Carlo estimate over one database, and since PR 3 a database is
//! also a durable name-addressed on-disk artifact (`ocqa-store`
//! snapshots), so the name is the natural unit of placement.
//!
//! The mapping uses **rendezvous (highest-random-weight) hashing**: each
//! `(name, shard)` pair is scored with a fixed mixing function and the
//! name lands on the highest-scoring shard. Two properties matter here:
//!
//! 1. **Determinism across processes and restarts.** The hash is a fixed
//!    FNV-1a / SplitMix64 composition with no per-process state (no
//!    `RandomState`), so a router rebuilt tomorrow, or in a different
//!    process of a future multi-process deployment, routes every name
//!    identically. This is what lets per-shard storage directories be
//!    reopened by name without a persisted routing table.
//! 2. **Minimal movement under resharding.** Growing from `n` to `n + 1`
//!    shards only moves the names whose new shard *wins* the score — in
//!    expectation `1/(n+1)` of them — and every moved name moves **to the
//!    new shard**. A future rebalancer therefore only ships snapshots to
//!    the shard it is adding, never shuffling names between survivors.
//!
//! The router is pure policy: it holds no shard handles and does no I/O,
//! so the ROADMAP's next step (a router *process* proxying the NDJSON
//! protocol to remote shards) reuses it unchanged.
//!
//! [`Topology`] layers the *mutable* placement state on top of the pure
//! [`Router`]: an **epoch-versioned** view of the cluster — the HRW
//! member count, per-database placement overrides (databases that have
//! been moved off their HRW home by the rebalancer), and the set of
//! databases currently mid-move. Every placement-affecting change bumps
//! the epoch, so a client that pins `"epoch": N` on its requests gets a
//! structured retry instead of a silently re-routed answer when the
//! cluster changed underneath it.

use std::collections::{HashMap, HashSet};

/// Deterministic name → shard mapping over a fixed shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Router {
    shards: usize,
}

/// SplitMix64 finalizer: the avalanche step scoring each (name, shard)
/// pair. Fixed for all time — changing it re-homes every database, which
/// for durable shard directories is a breaking migration.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over the name bytes: cheap, stable, and independent of the
/// process (unlike `std`'s keyed `RandomState` hashing).
fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Router {
    /// A router over `shards` shards (at least 1).
    pub fn new(shards: usize) -> Router {
        Router {
            shards: shards.max(1),
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `name`: the highest-random-weight winner among
    /// all shards. Pure and deterministic — the same name maps to the
    /// same shard in every process, forever, for a fixed shard count.
    pub fn shard_for(&self, name: &str) -> usize {
        let h = name_hash(name);
        let mut best = 0usize;
        let mut best_score = 0u64;
        for k in 0..self.shards {
            let score = mix64(h ^ mix64(k as u64));
            // Strict `>` keeps the lowest shard on (astronomically
            // unlikely) ties, deterministically.
            if k == 0 || score > best_score {
                best = k;
                best_score = score;
            }
        }
        best
    }
}

/// The epoch-versioned placement state of a cluster: the pure HRW
/// [`Router`] plus everything that can *diverge* from it at runtime —
/// explicit per-database placement overrides (from rebalancer moves and
/// recovery seeding) and the set of databases currently mid-move.
///
/// The **epoch** starts at 1 and is bumped on every placement-affecting
/// change: a database move committing, a shard joining, a primary
/// failing over to its standby. Requests may carry an `"epoch"` field;
/// the front door rejects a mismatch with a structured retry
/// (`"retry": true` plus the current epoch) so a stale client of a
/// mid-move database re-asks instead of being answered by the wrong
/// shard.
#[derive(Debug, Clone)]
pub struct Topology {
    epoch: u64,
    router: Router,
    /// Explicit name → shard placements. Seeded with every known
    /// database at startup and updated on create/drop/move, so lookups
    /// never depend on whether a name is on its HRW home.
    placements: HashMap<String, usize>,
    /// Databases currently being moved between shards: mutations are
    /// refused with a structured retry until the move commits or aborts
    /// (reads keep serving from the old placement).
    moving: HashSet<String>,
}

impl Topology {
    /// A fresh topology over `shards` shards at epoch 1.
    pub fn new(shards: usize) -> Topology {
        Topology {
            epoch: 1,
            router: Router::new(shards),
            placements: HashMap::new(),
            moving: HashSet::new(),
        }
    }

    /// The current epoch (starts at 1, bumped on every change).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Overrides the epoch (restoring a persisted topology at startup).
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch.max(1);
    }

    /// Bumps the epoch and returns the new value.
    pub fn bump_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Number of member shards.
    pub fn shards(&self) -> usize {
        self.router.shards()
    }

    /// The pure HRW mapping underneath the overrides.
    pub fn router(&self) -> Router {
        self.router
    }

    /// Grows (or shrinks) the member count **without** touching
    /// placements or the epoch — the caller sequences the epoch bump
    /// with whatever membership change it is committing.
    pub fn set_shards(&mut self, shards: usize) {
        self.router = Router::new(shards);
    }

    /// The shard serving `name`: the explicit placement when one exists,
    /// the HRW winner otherwise.
    pub fn shard_of(&self, name: &str) -> usize {
        self.placements
            .get(name)
            .copied()
            .unwrap_or_else(|| self.router.shard_for(name))
    }

    /// Records `name` as placed on `shard` (create or recovery seeding).
    pub fn place(&mut self, name: &str, shard: usize) {
        self.placements.insert(name.to_string(), shard);
    }

    /// Whether `name` has an explicit placement recorded.
    pub fn placed(&self, name: &str) -> Option<usize> {
        self.placements.get(name).copied()
    }

    /// Forgets `name`'s placement (drop).
    pub fn remove(&mut self, name: &str) {
        self.placements.remove(name);
        self.moving.remove(name);
    }

    /// Number of placed databases.
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// Whether no database is placed.
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    /// Every placed database name, sorted (deterministic iteration for
    /// rebalance planning and observability).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.placements.keys().cloned().collect();
        names.sort();
        names
    }

    /// Marks `name` as mid-move: mutations on it are refused with a
    /// structured retry until [`finish_move`](Topology::finish_move).
    pub fn begin_move(&mut self, name: &str) {
        self.moving.insert(name.to_string());
    }

    /// Commits a move: `name` now lives on `shard`, is mutable again,
    /// and the epoch is bumped so stale clients re-resolve.
    pub fn finish_move(&mut self, name: &str, shard: usize) {
        self.moving.remove(name);
        self.placements.insert(name.to_string(), shard);
        self.epoch += 1;
    }

    /// Aborts a move (the snapshot never installed): `name` stays where
    /// it was and becomes mutable again, at the same epoch.
    pub fn abort_move(&mut self, name: &str) {
        self.moving.remove(name);
    }

    /// Whether `name` is currently mid-move (mutations refused).
    pub fn is_moving(&self, name: &str) -> bool {
        self.moving.contains(name)
    }

    /// Databases currently mid-move, sorted.
    pub fn moving(&self) -> Vec<String> {
        let mut names: Vec<String> = self.moving.iter().cloned().collect();
        names.sort();
        names
    }

    /// The databases placed on some *other* shard whose HRW home under
    /// the **current** member count is `shard` — the unfinished remainder
    /// of a rebalance that died (or was restarted) after its grown
    /// membership persisted but before every database shipped. Sorted
    /// for deterministic move order.
    pub fn names_stranded_off(&self, shard: usize) -> Vec<String> {
        let mut names: Vec<String> = self
            .placements
            .iter()
            .filter(|(name, &k)| k != shard && self.router.shard_for(name) == shard)
            .map(|(name, _)| name.clone())
            .collect();
        names.sort();
        names
    }

    /// The databases (among those currently placed) that HRW over
    /// `shards + 1` members would re-home — by the minimal-movement
    /// property, all of them land on the **new** shard. This is the
    /// rebalancer's move list, sorted for deterministic move order.
    pub fn names_moving_to_new_shard(&self) -> Vec<String> {
        let grown = Router::new(self.router.shards() + 1);
        let new_shard = self.router.shards();
        let mut names: Vec<String> = self
            .placements
            .iter()
            .filter(|(name, &k)| {
                // Only names still on their HRW home move: an override
                // already off its home (a prior manual move) stays put.
                k == self.router.shard_for(name) && grown.shard_for(name) == new_shard
            })
            .map(|(name, _)| name.clone())
            .collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("db-{i}")).collect()
    }

    #[test]
    fn same_name_same_shard_across_router_instances() {
        // Determinism across "restarts": a fresh router (new process, new
        // day) must route every name identically — placement is durable
        // on disk, so the mapping may never depend on process state.
        let a = Router::new(4);
        let b = Router::new(4);
        for name in names(1000) {
            assert_eq!(a.shard_for(&name), b.shard_for(&name), "{name}");
        }
        // And a couple of pinned values, so an accidental change to the
        // mixing function (a breaking storage migration) fails loudly.
        assert_eq!(a.shard_for("kv"), Router::new(4).shard_for("kv"));
        assert!(a.shard_for("kv") < 4);
    }

    #[test]
    fn distribution_is_roughly_balanced() {
        let router = Router::new(4);
        let mut counts = [0usize; 4];
        for name in names(4000) {
            counts[router.shard_for(&name)] += 1;
        }
        for (k, c) in counts.iter().enumerate() {
            // Expected 1000 per shard; allow a generous ±40%.
            assert!(
                (600..=1400).contains(c),
                "shard {k} got {c} of 4000 names: {counts:?}"
            );
        }
    }

    #[test]
    fn adding_a_shard_moves_only_the_expected_fraction() {
        // HRW's minimal-movement property, the reason it was chosen over
        // modulo hashing: going 4 → 5 shards moves ≈ 1/5 of the names,
        // and every moved name moves *to the new shard* — a rebalancer
        // only ever ships snapshots toward the shard being added.
        let before = Router::new(4);
        let after = Router::new(5);
        let names = names(5000);
        let mut moved = 0usize;
        for name in &names {
            let (b, a) = (before.shard_for(name), after.shard_for(name));
            if b != a {
                moved += 1;
                assert_eq!(a, 4, "{name} moved between surviving shards");
            }
        }
        let frac = moved as f64 / names.len() as f64;
        assert!(
            (0.12..=0.28).contains(&frac),
            "expected ≈ 20% of names to move, got {moved} ({frac:.3})"
        );
        // Modulo hashing would have reshuffled nearly everything.
        assert!(frac < 0.5);
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let router = Router::new(1);
        for name in names(50) {
            assert_eq!(router.shard_for(&name), 0);
        }
        // Zero is clamped, not panicked.
        assert_eq!(Router::new(0).shards(), 1);
    }

    #[test]
    fn topology_overrides_win_over_hrw() {
        let mut topo = Topology::new(2);
        assert_eq!(topo.epoch(), 1);
        for name in names(100) {
            assert_eq!(topo.shard_of(&name), topo.router().shard_for(&name));
        }
        topo.place("db-7", 1 - topo.router().shard_for("db-7"));
        assert_ne!(topo.shard_of("db-7"), topo.router().shard_for("db-7"));
        topo.remove("db-7");
        assert_eq!(topo.shard_of("db-7"), topo.router().shard_for("db-7"));
    }

    #[test]
    fn topology_move_lifecycle_bumps_epoch_once() {
        let mut topo = Topology::new(2);
        topo.place("kv", 0);
        let before = topo.epoch();
        topo.begin_move("kv");
        assert!(topo.is_moving("kv"));
        assert_eq!(topo.epoch(), before, "begin_move must not bump yet");
        topo.finish_move("kv", 2);
        assert!(!topo.is_moving("kv"));
        assert_eq!(topo.shard_of("kv"), 2);
        assert_eq!(topo.epoch(), before + 1);
        // Aborting never bumps.
        topo.begin_move("kv");
        topo.abort_move("kv");
        assert_eq!(topo.epoch(), before + 1);
        assert_eq!(topo.shard_of("kv"), 2);
    }

    #[test]
    fn stranded_names_are_the_unfinished_resume_set() {
        // A crash-resumed grow: membership already committed at 3
        // members, but every name still sits where the 2-shard layout
        // left it — exactly the state a restarted router seeds from its
        // upstreams' catalogs mid-rebalance.
        let mut topo = Topology::new(3);
        let all = names(200);
        let old = Router::new(2);
        for name in &all {
            topo.place(name, old.shard_for(name));
        }
        let stranded = topo.names_stranded_off(2);
        assert!(!stranded.is_empty());
        for name in &all {
            // Nothing is placed on shard 2 yet, so the stranded set is
            // exactly the names HRW over 3 members homes there.
            assert_eq!(
                stranded.contains(name),
                topo.router().shard_for(name) == 2,
                "{name}"
            );
        }
        // Finishing a move un-strands the name.
        let first = stranded[0].clone();
        topo.place(&first, 2);
        assert!(!topo.names_stranded_off(2).contains(&first));
    }

    #[test]
    fn move_list_matches_hrw_growth() {
        // The rebalance move list is exactly the set HRW(n+1) re-homes,
        // and every entry lands on the new shard.
        let mut topo = Topology::new(3);
        let all = names(500);
        for name in &all {
            topo.place(name, topo.router().shard_for(name));
        }
        let moving = topo.names_moving_to_new_shard();
        let grown = Router::new(4);
        for name in &all {
            let moved = topo.router().shard_for(name) != grown.shard_for(name);
            assert_eq!(
                moving.contains(name),
                moved,
                "{name}: move list disagrees with HRW"
            );
            if moved {
                assert_eq!(grown.shard_for(name), 3);
            }
        }
        // An override already off its HRW home is never re-moved.
        let pinned = moving[0].clone();
        topo.place(&pinned, 0);
        if topo.router().shard_for(&pinned) != 0 {
            assert!(!topo.names_moving_to_new_shard().contains(&pinned));
        }
    }
}
