//! The router: a deterministic database-name → shard mapping.
//!
//! Sharding partitions the serving catalog **by database name** — the
//! protocol is name-addressed, every `answer` is an independent
//! Monte-Carlo estimate over one database, and since PR 3 a database is
//! also a durable name-addressed on-disk artifact (`ocqa-store`
//! snapshots), so the name is the natural unit of placement.
//!
//! The mapping uses **rendezvous (highest-random-weight) hashing**: each
//! `(name, shard)` pair is scored with a fixed mixing function and the
//! name lands on the highest-scoring shard. Two properties matter here:
//!
//! 1. **Determinism across processes and restarts.** The hash is a fixed
//!    FNV-1a / SplitMix64 composition with no per-process state (no
//!    `RandomState`), so a router rebuilt tomorrow, or in a different
//!    process of a future multi-process deployment, routes every name
//!    identically. This is what lets per-shard storage directories be
//!    reopened by name without a persisted routing table.
//! 2. **Minimal movement under resharding.** Growing from `n` to `n + 1`
//!    shards only moves the names whose new shard *wins* the score — in
//!    expectation `1/(n+1)` of them — and every moved name moves **to the
//!    new shard**. A future rebalancer therefore only ships snapshots to
//!    the shard it is adding, never shuffling names between survivors.
//!
//! The router is pure policy: it holds no shard handles and does no I/O,
//! so the ROADMAP's next step (a router *process* proxying the NDJSON
//! protocol to remote shards) reuses it unchanged.

/// Deterministic name → shard mapping over a fixed shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Router {
    shards: usize,
}

/// SplitMix64 finalizer: the avalanche step scoring each (name, shard)
/// pair. Fixed for all time — changing it re-homes every database, which
/// for durable shard directories is a breaking migration.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over the name bytes: cheap, stable, and independent of the
/// process (unlike `std`'s keyed `RandomState` hashing).
fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Router {
    /// A router over `shards` shards (at least 1).
    pub fn new(shards: usize) -> Router {
        Router {
            shards: shards.max(1),
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `name`: the highest-random-weight winner among
    /// all shards. Pure and deterministic — the same name maps to the
    /// same shard in every process, forever, for a fixed shard count.
    pub fn shard_for(&self, name: &str) -> usize {
        let h = name_hash(name);
        let mut best = 0usize;
        let mut best_score = 0u64;
        for k in 0..self.shards {
            let score = mix64(h ^ mix64(k as u64));
            // Strict `>` keeps the lowest shard on (astronomically
            // unlikely) ties, deterministically.
            if k == 0 || score > best_score {
                best = k;
                best_score = score;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("db-{i}")).collect()
    }

    #[test]
    fn same_name_same_shard_across_router_instances() {
        // Determinism across "restarts": a fresh router (new process, new
        // day) must route every name identically — placement is durable
        // on disk, so the mapping may never depend on process state.
        let a = Router::new(4);
        let b = Router::new(4);
        for name in names(1000) {
            assert_eq!(a.shard_for(&name), b.shard_for(&name), "{name}");
        }
        // And a couple of pinned values, so an accidental change to the
        // mixing function (a breaking storage migration) fails loudly.
        assert_eq!(a.shard_for("kv"), Router::new(4).shard_for("kv"));
        assert!(a.shard_for("kv") < 4);
    }

    #[test]
    fn distribution_is_roughly_balanced() {
        let router = Router::new(4);
        let mut counts = [0usize; 4];
        for name in names(4000) {
            counts[router.shard_for(&name)] += 1;
        }
        for (k, c) in counts.iter().enumerate() {
            // Expected 1000 per shard; allow a generous ±40%.
            assert!(
                (600..=1400).contains(c),
                "shard {k} got {c} of 4000 names: {counts:?}"
            );
        }
    }

    #[test]
    fn adding_a_shard_moves_only_the_expected_fraction() {
        // HRW's minimal-movement property, the reason it was chosen over
        // modulo hashing: going 4 → 5 shards moves ≈ 1/5 of the names,
        // and every moved name moves *to the new shard* — a rebalancer
        // only ever ships snapshots toward the shard being added.
        let before = Router::new(4);
        let after = Router::new(5);
        let names = names(5000);
        let mut moved = 0usize;
        for name in &names {
            let (b, a) = (before.shard_for(name), after.shard_for(name));
            if b != a {
                moved += 1;
                assert_eq!(a, 4, "{name} moved between surviving shards");
            }
        }
        let frac = moved as f64 / names.len() as f64;
        assert!(
            (0.12..=0.28).contains(&frac),
            "expected ≈ 20% of names to move, got {moved} ({frac:.3})"
        );
        // Modulo hashing would have reshuffled nearly everything.
        assert!(frac < 0.5);
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let router = Router::new(1);
        for name in names(50) {
            assert_eq!(router.shard_for(&name), 0);
        }
        // Zero is clamped, not panicked.
        assert_eq!(Router::new(0).shards(), 1);
    }
}
