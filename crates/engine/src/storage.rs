//! The storage seam: pluggable durability for the engine's catalog and
//! prepared-query registry.
//!
//! The engine treats storage as a **write-ahead journal plus a recovery
//! source**. Every catalog mutation (`install`/`update`/`drop`) and every
//! newly prepared query text is offered to the backend *before* it is
//! applied in memory — a backend that fails the journal call vetoes the
//! mutation, so the durable log can never lag the served state. At
//! startup [`StorageBackend::recover`] returns the whole persisted world:
//! databases with their versions, constraint text, maintained violation
//! sets and planner classifications, plus the prepared-query texts in
//! their original preparation order (handle ids are ordinal, so replaying
//! the texts in order reproduces the exact pre-restart handles).
//!
//! Two implementations exist:
//!
//! * [`MemoryBackend`] — the default; journals nothing and recovers an
//!   empty state. This is exactly the engine's historical behavior.
//! * `DiskBackend` in the `ocqa-store` crate — snapshots layered on
//!   `ocqa_data::codec` plus an append-only, checksummed WAL with crash
//!   recovery and background compaction.
//!
//! The trait lives here (not in `ocqa-store`) so the engine stays free of
//! file-system concerns and other backends (remote/replicated stores, the
//! ROADMAP's sharding hand-off) can plug in without touching the serving
//! layer.
//!
//! Under sharding ([`crate::Engine::with_backends`]) each
//! [`crate::ShardEngine`] owns **one backend of its own** — for disk
//! stores, a `shard-<k>/` directory with its own LOCK, WAL and snapshot
//! generation — so shards journal and recover with no coordination, and
//! a shard's whole slice of the catalog can be handed to another process
//! by pointing it at the directory.

use crate::error::EngineError;
use crate::planner::{Estimate, PlanKind};
use ocqa_data::{Database, Fact};
use ocqa_logic::ViolationSet;

/// Everything a backend needs to journal a database install durably. The
/// borrows point into the already-validated [`crate::ParsedDatabase`], so
/// journaling never re-parses or re-validates.
pub struct InstallImage<'a> {
    /// Catalog name.
    pub name: &'a str,
    /// The version the install will commit at.
    pub version: u64,
    /// The full database (schema + facts).
    pub db: &'a Database,
    /// The constraint source text, re-parseable on recovery.
    pub constraints: &'a str,
    /// The structural planner classification, recorded so recovery
    /// restores it without re-deriving.
    pub plan: PlanKind,
    /// The computed violation set `V(D, Σ)`, recorded so recovery never
    /// pays the `O(|D|^{|body|})` recomputation.
    pub violations: &'a ViolationSet,
}

/// The net effect of an update batch, offered to the backend before the
/// catalog commits it. `inserted`/`removed` are the **netted** lists (the
/// same ones the incremental violation maintenance consumes), so replay
/// applies them verbatim.
pub struct UpdateDelta<'a> {
    /// Catalog name.
    pub db: &'a str,
    /// The version the update will commit at.
    pub version: u64,
    /// Facts absent before and present after.
    pub inserted: &'a [Fact],
    /// Facts present before and absent after.
    pub removed: &'a [Fact],
}

/// One database as reconstructed by [`StorageBackend::recover`].
pub struct RestoredDatabase {
    /// Catalog name.
    pub name: String,
    /// The version the database last committed at — restored verbatim so
    /// answer-cache keys and reported `db_version`s match the pre-restart
    /// engine.
    pub version: u64,
    /// The database (schema + facts).
    pub db: Database,
    /// Constraint source text (parsed once during restore).
    pub constraints: String,
    /// The recorded planner classification.
    pub plan: PlanKind,
    /// The maintained violation set at `version`.
    pub violations: ViolationSet,
}

/// One database's learned per-plan cost estimates, journaled as planner
/// feedback and restored into the cost model on recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanFeedback {
    /// Catalog name.
    pub db: String,
    /// Decayed estimates in plan registry order (key-repair, localized,
    /// monolithic — the order of [`crate::obs::PLANS`]).
    pub estimates: [Estimate; 3],
}

/// One hot answer-cache key, persisted so a restarted shard can pre-warm
/// the entries its clients touch first. Carries everything needed to
/// re-run the answer deterministically — including the version, so a
/// recovered key whose database has since moved on is simply skipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotKey {
    /// Catalog name.
    pub db: String,
    /// The database version the cached answer was computed at.
    pub version: u64,
    /// The query text (cache-key form).
    pub query: String,
    /// The generator name.
    pub generator: String,
    /// The plan the answer was served with (replayed as an explicit
    /// override so pre-warming reproduces the exact cached entry).
    pub plan: PlanKind,
    /// `eps` as IEEE-754 bits (the cache key's exact form).
    pub eps_bits: u64,
    /// `delta` as IEEE-754 bits.
    pub delta_bits: u64,
    /// The request seed.
    pub seed: u64,
}

/// The planner-feedback image: the cost model's learned estimates plus
/// the hottest answer-cache keys, journaled as one full-state record
/// (last record wins on replay — estimates are tiny, so re-journaling
/// the whole image every few observations beats delta encoding).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FeedbackImage {
    /// Per-database learned estimates, sorted by name for deterministic
    /// bytes.
    pub estimates: Vec<PlanFeedback>,
    /// The hottest cache keys across all databases, most recent first.
    pub hot_keys: Vec<HotKey>,
}

/// The persisted world handed to a starting engine.
#[derive(Default)]
pub struct RecoveredState {
    /// Databases to restore, in any order.
    pub databases: Vec<RestoredDatabase>,
    /// Live prepared queries as `(handle id, text)` pairs in registry
    /// (FIFO) order. Ids are restored verbatim — after registry-capacity
    /// evictions they are *not* contiguous, so texts alone could not
    /// reproduce them.
    pub prepared: Vec<(String, String)>,
    /// The registry's id counter (highest ordinal ever allocated,
    /// evicted handles included), so post-restart allocations can never
    /// alias a pre-restart handle.
    pub prepared_next: u64,
    /// Floor for the catalog's global version counter: at least the
    /// highest version ever issued, *including dropped databases*, so a
    /// recreate after restart can never alias a pre-restart version.
    pub next_version: u64,
    /// The last journaled planner-feedback image (empty when the backend
    /// predates planner v2 or never journaled feedback).
    pub feedback: FeedbackImage,
}

impl RecoveredState {
    /// An empty state (what [`MemoryBackend`] recovers).
    pub fn empty() -> RecoveredState {
        RecoveredState::default()
    }
}

/// A durability backend for the engine. See the module docs for the
/// journaling contract; all methods must be callable from any thread
/// (the engine journals under its catalog/registry locks).
pub trait StorageBackend: Send + Sync {
    /// Short name reported in `stats` (`"memory"`, `"disk"`, …).
    fn label(&self) -> &'static str;

    /// Loads the persisted state at engine startup.
    fn recover(&self) -> Result<RecoveredState, EngineError>;

    /// Journals a database install. Returning an error vetoes it.
    fn journal_install(&self, image: &InstallImage<'_>) -> Result<(), EngineError>;

    /// Journals an effective update batch. Returning an error vetoes it.
    fn journal_update(&self, delta: &UpdateDelta<'_>) -> Result<(), EngineError>;

    /// Journals a drop; `version` is the dropped incarnation's version.
    fn journal_drop(&self, name: &str, version: u64) -> Result<(), EngineError>;

    /// Journals a newly prepared query text (called only for texts that
    /// allocate a new handle — re-preparing an existing text is not a
    /// mutation). `ordinal` is the handle number the allocation will
    /// mint (`"q<ordinal>"`); journaling it makes replay idempotent — a
    /// record at or below the recovered counter is a refolded duplicate
    /// and is skipped, mirroring the version guards on catalog records.
    fn journal_prepare(&self, text: &str, ordinal: u64) -> Result<(), EngineError>;

    /// Journals the planner-feedback image (full state, last record
    /// wins). Unlike the catalog hooks this is **advisory**: learned
    /// costs are an optimization, so the shard ignores failures and a
    /// backend without durability simply keeps the default no-op.
    fn journal_feedback(&self, _feedback: &FeedbackImage) -> Result<(), EngineError> {
        Ok(())
    }

    /// WAL group-commit observability: `(records-per-fsync, fsync
    /// latency µs)` histograms, for backends that journal through a
    /// group-committed log. `None` (the default) for backends without
    /// one; the shard then reports empty series.
    fn wal_commit_stats(&self) -> Option<(crate::obs::HistSnapshot, crate::obs::HistSnapshot)> {
        None
    }
}

/// The no-op backend: nothing persists, recovery is empty. Exactly the
/// engine's pre-storage behavior, at zero cost on the mutation paths.
#[derive(Debug, Default, Clone, Copy)]
pub struct MemoryBackend;

impl StorageBackend for MemoryBackend {
    fn label(&self) -> &'static str {
        "memory"
    }

    fn recover(&self) -> Result<RecoveredState, EngineError> {
        Ok(RecoveredState::empty())
    }

    fn journal_install(&self, _image: &InstallImage<'_>) -> Result<(), EngineError> {
        Ok(())
    }

    fn journal_update(&self, _delta: &UpdateDelta<'_>) -> Result<(), EngineError> {
        Ok(())
    }

    fn journal_drop(&self, _name: &str, _version: u64) -> Result<(), EngineError> {
        Ok(())
    }

    fn journal_prepare(&self, _text: &str, _ordinal: u64) -> Result<(), EngineError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_backend_recovers_empty() {
        let state = MemoryBackend.recover().unwrap();
        assert!(state.databases.is_empty());
        assert!(state.prepared.is_empty());
        assert_eq!(state.next_version, 0);
        assert_eq!(MemoryBackend.label(), "memory");
    }
}
