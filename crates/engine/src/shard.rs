//! One shard of the serving engine: a catalog partition with its own
//! cache, sampler pool, prepared registry and storage backend.
//!
//! A [`ShardEngine`] is exactly what the pre-sharding `Engine` was — the
//! paper's operational semantics makes every `answer` an independent
//! Monte-Carlo estimate over *one* database, so a catalog partitioned by
//! database name shards with no cross-shard coordination at all. The
//! front door ([`crate::Engine`]) owns the name → shard mapping
//! ([`crate::Router`]) and fans `list`/`stats` out; everything else —
//! violation maintenance, planning, sampling, caching, journaling —
//! happens here, per shard, against shard-local state.
//!
//! Locking discipline (unchanged from the monolithic engine): the
//! catalog and cache locks are held only to read or mutate metadata —
//! never across sampling. An `answer` takes a snapshot
//! (`Arc<RepairContext>`) under the catalog lock, releases it, samples
//! on the shard's pool, and re-takes the cache lock to store the result.
//!
//! # Single-flight answers
//!
//! The answer path coalesces identical concurrent misses: the first miss
//! for a fully-qualified cache key becomes the **leader** and samples;
//! every concurrent miss for the same key blocks on the leader's
//! [`crate::singleflight::Flight`] and shares its tally. N concurrent
//! cold requests for one key therefore cost **one** sampling run — the
//! `walks` counter moves once — and, by the determinism contract, every
//! caller receives bit-identical estimates. Coalesced serves are marked
//! `coalesced: true` in the payload and counted in
//! [`ShardStats::coalesced`].
//!
//! # Admission control
//!
//! At most [`crate::EngineConfig::max_inflight`] leaders may sample
//! concurrently per shard. Beyond that the request is rejected with
//! [`EngineError::ShardFull`] *before any success counter moves*, so a
//! client retry is accounted as a fresh request — `answers` and `walks`
//! can never double-count a retried request. Admission is checked
//! *before* a single-flight entry can be created: a rejected request
//! never becomes a leader, so followers — who need no sampling slot —
//! can never inherit someone else's overload rejection, and a full
//! shard still serves every request that can coalesce onto an admitted
//! in-flight run.

use crate::cache::{AnswerCache, CacheKey, CacheStats};
use crate::catalog::{Catalog, DatabaseInfo, UpdateOutcome};
use crate::engine::{generator_by_name, EngineConfig};
use crate::error::EngineError;
use crate::json::Json;
use crate::obs::{HistSnapshot, MetricsSnapshot, Op, ShardMetrics, SlowLog, Stage, PLANS};
use crate::planner::{CostModel, PlanKind, PlannerMode, FEEDBACK_JOURNAL_EVERY};
use crate::pool::SamplerPool;
use crate::prepared::{PreparedQuery, PreparedRegistry};
use crate::proto::{AnswerPayload, AnswerRow, ExplainPayload, QueryRef};
use crate::singleflight::{Join, SingleFlight};
use crate::storage::{FeedbackImage, HotKey, InstallImage, PlanFeedback, StorageBackend};
use crate::subscribe::{self, PushOutcome, PushSession, Subscription, SubscriptionRegistry};
use crate::transfer::TransferImage;
use ocqa_core::sample::{sample_size, SampleTally};
use parking_lot::{Mutex, RwLock};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// How many answer-cache keys the feedback journal retains per shard —
/// the bounded pre-warm list a restarted shard replays on first touch.
pub const MAX_HOT_KEYS: usize = 32;

/// Per-shard serving counters, summed by the front door's `stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// `answer` requests served by this shard (computed, cached or
    /// coalesced).
    pub answers: u64,
    /// Sample walks executed by this shard's pool.
    pub walks: u64,
    /// Answers served by joining another request's in-flight sampling
    /// run (the single-flight follower path).
    pub coalesced: u64,
    /// Databases in this shard's catalog.
    pub databases: usize,
    /// Prepared queries in this shard's registry.
    pub prepared: usize,
    /// Worker threads in this shard's sampler pool.
    pub workers: usize,
    /// Live subscriptions in this shard's registry.
    pub subscriptions: usize,
    /// This shard's answer-cache counters.
    pub cache: CacheStats,
}

/// One shard: a full, self-contained serving engine over a slice of the
/// catalog, rooted (when durable) at its own `shard-<k>/` data directory
/// with its own LOCK, WAL and snapshots.
pub struct ShardEngine {
    id: u32,
    catalog: RwLock<Catalog>,
    cache: Mutex<AnswerCache>,
    prepared: RwLock<PreparedRegistry>,
    backend: Arc<dyn StorageBackend>,
    pool: SamplerPool,
    flights: SingleFlight,
    /// Leaders currently sampling (admission control; followers and
    /// cache hits never consume a slot).
    inflight: AtomicU64,
    max_inflight: u64,
    max_walks: u64,
    planner: PlannerMode,
    /// The cost model: learned per-(db, plan) estimates plus memoized
    /// decisions. Fed on every leader success (whatever the mode, so a
    /// `--planner static` A/B run still accumulates evidence) and
    /// journaled every [`FEEDBACK_JOURNAL_EVERY`] observations.
    cost: CostModel,
    /// Recovered hot cache keys awaiting replay, grouped per database;
    /// drained on the first answer touching the database.
    warm: Mutex<HashMap<String, Vec<HotKey>>>,
    /// Fast guard for `warm` (true while any list remains), so the
    /// answer hot path pays one relaxed load, not a mutex.
    has_warm: AtomicBool,
    /// Self-reference for the detached pre-warm thread.
    self_ref: Weak<ShardEngine>,
    answers: AtomicU64,
    walks: AtomicU64,
    coalesced: AtomicU64,
    metrics: ShardMetrics,
    slow: SlowLog,
    /// Live continuous queries (session-scoped, never journaled).
    subs: SubscriptionRegistry,
    /// Per-connection subscription ceiling (`--max-subs-per-conn`).
    max_subs: usize,
}

/// Stage timings of one `answer`, carried to the success return for the
/// slow-request trace event.
#[derive(Debug, Clone, Copy, Default)]
struct AnswerTrace {
    cache_lookup: Duration,
    flight_wait: Duration,
    sample: Duration,
}

/// RAII admission slot: only sampling leaders hold one. Reserved
/// **before** a single-flight entry can be created, so an admission
/// rejection is always private to the rejected request; released on
/// drop, surviving panicking samplers.
struct Slot<'a>(&'a AtomicU64);

impl<'a> Slot<'a> {
    /// Claims a slot if the shard is under `max` concurrent samplers.
    fn reserve(counter: &'a AtomicU64, max: u64) -> Option<Slot<'a>> {
        if counter.fetch_add(1, Ordering::AcqRel) >= max {
            counter.fetch_sub(1, Ordering::AcqRel);
            return None;
        }
        Some(Slot(counter))
    }
}

impl Drop for Slot<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

impl ShardEngine {
    /// Builds shard `id` on a storage backend: the backend's persisted
    /// state is recovered first — databases with their exact versions,
    /// violation sets and planner classifications, and prepared queries
    /// with their original ordinal handles — and every subsequent
    /// mutation is journaled write-through. A recovered shard serves
    /// bit-identical answers to its pre-restart self for equal requests.
    ///
    /// `config` is the *per-shard* configuration — the front door divides
    /// worker threads and cache capacity across shards before calling
    /// this.
    pub fn with_backend(
        config: EngineConfig,
        backend: Arc<dyn StorageBackend>,
        id: u32,
    ) -> Result<Arc<ShardEngine>, EngineError> {
        let state = backend.recover()?;
        let mut catalog = Catalog::new();
        for db in state.databases {
            catalog.restore(db)?;
        }
        catalog.raise_version_floor(state.next_version);
        let mut prepared = PreparedRegistry::new();
        prepared.restore(state.prepared, state.prepared_next)?;
        let ttl = (config.ttl_ms > 0).then(|| Duration::from_millis(config.ttl_ms));
        // Resume the learned cost estimates and stage the recovered hot
        // keys for lazy replay (all fallible recovery work is done by
        // here — `new_cyclic` only wires the self-reference the pre-warm
        // thread needs).
        let cost = CostModel::new();
        cost.restore(
            state
                .feedback
                .estimates
                .iter()
                .map(|f| (f.db.clone(), f.estimates)),
        );
        let mut warm: HashMap<String, Vec<HotKey>> = HashMap::new();
        for key in state.feedback.hot_keys {
            warm.entry(key.db.clone()).or_default().push(key);
        }
        let has_warm = !warm.is_empty();
        Ok(Arc::new_cyclic(|self_ref| ShardEngine {
            id,
            catalog: RwLock::new(catalog),
            cache: Mutex::new(AnswerCache::with_ttl(config.cache_capacity, ttl)),
            prepared: RwLock::new(prepared),
            backend,
            pool: SamplerPool::new(config.workers),
            flights: SingleFlight::new(),
            inflight: AtomicU64::new(0),
            max_inflight: config.max_inflight as u64,
            max_walks: config.max_walks.max(1),
            planner: config.planner,
            cost,
            warm: Mutex::new(warm),
            has_warm: AtomicBool::new(has_warm),
            self_ref: self_ref.clone(),
            answers: AtomicU64::new(0),
            walks: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            metrics: ShardMetrics::new(),
            slow: SlowLog::new(config.slow_ms),
            subs: SubscriptionRegistry::new(),
            max_subs: config.max_subs_per_conn,
        }))
    }

    /// This shard's index (also the `shard` field of its responses).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The storage backend's label (`"memory"`, `"disk"`, …).
    pub fn backend_label(&self) -> &'static str {
        self.backend.label()
    }

    /// The configured per-request walk ceiling.
    pub fn max_walks(&self) -> u64 {
        self.max_walks
    }

    /// Creates a database from source text (parse and `V(D, Σ)` outside
    /// the write lock; journal-before-mutate under it).
    pub fn create(
        &self,
        name: &str,
        facts: &str,
        constraints: &str,
    ) -> Result<DatabaseInfo, EngineError> {
        let t0 = Instant::now();
        let parsed = crate::catalog::ParsedDatabase::parse(facts, constraints)?;
        let wal = Cell::new(Duration::ZERO);
        let info = self.catalog.write().install_with(name, parsed, |image| {
            let t = Instant::now();
            let out = self.backend.journal_install(image);
            wal.set(t.elapsed());
            self.metrics.record_stage(Stage::WalAppend, wal.get());
            out
        })?;
        self.observe_mutation(t0, Op::Install, name, wal.get());
        Ok(info)
    }

    /// Exports a database as a snapshot [`TransferImage`] (the payload of
    /// the `fetch_snapshot` protocol op): name, exact catalog version,
    /// constraint text, plan classification, facts and maintained
    /// violation set — everything the receiving shard needs to answer
    /// bit-identically without recomputing anything.
    pub fn export_snapshot(&self, name: &str) -> Result<TransferImage, EngineError> {
        self.catalog.read().export(name)
    }

    /// Installs a snapshot [`TransferImage`] shipped from another shard
    /// (the `install_snapshot` protocol op). Journal-before-apply like
    /// every other mutation; the image's version is restored verbatim so
    /// answer-cache keys and reported `db_version`s match the exporting
    /// shard exactly. Refused when the name already exists: the
    /// rebalancer moves **then** drops, so the target legitimately never
    /// has the database — an existing entry means a half-finished move,
    /// which must stay a hard error, never a silent overwrite.
    pub fn install_snapshot(&self, img: TransferImage) -> Result<DatabaseInfo, EngineError> {
        let t0 = Instant::now();
        let mut catalog = self.catalog.write();
        if catalog.info(&img.name).is_ok() {
            return Err(EngineError::DatabaseExists(img.name));
        }
        // Journal-then-mutate: a vetoed install leaves the shard without
        // the database and the move can be retried from the source.
        let t = Instant::now();
        self.backend.journal_install(&InstallImage {
            name: &img.name,
            version: img.version,
            db: &img.db,
            constraints: &img.constraints,
            plan: img.plan,
            violations: &img.violations,
        })?;
        let wal = t.elapsed();
        self.metrics.record_stage(Stage::WalAppend, wal);
        let info = catalog.restore(crate::storage::RestoredDatabase {
            name: img.name,
            version: img.version,
            db: img.db,
            constraints: img.constraints,
            plan: img.plan,
            violations: img.violations,
        })?;
        drop(catalog);
        self.observe_mutation(t0, Op::Install, &info.name, wal);
        Ok(info)
    }

    /// Drops a database, flooring the answer cache above the dropped
    /// incarnation's version.
    pub fn drop_db(&self, name: &str) -> Result<(), EngineError> {
        let t0 = Instant::now();
        let (version, wal) = {
            let mut catalog = self.catalog.write();
            let version = catalog.info(name)?.version;
            // Journal-then-mutate: a vetoed drop leaves the database.
            let t = Instant::now();
            self.backend.journal_drop(name, version)?;
            let wal = t.elapsed();
            self.metrics.record_stage(Stage::WalAppend, wal);
            catalog.drop_db(name);
            (version, wal)
        };
        // Floor above the dropped incarnation: a recreated database
        // starts at a strictly higher global version, so its entries pass
        // while any in-flight answer against the dropped one is rejected.
        self.cache.lock().invalidate_db(name, version + 1);
        // Learned costs and staged pre-warm keys describe the dropped
        // incarnation's data; a future namesake must start from priors.
        self.cost.forget_db(name);
        if self.has_warm.load(Ordering::Relaxed) {
            self.warm.lock().remove(name);
        }
        // Continuous queries over the dropped database end here: each
        // subscriber gets a terminal `"event":"closed"` frame (after the
        // cache floor, so a post-frame `answer` can't see stale state).
        for sub in self.subs.remove_db(name) {
            // Slot release *before* the terminal frame: a subscriber
            // reacting to it with a fresh `subscribe` never bounces off
            // its own dying registration's limit slot.
            sub.session.remove_sub();
            sub.session
                .push(subscribe::closed_frame(name, sub.id, "dropped"));
        }
        self.observe_mutation(t0, Op::Drop, name, wal);
        Ok(())
    }

    /// Applies an insert/delete batch (fact-list source text).
    pub fn update(
        &self,
        db: &str,
        insert: &str,
        delete: &str,
    ) -> Result<UpdateOutcome, EngineError> {
        // Parse outside the lock; the locked phase is the incremental
        // violation update, proportional to the delta's neighbourhood.
        let t0 = Instant::now();
        let inserts = ocqa_logic::parser::parse_facts(insert)
            .map_err(|e| EngineError::Parse(e.to_string()))?;
        let deletes = ocqa_logic::parser::parse_facts(delete)
            .map_err(|e| EngineError::Parse(e.to_string()))?;
        let wal = Cell::new(Duration::ZERO);
        let (outcome, touched) =
            self.catalog
                .write()
                .update_parsed_with(db, &inserts, &deletes, |delta| {
                    let t = Instant::now();
                    let out = self.backend.journal_update(delta);
                    wal.set(t.elapsed());
                    self.metrics.record_stage(Stage::WalAppend, wal.get());
                    out
                })?;
        // An effective update bumps the version; purge dead entries
        // eagerly and floor the database so an in-flight answer that
        // sampled the pre-update snapshot cannot re-insert one. No-op
        // updates keep the version and the cache.
        if outcome.inserted > 0 || outcome.removed > 0 {
            self.cache.lock().invalidate_db(db, outcome.version);
        }
        // Ordering contract: subscriber pushes happen strictly *after*
        // the cache floor above, so a subscriber reacting to a pushed
        // frame with an immediate `answer` can never read a pre-update
        // tally. Clean-region-only updates have an empty touched set and
        // push (and resample) nothing.
        self.notify_update(db, &touched);
        self.observe_mutation(t0, Op::Update, db, wal.get());
        Ok(outcome)
    }

    /// Parses and registers a query text, returning the (possibly
    /// pre-existing) handle. New texts are journaled.
    pub fn prepare(&self, text: &str) -> Result<Arc<PreparedQuery>, EngineError> {
        let t0 = Instant::now();
        let prepared = self.prepared.write().prepare_with(text, |t, ord| {
            let w = Instant::now();
            let out = self.backend.journal_prepare(t, ord);
            self.metrics.record_stage(Stage::WalAppend, w.elapsed());
            out
        })?;
        self.metrics.record_op(Op::Prepare, t0.elapsed());
        Ok(prepared)
    }

    /// Resolves a prepared handle (the front door uses shard 0 as the
    /// handle authority when rewriting `prepared` refs for other shards).
    pub fn prepared_get(&self, id: &str) -> Result<Arc<PreparedQuery>, EngineError> {
        let t0 = Instant::now();
        let prepared = self.prepared.read().get(id)?;
        self.metrics.record_op(Op::PreparedGet, t0.elapsed());
        Ok(prepared)
    }

    /// Serves one `answer` request against this shard's catalog.
    #[allow(clippy::too_many_arguments)]
    pub fn answer(
        &self,
        db: &str,
        query_ref: &QueryRef,
        generator: &str,
        eps: f64,
        delta: f64,
        seed: u64,
        plan_request: Option<PlanKind>,
    ) -> Result<AnswerPayload, EngineError> {
        let t0 = Instant::now();
        if eps <= 0.0 || eps >= 1.0 || delta <= 0.0 || delta >= 1.0 {
            return Err(EngineError::BadRequest(
                "eps and delta must lie in (0,1)".into(),
            ));
        }
        let walks = sample_size(eps, delta);
        if walks > self.max_walks {
            return Err(EngineError::BadRequest(format!(
                "eps/delta require {walks} walks, above the engine limit of {}",
                self.max_walks
            )));
        }
        // Inline text is routed through the prepared registry too: the
        // parse/validate cost is paid once per distinct query text.
        let prepared = match query_ref {
            QueryRef::Text(text) => {
                // Fast path under the read lock: hot workloads repeat the
                // same inline text, and a write lock here would serialize
                // every concurrent answer. New inline texts are journaled
                // like explicit prepares — handle ids are ordinal, so
                // recovery must replay every allocation to reproduce them.
                let known = self.prepared.read().lookup_text(text);
                match known {
                    Some(p) => p,
                    None => self.prepare(text)?,
                }
            }
            QueryRef::Prepared(id) => self.prepared.read().get(id)?,
        };
        let gen = generator_by_name(generator)?;
        self.trigger_prewarm(db);
        let (_ctx, version, plan) = self.catalog.read().snapshot(db)?;
        // Resolve the route. Explicit requests are validated (unsound
        // forces are errors, not silent fallbacks) and bypass the model;
        // automatic requests go by mode — `off` pins monolithic, `static`
        // is the v1 structural classifier, `cost` asks the model for the
        // cheapest feasible plan (memoized per catalog version, so the
        // expensive inputs closure runs only on a re-decision).
        let route = match plan_request {
            Some(_) => plan.route(gen.as_ref(), plan_request)?,
            None => match self.planner {
                PlannerMode::Off => PlanKind::Monolithic,
                PlannerMode::Static => plan.route(gen.as_ref(), None)?,
                PlannerMode::Cost => {
                    self.cost
                        .choose(db, version, &plan, gen.as_ref(), &plan.stats(), || {
                            (self.plan_histograms(), self.cache_hit_permille())
                        })
                }
            },
        };
        let key = CacheKey {
            db: db.to_string(),
            version,
            query: prepared.text.clone(),
            generator: generator.to_string(),
            plan: route,
            eps_bits: eps.to_bits(),
            delta_bits: delta.to_bits(),
            seed,
        };
        // One lock acquisition serves both the lookup and the stats
        // snapshot reported alongside the answer.
        let mut trace = AnswerTrace::default();
        let lookup_t = Instant::now();
        let (hit, stats) = {
            let mut cache = self.cache.lock();
            let hit = cache.get(&key);
            let stats = cache.stats();
            (hit, stats)
        };
        // One clock read closes both the lookup stage and (on a hit) the
        // whole request — the cached path is the latency floor the
        // instrumentation must not erode.
        let looked_up = Instant::now();
        trace.cache_lookup = looked_up.duration_since(lookup_t);
        self.metrics
            .record_stage(Stage::CacheLookup, trace.cache_lookup);
        if let Some(tally) = hit {
            self.answers.fetch_add(1, Ordering::Relaxed);
            self.observe_answer(looked_up.duration_since(t0), db, route, true, false, trace);
            return Ok(self.payload(&tally, true, false, version, stats, route));
        }
        // Cache miss: coalesce or lead. Admission is checked *before* a
        // flight can be created — a request rejected for lack of a
        // sampling slot must never become a leader other requests pile
        // onto (one overload rejection would then fan out to N client
        // errors even though followers never need a slot). The sequence:
        //
        //   1. follow an existing flight, slot-free;
        //   2. otherwise reserve a sampling slot (rejected here = only
        //      this request fails, and no flight ever exists);
        //   3. with the slot held, join — losing the join race demotes
        //      to a follower and releases the slot.
        //
        // A follower whose flight resolves to `ShardFull` (impossible
        // from this code once leaders reserve first, but reachable from
        // older peers or future transports) re-joins instead of
        // propagating someone else's rejection.
        let (token, _slot) = loop {
            let flight = match self.flights.follow(&key) {
                Some(flight) => flight,
                None => match Slot::reserve(&self.inflight, self.max_inflight) {
                    Some(slot) => match self.flights.join(&key) {
                        Join::Leader(token) => break (token, slot),
                        Join::Follower(flight) => {
                            drop(slot); // lost the race; coalesce instead
                            flight
                        }
                    },
                    None => match self.flights.follow(&key) {
                        // A leader for this very key may have claimed the
                        // last slot in the window since the first peek —
                        // coalescing needs no slot, so re-check before
                        // turning the request away.
                        Some(flight) => flight,
                        None => return Err(EngineError::ShardFull(self.id)),
                    },
                },
            };
            let wait_t = Instant::now();
            let waited = flight.wait();
            trace.flight_wait += wait_t.elapsed();
            match waited {
                Ok(tally) => {
                    self.metrics
                        .record_stage(Stage::FlightWait, trace.flight_wait);
                    self.answers.fetch_add(1, Ordering::Relaxed);
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    let stats = self.cache.lock().stats();
                    self.observe_answer(t0.elapsed(), db, route, false, true, trace);
                    return Ok(self.payload(&tally, false, true, version, stats, route));
                }
                Err(EngineError::ShardFull(_)) => continue,
                Err(e) => return Err(e),
            }
        };
        // Leadership won — but the previous leader for this key may have
        // completed (cache insert, then flight retirement) between our
        // cache miss and our join. Re-check the cache so that window can
        // never trigger a redundant sampling run; the insert-before-
        // retire ordering below makes this re-check conclusive.
        let lookup_t = Instant::now();
        let (hit, stats) = {
            let mut cache = self.cache.lock();
            let hit = cache.get(&key);
            let stats = cache.stats();
            (hit, stats)
        };
        let recheck = lookup_t.elapsed();
        trace.cache_lookup += recheck;
        self.metrics.record_stage(Stage::CacheLookup, recheck);
        if let Some(tally) = hit {
            self.answers.fetch_add(1, Ordering::Relaxed);
            token.complete(Ok(tally.clone()));
            self.observe_answer(t0.elapsed(), db, route, true, false, trace);
            return Ok(self.payload(&tally, true, false, version, stats, route));
        }
        // Sample on the pool with no locks held; the admission slot is
        // released when `_slot` drops (RAII — like the leader token, it
        // must survive a panicking sampler, or each panic would
        // permanently shrink the shard's capacity).
        let sample_t = Instant::now();
        let result = plan
            .task(route, gen)
            .and_then(|task| self.pool.run(&task, &prepared.query, walks, seed))
            .map(Arc::new);
        trace.sample = sample_t.elapsed();
        self.metrics.record_stage(Stage::Sample, trace.sample);
        drop(_slot);
        let tally = match result {
            Ok(tally) => tally,
            Err(e) => {
                token.complete(Err(e.clone()));
                return Err(e);
            }
        };
        // Counters move only on success: a rejected or failed request
        // must inflate neither `answers` nor `walks`.
        self.walks.fetch_add(walks, Ordering::Relaxed);
        self.answers.fetch_add(1, Ordering::Relaxed);
        let sample_us = trace.sample.as_micros().min(u128::from(u64::MAX)) as u64;
        // Insert into the cache *before* retiring the flight: a caller
        // that misses the retired flight is guaranteed to hit the cache.
        let stats = self.store_answer(key, tally.clone());
        token.complete(Ok(tally.clone()));
        // Close the loop: fold the observed walk cost into the decayed
        // per-(db, plan) estimate — whatever the planner mode, so a
        // `--planner static` A/B run still accumulates evidence — and
        // journal the feedback image periodically (best-effort; learned
        // costs are an optimization, never worth vetoing the answer).
        // After `token.complete`, so the WAL fsync never extends the
        // window followers wait on, and the image includes this answer's
        // freshly inserted key.
        let observed = self.cost.observe(db, route, sample_us);
        if observed.is_multiple_of(FEEDBACK_JOURNAL_EVERY) {
            self.journal_feedback();
        }
        self.observe_answer(t0.elapsed(), db, route, false, false, trace);
        Ok(self.payload(&tally, false, false, version, stats, route))
    }

    /// Success-path bookkeeping for one `answer`: op and plan latency
    /// histograms, plus the `--slow-ms` trace event with the stage
    /// breakdown. Failed requests record no op/plan latency — mirroring
    /// the counter discipline, the timing families describe *served*
    /// requests only.
    fn observe_answer(
        &self,
        elapsed: Duration,
        db: &str,
        route: PlanKind,
        cached: bool,
        coalesced: bool,
        trace: AnswerTrace,
    ) {
        self.metrics.record_op(Op::Answer, elapsed);
        self.metrics.record_plan(route, elapsed);
        if self.slow.is_slow(elapsed) {
            let us = |d: Duration| Json::from(d.as_micros().min(u128::from(u64::MAX)) as u64);
            self.slow.emit(Json::obj([
                ("op", Json::from("answer")),
                ("db", Json::from(db)),
                ("shard", Json::from(u64::from(self.id))),
                ("plan", Json::from(route.as_str())),
                ("cached", Json::from(cached)),
                ("coalesced", Json::from(coalesced)),
                (
                    "elapsed_ms",
                    Json::from(elapsed.as_millis().min(u128::from(u64::MAX)) as u64),
                ),
                (
                    "stages",
                    Json::obj([
                        ("cache_lookup_us", us(trace.cache_lookup)),
                        ("flight_wait_us", us(trace.flight_wait)),
                        ("sample_us", us(trace.sample)),
                    ]),
                ),
            ]));
        }
    }

    /// Success-path bookkeeping for a journaled mutation: op latency
    /// histogram plus the slow-request event carrying the WAL append
    /// time (the stage itself is recorded where it is measured, inside
    /// the journal call).
    fn observe_mutation(&self, t0: Instant, op: Op, db: &str, wal: Duration) {
        let elapsed = t0.elapsed();
        self.metrics.record_op(op, elapsed);
        if self.slow.is_slow(elapsed) {
            self.slow.emit(Json::obj([
                ("op", Json::from(op.as_str())),
                ("db", Json::from(db)),
                ("shard", Json::from(u64::from(self.id))),
                (
                    "elapsed_ms",
                    Json::from(elapsed.as_millis().min(u128::from(u64::MAX)) as u64),
                ),
                (
                    "stages",
                    Json::obj([(
                        "wal_append_us",
                        Json::from(wal.as_micros().min(u128::from(u64::MAX)) as u64),
                    )]),
                ),
            ]));
        }
    }

    /// A snapshot of this shard's latency-metrics registry (the
    /// `metrics` protocol op's per-shard unit), stamped with the live
    /// subscription gauge and the backend's WAL group-commit
    /// histograms.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        snap.subscriptions = self.subs.len() as u64;
        if let Some((batch, fsync)) = self.backend.wal_commit_stats() {
            snap.wal_batch = batch;
            snap.wal_fsync_us = fsync;
        }
        snap
    }

    /// The per-plan latency snapshot in registry order — the cost
    /// model's metrics-tier input.
    fn plan_histograms(&self) -> [HistSnapshot; PLANS.len()] {
        self.metrics.snapshot().plans
    }

    /// The answer cache's hit rate (hits over lookups, permille) — the
    /// cost model's switch-hysteresis input.
    fn cache_hit_permille(&self) -> u64 {
        let s = self.cache.lock().stats();
        (s.hits * 1000).checked_div(s.hits + s.misses).unwrap_or(0)
    }

    /// Explains the planner's decision for one database × generator:
    /// the plan an automatic answer would serve right now, with every
    /// candidate's feasibility verdict and cost estimate, plus the
    /// catalog-maintained statistics the estimates derive from.
    pub fn explain(&self, db: &str, generator: &str) -> Result<ExplainPayload, EngineError> {
        let gen = generator_by_name(generator)?;
        let (_ctx, version, plan) = self.catalog.read().snapshot(db)?;
        let stats = plan.stats();
        let plan_hists = self.plan_histograms();
        let hit_rate = self.cache_hit_permille();
        let candidates = self.cost.candidates(
            db,
            &plan,
            gen.as_ref(),
            &stats,
            &plan_hists,
            self.cost.incumbent(db),
            hit_rate,
        );
        let chosen = match self.planner {
            PlannerMode::Off => PlanKind::Monolithic,
            PlannerMode::Static => plan.route(gen.as_ref(), None)?,
            PlannerMode::Cost => self
                .cost
                .choose(db, version, &plan, gen.as_ref(), &stats, || {
                    (plan_hists, hit_rate)
                }),
        };
        Ok(ExplainPayload {
            db: db.to_string(),
            version,
            mode: self.planner,
            chosen,
            candidates: candidates.to_vec(),
            stats,
        })
    }

    /// Registers a continuous query on a streaming session. Validation
    /// mirrors [`answer`](Self::answer) — the database must exist, the
    /// generator and ε/δ must be serveable — and the per-connection
    /// subscription ceiling is enforced before anything registers. The
    /// query is resolved to its source text at subscribe time, so later
    /// prepared-registry churn cannot retarget a live subscription.
    /// Returns the shard-unique subscription id.
    #[allow(clippy::too_many_arguments)]
    pub fn subscribe(
        &self,
        session: &PushSession,
        db: &str,
        query_ref: &QueryRef,
        generator: &str,
        eps: f64,
        delta: f64,
        seed: u64,
        plan: Option<PlanKind>,
        window: u64,
    ) -> Result<u64, EngineError> {
        if eps <= 0.0 || eps >= 1.0 || delta <= 0.0 || delta >= 1.0 {
            return Err(EngineError::BadRequest(
                "eps and delta must lie in (0,1)".into(),
            ));
        }
        let walks = sample_size(eps, delta);
        if walks > self.max_walks {
            return Err(EngineError::BadRequest(format!(
                "eps/delta require {walks} walks, above the engine limit of {}",
                self.max_walks
            )));
        }
        generator_by_name(generator)?;
        let prepared = match query_ref {
            QueryRef::Text(text) => {
                let known = self.prepared.read().lookup_text(text);
                match known {
                    Some(p) => p,
                    None => self.prepare(text)?,
                }
            }
            QueryRef::Prepared(id) => self.prepared.read().get(id)?,
        };
        self.catalog.read().info(db)?;
        if !session.try_add_sub(self.max_subs) {
            return Err(subscribe::subscribe_limit_error(self.max_subs));
        }
        let id = self.subs.next_id();
        self.subs.insert(Arc::new(Subscription {
            id,
            db: db.to_string(),
            query_text: prepared.text.clone(),
            relations: subscribe::query_relations(&prepared.query),
            generator: generator.to_string(),
            eps,
            delta,
            seed,
            plan,
            window,
            pending: AtomicU64::new(0),
            session: session.clone(),
        }));
        // Session teardown (disconnect, or the server loop closing the
        // channel) reaps the registration; idempotent alongside an
        // explicit unsubscribe or a database drop.
        let shard = self.self_ref.clone();
        session.on_close(move || {
            if let Some(shard) = shard.upgrade() {
                shard.subs.remove(id);
            }
        });
        Ok(id)
    }

    /// Cancels a subscription. The id must name a live subscription on
    /// `db` owned by `session` — ids are not guessable across sessions.
    pub fn unsubscribe(
        &self,
        session: &PushSession,
        db: &str,
        sub: u64,
    ) -> Result<(), EngineError> {
        match self
            .subs
            .remove_if(sub, |s| s.db == db && s.session.id() == session.id())
        {
            Some(_) => {
                session.remove_sub();
                Ok(())
            }
            None => Err(subscribe::unknown_subscription(db, sub)),
        }
    }

    /// Fans one effective update out to its affected subscribers: every
    /// live subscription on `db` whose relation footprint intersects the
    /// delta's touched components is re-estimated **at the new version**
    /// (through the regular answer path, so identical subscriptions
    /// coalesce on the cache) and pushed an `"event":"estimate"` frame.
    /// An empty touched set — a clean-region-only update — returns
    /// before sampling anything: repairs agree on the clean region, so
    /// no subscriber's tally can have moved.
    fn notify_update(&self, db: &str, touched: &[String]) {
        if touched.is_empty() || self.subs.is_empty() {
            return;
        }
        for sub in self.subs.affected(db, touched) {
            if !sub.window_admits() {
                continue;
            }
            if sub.session.is_closed() {
                self.subs.remove(sub.id);
                continue;
            }
            let t0 = Instant::now();
            let payload = match self.answer(
                db,
                &QueryRef::Text(sub.query_text.clone()),
                &sub.generator,
                sub.eps,
                sub.delta,
                sub.seed,
                sub.plan,
            ) {
                Ok(payload) => payload,
                // Transient (e.g. the shard is at its sampling-admission
                // ceiling): skip this push rather than wedge the update.
                Err(_) => continue,
            };
            let frame = subscribe::estimate_frame(db, sub.id, &payload);
            match sub.session.push(frame) {
                PushOutcome::Delivered => {}
                PushOutcome::Shed => self.metrics.record_shed(),
                PushOutcome::Closed => {
                    self.subs.remove(sub.id);
                    continue;
                }
            }
            self.metrics.record_push(t0.elapsed());
        }
    }

    /// Journals the current feedback image — learned estimates plus the
    /// hottest cache keys — as one full-state record. Best-effort: a
    /// failing journal costs recovered learning, never a served answer.
    fn journal_feedback(&self) {
        let estimates = self
            .cost
            .export()
            .into_iter()
            .map(|(db, estimates)| PlanFeedback { db, estimates })
            .collect();
        let hot_keys = self
            .cache
            .lock()
            .hot_keys(MAX_HOT_KEYS)
            .into_iter()
            .map(|k| HotKey {
                db: k.db,
                version: k.version,
                query: k.query,
                generator: k.generator,
                plan: k.plan,
                eps_bits: k.eps_bits,
                delta_bits: k.delta_bits,
                seed: k.seed,
            })
            .collect();
        let image = FeedbackImage {
            estimates,
            hot_keys,
        };
        let _ = self.backend.journal_feedback(&image);
    }

    /// Lazily replays the recovered hot keys of `db` on its first touch
    /// after a restart: the staged keys are removed under the lock (so
    /// exactly one request triggers the replay) and re-answered on a
    /// detached thread with their recorded plan as an explicit override,
    /// re-filling the cache entries clients ask for first. Keys whose
    /// database has since moved past the recorded version are skipped;
    /// replay errors are ignored (pre-warming is opportunistic).
    fn trigger_prewarm(&self, db: &str) {
        if !self.has_warm.load(Ordering::Relaxed) {
            return;
        }
        let keys = {
            let mut warm = self.warm.lock();
            let keys = warm.remove(db);
            if warm.is_empty() {
                self.has_warm.store(false, Ordering::Relaxed);
            }
            keys
        };
        let Some(keys) = keys else { return };
        let Some(engine) = self.self_ref.upgrade() else {
            return;
        };
        let _ = std::thread::Builder::new()
            .name("ocqa-prewarm".into())
            .spawn(move || {
                for k in keys {
                    let current = engine.catalog.read().info(&k.db).map(|i| i.version);
                    if current != Ok(k.version) {
                        continue;
                    }
                    let _ = engine.answer(
                        &k.db,
                        &QueryRef::Text(k.query.clone()),
                        &k.generator,
                        f64::from_bits(k.eps_bits),
                        f64::from_bits(k.delta_bits),
                        k.seed,
                        Some(k.plan),
                    );
                }
            });
    }

    /// Stores a computed answer, returning the post-insert cache stats.
    /// The insert is version-checked: if an update (or drop) invalidated
    /// this database while the request was sampling, the cache drops the
    /// entry instead of re-inserting a dead version.
    pub(crate) fn store_answer(&self, key: CacheKey, tally: Arc<SampleTally>) -> CacheStats {
        let mut cache = self.cache.lock();
        cache.insert(key, tally);
        cache.stats()
    }

    fn payload(
        &self,
        tally: &SampleTally,
        cached: bool,
        coalesced: bool,
        version: u64,
        stats: CacheStats,
        plan: PlanKind,
    ) -> AnswerPayload {
        // Raw and conditional estimates zip positionally: both iterate
        // the same count map. `conditional_frequencies` is None only when
        // every walk failed, in which case there are no rows at all.
        let conditional = tally.conditional_frequencies().unwrap_or_default();
        let answers = tally
            .frequencies()
            .into_iter()
            .zip(conditional)
            .map(|((tuple, p), (_, p_cond))| AnswerRow { tuple, p, p_cond })
            .collect();
        AnswerPayload {
            answers,
            walks: tally.walks,
            failed_walks: tally.failed_walks,
            cached,
            coalesced,
            db_version: version,
            plan,
            cache: stats,
        }
    }

    /// Info for every database on this shard, sorted by name.
    pub fn list(&self) -> Vec<DatabaseInfo> {
        self.catalog.read().list()
    }

    /// This shard's serving counters.
    pub fn stats(&self) -> ShardStats {
        ShardStats {
            answers: self.answers.load(Ordering::Relaxed),
            walks: self.walks.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            databases: self.catalog.read().len(),
            prepared: self.prepared.read().len(),
            workers: self.pool.workers(),
            subscriptions: self.subs.len(),
            cache: self.cache.lock().stats(),
        }
    }

    #[cfg(test)]
    pub(crate) fn catalog(&self) -> &RwLock<Catalog> {
        &self.catalog
    }

    #[cfg(test)]
    pub(crate) fn pool(&self) -> &SamplerPool {
        &self.pool
    }

    #[cfg(test)]
    pub(crate) fn cache_len(&self) -> usize {
        self.cache.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemoryBackend;

    fn shard() -> Arc<ShardEngine> {
        ShardEngine::with_backend(
            EngineConfig {
                workers: 2,
                cache_capacity: 64,
                ..EngineConfig::default()
            },
            Arc::new(MemoryBackend),
            3,
        )
        .unwrap()
    }

    #[test]
    fn stale_answer_insert_after_update_is_dropped() {
        // The in-flight race, deterministically interleaved: a slow
        // answer snapshots version v1, an update purges and floors the
        // cache while it samples, then its insert lands through the same
        // `store_answer` path the real request path uses. The dead entry
        // must be dropped, not parked in an LRU slot.
        let e = shard();
        e.create(
            "prefs",
            "Pref(a,b). Pref(a,c). Pref(a,d). Pref(b,a). Pref(b,d). Pref(c,a).",
            "Pref(x,y), Pref(y,x) -> false.",
        )
        .unwrap();
        let (_ctx, v1, plan) = e.catalog().read().snapshot("prefs").unwrap();
        // The "slow sampler" finishes its work against the v1 snapshot…
        let gen = generator_by_name("uniform").unwrap();
        let task = plan.task(PlanKind::Localized, gen).unwrap();
        let query =
            Arc::new(ocqa_logic::parser::parse_query("(x) <- exists y: Pref(x,y)").unwrap());
        let tally = Arc::new(e.pool().run(&task, &query, 64, 3).unwrap());
        // …but an update lands first, bumping the version and flooring
        // the cache.
        e.update("prefs", "", "Pref(c,a).").unwrap();
        // The late insert must be dropped.
        let key = CacheKey {
            db: "prefs".into(),
            version: v1,
            query: "(x) <- exists y: Pref(x,y)".into(),
            generator: "uniform".into(),
            plan: PlanKind::Localized,
            eps_bits: 0.1f64.to_bits(),
            delta_bits: 0.1f64.to_bits(),
            seed: 3,
        };
        let stats = e.store_answer(key, tally);
        assert_eq!(stats.stale_drops, 1);
        assert_eq!(e.cache_len(), 0, "no dead entry may occupy a slot");
        // Answers against the current version cache normally again.
        let a = e
            .answer(
                "prefs",
                &QueryRef::Text("(x) <- exists y: Pref(x,y)".into()),
                "uniform",
                0.1,
                0.1,
                3,
                None,
            )
            .unwrap();
        assert!(!a.cached);
        assert_eq!(e.cache_len(), 1);
    }

    #[test]
    fn full_shard_rejects_samplers_but_serves_coalescers() {
        use crate::singleflight::Join;

        // max_inflight 1, and the only slot is held (a leader is
        // sampling some other key).
        let e = ShardEngine::with_backend(
            EngineConfig {
                workers: 2,
                cache_capacity: 64,
                max_inflight: 1,
                ..EngineConfig::default()
            },
            Arc::new(MemoryBackend),
            2,
        )
        .unwrap();
        e.create(
            "kv",
            "R(1,10). R(1,20). R(2,30).",
            "R(x,y), R(x,z) -> y = z.",
        )
        .unwrap();
        let occupied = Slot::reserve(&e.inflight, e.max_inflight).expect("slot free");

        // A request that would need to sample is rejected — and, the new
        // contract, without ever creating a flight for others to join.
        let err = e
            .answer(
                "kv",
                &QueryRef::Text("(y) <- exists x: R(x,y)".into()),
                "uniform",
                0.1,
                0.1,
                1,
                None,
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::ShardFull(2)), "{err}");
        assert!(e.flights.is_empty(), "rejection must not create a flight");

        // A request that can coalesce onto an admitted in-flight run is
        // served even though the shard is full: stand up a live flight
        // for the exact key the request computes, let the request join
        // it, and publish the leader's tally.
        let (_ctx, version, plan) = e.catalog().read().snapshot("kv").unwrap();
        let gen = generator_by_name("uniform").unwrap();
        let route = plan.route(gen.as_ref(), None).unwrap();
        let query_text = "(x) <- exists y: R(x,y)";
        let key = CacheKey {
            db: "kv".into(),
            version,
            query: query_text.into(),
            generator: "uniform".into(),
            plan: route,
            eps_bits: 0.1f64.to_bits(),
            delta_bits: 0.1f64.to_bits(),
            seed: 7,
        };
        let Join::Leader(token) = e.flights.join(&key) else {
            panic!("fresh key must lead");
        };
        let follower = {
            let e = e.clone();
            std::thread::spawn(move || {
                e.answer(
                    "kv",
                    &QueryRef::Text(query_text.into()),
                    "uniform",
                    0.1,
                    0.1,
                    7,
                    None,
                )
            })
        };
        // Give the follower time to block on the flight, then publish —
        // cache first, flight second, mirroring the leader path, so a
        // late-arriving follower hits the cache instead of resampling.
        std::thread::sleep(Duration::from_millis(100));
        let task = plan.task(route, gen).unwrap();
        let query = Arc::new(ocqa_logic::parser::parse_query(query_text).unwrap());
        let tally = Arc::new(e.pool().run(&task, &query, 150, 7).unwrap());
        e.store_answer(key, tally.clone());
        token.complete(Ok(tally));
        let payload = follower
            .join()
            .unwrap()
            .expect("a coalescing request must be served by a full shard");
        assert!(
            payload.coalesced || payload.cached,
            "must share the flight or its cached result"
        );
        assert_eq!(payload.walks, 150);
        let s = e.stats();
        assert_eq!(s.walks, 0, "the shard itself never sampled");
        drop(occupied);
    }

    #[test]
    fn follower_rejoins_after_a_shard_full_flight() {
        use crate::singleflight::Join;

        // The regression scenario: a flight resolves to ShardFull (what
        // a pre-admission-reordering leader published when it was
        // rejected). A follower must re-join and serve the request
        // itself — one overload rejection may not fan out to N client
        // errors.
        let e = shard();
        e.create("kv", "R(1,10). R(1,20).", "R(x,y), R(x,z) -> y = z.")
            .unwrap();
        let (_ctx, version, plan) = e.catalog().read().snapshot("kv").unwrap();
        let gen = generator_by_name("uniform").unwrap();
        let route = plan.route(gen.as_ref(), None).unwrap();
        let query_text = "(x) <- exists y: R(x,y)";
        let key = CacheKey {
            db: "kv".into(),
            version,
            query: query_text.into(),
            generator: "uniform".into(),
            plan: route,
            eps_bits: 0.1f64.to_bits(),
            delta_bits: 0.1f64.to_bits(),
            seed: 3,
        };
        let Join::Leader(token) = e.flights.join(&key) else {
            panic!("fresh key must lead");
        };
        let follower = {
            let e = e.clone();
            std::thread::spawn(move || {
                e.answer(
                    "kv",
                    &QueryRef::Text(query_text.into()),
                    "uniform",
                    0.1,
                    0.1,
                    3,
                    None,
                )
            })
        };
        std::thread::sleep(Duration::from_millis(100));
        token.complete(Err(EngineError::ShardFull(3)));
        let payload = follower
            .join()
            .unwrap()
            .expect("follower of a rejected leader must re-join, not fail");
        assert!(!payload.cached && !payload.coalesced, "it sampled itself");
        let s = e.stats();
        assert_eq!(s.walks, 150, "the re-joined request ran its own walks");
        assert!(e.flights.is_empty());
    }

    #[test]
    fn pushes_reestimates_only_for_touching_updates() {
        let e = shard();
        e.create("kv", "R(1,10). R(1,20). S(5).", "R(x,y), R(x,z) -> y = z.")
            .unwrap();
        let session = PushSession::new();
        let q = QueryRef::Text("(x) <- exists y: R(x,y)".into());
        let id = e
            .subscribe(&session, "kv", &q, "uniform", 0.1, 0.1, 7, None, 1)
            .unwrap();
        assert_eq!(e.stats().subscriptions, 1);
        // Clean-region append: no push, and — pinned via the walk
        // counter — no resampling either.
        let walks0 = e.stats().walks;
        e.update("kv", "S(6).", "").unwrap();
        assert_eq!(e.stats().walks, walks0, "clean update must not resample");
        // Touching update: one estimate frame at the new version.
        let out = e.update("kv", "R(1,30).", "").unwrap();
        let frame = session.pop_wait().unwrap();
        assert!(frame.contains(r#""event":"estimate""#), "{frame}");
        assert!(
            frame.contains(&format!(r#""db_version":{}"#, out.version)),
            "{frame}"
        );
        assert!(frame.contains(&format!(r#""sub":{id}"#)), "{frame}");
        // The push populated the cache at the new version: a subscriber
        // reacting to the frame with an immediate equal `answer` hits
        // the cache — never a stale tally.
        let a = e.answer("kv", &q, "uniform", 0.1, 0.1, 7, None).unwrap();
        assert!(a.cached);
        assert_eq!(a.db_version, out.version);
        // After unsubscribe, touching updates push nothing.
        e.unsubscribe(&session, "kv", id).unwrap();
        e.update("kv", "R(1,40).", "").unwrap();
        session.close();
        assert_eq!(session.pop_wait(), None, "no frame after unsubscribe");
        assert_eq!(e.stats().subscriptions, 0);
    }

    #[test]
    fn per_session_subscription_limit_is_enforced() {
        let e = ShardEngine::with_backend(
            EngineConfig {
                workers: 1,
                cache_capacity: 8,
                max_subs_per_conn: 2,
                ..EngineConfig::default()
            },
            Arc::new(MemoryBackend),
            0,
        )
        .unwrap();
        e.create("kv", "R(1,10). R(1,20).", "R(x,y), R(x,z) -> y = z.")
            .unwrap();
        let session = PushSession::new();
        let q = QueryRef::Text("(x) <- exists y: R(x,y)".into());
        e.subscribe(&session, "kv", &q, "uniform", 0.1, 0.1, 0, None, 1)
            .unwrap();
        e.subscribe(&session, "kv", &q, "uniform", 0.1, 0.1, 1, None, 1)
            .unwrap();
        let err = e
            .subscribe(&session, "kv", &q, "uniform", 0.1, 0.1, 2, None, 1)
            .unwrap_err();
        assert!(matches!(err, EngineError::BadRequest(_)), "{err}");
        assert!(err.to_string().contains("subscription limit"), "{err}");
        // The rejection must not have leaked a slot.
        assert_eq!(session.sub_count(), 2);
        // Dropping the database pushes closed frames and frees slots.
        e.drop_db("kv").unwrap();
        assert_eq!(session.sub_count(), 0);
        assert_eq!(e.stats().subscriptions, 0);
        let frame = session.pop_wait().unwrap();
        assert!(
            frame.contains(r#""event":"closed""#) && frame.contains(r#""reason":"dropped""#),
            "{frame}"
        );
    }

    #[test]
    fn session_close_reaps_subscriptions() {
        let e = shard();
        e.create("kv", "R(1,10). R(1,20).", "R(x,y), R(x,z) -> y = z.")
            .unwrap();
        let session = PushSession::new();
        e.subscribe(
            &session,
            "kv",
            &QueryRef::Text("(x) <- exists y: R(x,y)".into()),
            "uniform",
            0.1,
            0.1,
            0,
            None,
            1,
        )
        .unwrap();
        assert_eq!(e.stats().subscriptions, 1);
        session.close();
        assert_eq!(e.stats().subscriptions, 0, "disconnect must reap");
    }

    #[test]
    fn shard_full_rejection_keeps_counters_clean() {
        // max_inflight 0: every sampling leader is rejected at admission.
        let e = ShardEngine::with_backend(
            EngineConfig {
                workers: 1,
                cache_capacity: 8,
                max_inflight: 0,
                ..EngineConfig::default()
            },
            Arc::new(MemoryBackend),
            5,
        )
        .unwrap();
        e.create("kv", "R(1,10). R(1,20).", "R(x,y), R(x,z) -> y = z.")
            .unwrap();
        let err = e
            .answer(
                "kv",
                &QueryRef::Text("(x) <- exists y: R(x,y)".into()),
                "uniform",
                0.1,
                0.1,
                0,
                None,
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::ShardFull(5)), "{err}");
        let s = e.stats();
        assert_eq!(
            (s.answers, s.walks, s.coalesced),
            (0, 0, 0),
            "admission rejection must not move success counters"
        );
        assert!(e.flights.is_empty(), "rejected flight must retire");
    }
}
