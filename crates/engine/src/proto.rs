//! The request/response API spoken by `ocqa serve`.
//!
//! One JSON object per line. Every request carries an `"op"`; every
//! response is `{"ok":true,…}` or `{"ok":false,"error":…}`.
//!
//! ```json
//! {"op":"answer","db":"prefs","query":"(x) <- exists y: Pref(x,y)","eps":0.1,"delta":0.1,"seed":7}
//! {"ok":true,"answers":[{"tuple":["a"],"p":0.45,"p_cond":0.45}],"walks":150,"failed_walks":0,"cached":false,"coalesced":false,"db_version":1,"plan":"localized","cache_hits":0,"cache_misses":1,"shard":0}
//! ```
//!
//! The `shard` field (added by the front door) reports which shard
//! served a routed request; `list` entries carry their database's shard.

use crate::cache::CacheStats;
use crate::catalog::{DatabaseInfo, UpdateOutcome};
use crate::error::EngineError;
use crate::json::Json;
use crate::obs::MetricsSnapshot;
use crate::planner::{Candidate, DbStats, PlanKind, PlannerMode};
use ocqa_data::Constant;

/// How an `answer` request names its query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryRef {
    /// Inline query source text.
    Text(String),
    /// A handle returned by `prepare`.
    Prepared(String),
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineRequest {
    /// Liveness check.
    Ping,
    /// Create a named database from fact/constraint text.
    CreateDb {
        /// Catalog name.
        name: String,
        /// Fact-list source text.
        facts: String,
        /// Constraint-list source text.
        constraints: String,
    },
    /// Remove a database.
    DropDb {
        /// Catalog name.
        name: String,
    },
    /// Insert facts into a database.
    Insert {
        /// Catalog name.
        db: String,
        /// Fact-list source text.
        facts: String,
    },
    /// Delete facts from a database.
    Delete {
        /// Catalog name.
        db: String,
        /// Fact-list source text.
        facts: String,
    },
    /// Parse/validate a query once, returning a reusable handle.
    Prepare {
        /// Query source text.
        query: String,
        /// Optional generator name, validated at prepare time (a
        /// pre-flight check for the generator the client intends to
        /// answer with — typos and bad parameters surface here instead
        /// of on the first answer).
        generator: Option<String>,
    },
    /// Look up the query text behind a prepared handle. Served by the
    /// handle authority (shard 0); the multi-process router uses it to
    /// rewrite `prepared` answers into inline text before forwarding
    /// them to other shard servers.
    PreparedGet {
        /// The handle to resolve.
        id: String,
    },
    /// Sample-based operational consistent answers.
    Answer {
        /// Catalog name.
        db: String,
        /// The query (inline or prepared).
        query: QueryRef,
        /// Generator name (`uniform`, `uniform-deletions`, `preference`).
        generator: String,
        /// Additive error bound ε.
        eps: f64,
        /// Confidence parameter δ.
        delta: f64,
        /// Sampling seed.
        seed: u64,
        /// Explicit plan override (`None` = automatic planner routing).
        plan: Option<PlanKind>,
    },
    /// List databases.
    List,
    /// Engine-wide statistics.
    Stats,
    /// Per-shard latency histograms (see [`crate::obs`]).
    Metrics,
    /// The planner's decision for one database × generator: the chosen
    /// plan plus every candidate's cost estimate and feasibility
    /// verdict.
    Explain {
        /// Catalog name.
        db: String,
        /// Generator name (feasibility depends on its capabilities).
        generator: String,
    },
    /// Register a continuous query on this session: the owning shard
    /// pushes an `"event":"estimate"` frame whenever an update touches
    /// the query's conflict components. Only meaningful on a streaming
    /// (socket) session — subscriptions are session-scoped and dropped
    /// on disconnect, never journaled.
    Subscribe {
        /// Catalog name.
        db: String,
        /// The query (inline or prepared).
        query: QueryRef,
        /// Generator name (`uniform`, `uniform-deletions`, `preference`).
        generator: String,
        /// Additive error bound ε for pushed re-estimates.
        eps: f64,
        /// Confidence parameter δ.
        delta: f64,
        /// Sampling seed.
        seed: u64,
        /// Explicit plan override (`None` = automatic planner routing).
        plan: Option<PlanKind>,
        /// Push every `window`-th touching update (1 = every touching
        /// update) — a thinning window for append-heavy feeds.
        window: u64,
    },
    /// Cancel a subscription registered on this session.
    Unsubscribe {
        /// Catalog name.
        db: String,
        /// The subscription id returned by `subscribe`.
        sub: u64,
    },
    /// Export one database's full durable image (facts, constraints,
    /// version, plan, maintained violations) as a checksummed, base64
    /// transfer image — the rebalancer's snapshot-shipping leg (see
    /// [`crate::transfer`]).
    FetchSnapshot {
        /// Catalog name.
        db: String,
    },
    /// Install a database from a transfer image, journaled like a
    /// `create_db` but preserving the image's exact version, plan and
    /// violation set — the receiving leg of a rebalance move. Refused if
    /// the name already exists (move-then-drop: the target never holds
    /// the database yet).
    InstallSnapshot {
        /// Catalog name (must match the image's).
        db: String,
        /// The base64 transfer image from `fetch_snapshot`.
        image: String,
    },
    /// Grow a live router deployment from `n` to `n+1` upstreams,
    /// shipping each re-homed database's snapshot to the new shard.
    /// Router-only: an in-process engine refuses it.
    Rebalance {
        /// The new upstream's `HOST:PORT`.
        add: String,
        /// Optional standby address for the new upstream.
        standby: Option<String>,
    },
}

/// Parses the answer-shaped parameter block shared by `answer` and
/// `subscribe`: query reference, generator, ε/δ, seed and plan pin.
#[allow(clippy::type_complexity)]
fn query_params(
    v: &Json,
    op: &str,
) -> Result<(QueryRef, String, f64, f64, u64, Option<PlanKind>), EngineError> {
    let opt_str = |key: &str| v.get(key).and_then(Json::as_str).map(str::to_string);
    let query = match (opt_str("query"), opt_str("prepared")) {
        (Some(text), None) => QueryRef::Text(text),
        (None, Some(id)) => QueryRef::Prepared(id),
        (Some(_), Some(_)) => {
            return Err(EngineError::BadRequest(
                "give either \"query\" or \"prepared\", not both".into(),
            ))
        }
        (None, None) => {
            return Err(EngineError::BadRequest(format!(
                "{op} needs \"query\" text or a \"prepared\" handle"
            )))
        }
    };
    let num = |key: &str, default: f64| -> Result<f64, EngineError> {
        match v.get(key) {
            None => Ok(default),
            Some(j) => j
                .as_f64()
                .ok_or_else(|| EngineError::BadRequest(format!("{key:?} must be a number"))),
        }
    };
    let seed = match v.get("seed") {
        None => 0,
        Some(j) => j.as_u64().ok_or_else(|| {
            EngineError::BadRequest("\"seed\" must be a non-negative integer".into())
        })?,
    };
    let plan = match v.get("plan") {
        None => None,
        Some(j) => {
            let name = j
                .as_str()
                .ok_or_else(|| EngineError::BadRequest("\"plan\" must be a string".into()))?;
            match name {
                "auto" => None,
                _ => Some(PlanKind::parse(name).ok_or_else(|| {
                    EngineError::BadRequest(format!(
                        "unknown plan {name:?} (expected auto, monolithic, \
                         localized or key-repair)"
                    ))
                })?),
            }
        }
    };
    Ok((
        query,
        opt_str("generator").unwrap_or_else(|| "uniform".into()),
        num("eps", 0.1)?,
        num("delta", 0.1)?,
        seed,
        plan,
    ))
}

impl EngineRequest {
    /// Parses a request from a JSON object.
    pub fn from_json(v: &Json) -> Result<EngineRequest, EngineError> {
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| EngineError::BadRequest("missing \"op\"".into()))?;
        let str_field = |key: &str| -> Result<String, EngineError> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| EngineError::BadRequest(format!("op {op:?} needs string {key:?}")))
        };
        let opt_str = |key: &str| v.get(key).and_then(Json::as_str).map(str::to_string);
        match op {
            "ping" => Ok(EngineRequest::Ping),
            "create_db" => Ok(EngineRequest::CreateDb {
                name: str_field("name")?,
                facts: opt_str("facts").unwrap_or_default(),
                constraints: opt_str("constraints").unwrap_or_default(),
            }),
            "drop_db" => Ok(EngineRequest::DropDb {
                name: str_field("name")?,
            }),
            "insert" => Ok(EngineRequest::Insert {
                db: str_field("db")?,
                facts: str_field("facts")?,
            }),
            "delete" => Ok(EngineRequest::Delete {
                db: str_field("db")?,
                facts: str_field("facts")?,
            }),
            "prepare" => Ok(EngineRequest::Prepare {
                query: str_field("query")?,
                generator: opt_str("generator"),
            }),
            "prepared_get" => Ok(EngineRequest::PreparedGet {
                id: str_field("id")?,
            }),
            "answer" => {
                let (query, generator, eps, delta, seed, plan) = query_params(v, op)?;
                Ok(EngineRequest::Answer {
                    db: str_field("db")?,
                    query,
                    generator,
                    eps,
                    delta,
                    seed,
                    plan,
                })
            }
            "subscribe" => {
                let (query, generator, eps, delta, seed, plan) = query_params(v, op)?;
                let window = match v.get("window") {
                    None => 1,
                    Some(j) => {
                        let w = j.as_u64().ok_or_else(|| {
                            EngineError::BadRequest("\"window\" must be a positive integer".into())
                        })?;
                        if w == 0 {
                            return Err(EngineError::BadRequest(
                                "\"window\" must be a positive integer".into(),
                            ));
                        }
                        w
                    }
                };
                Ok(EngineRequest::Subscribe {
                    db: str_field("db")?,
                    query,
                    generator,
                    eps,
                    delta,
                    seed,
                    plan,
                    window,
                })
            }
            "unsubscribe" => Ok(EngineRequest::Unsubscribe {
                db: str_field("db")?,
                sub: v.get("sub").and_then(Json::as_u64).ok_or_else(|| {
                    EngineError::BadRequest("unsubscribe needs a numeric \"sub\" id".into())
                })?,
            }),
            "list" => Ok(EngineRequest::List),
            "stats" => Ok(EngineRequest::Stats),
            "metrics" => Ok(EngineRequest::Metrics),
            "fetch_snapshot" => Ok(EngineRequest::FetchSnapshot {
                db: str_field("db")?,
            }),
            "install_snapshot" => Ok(EngineRequest::InstallSnapshot {
                db: str_field("db")?,
                image: str_field("image")?,
            }),
            "rebalance" => Ok(EngineRequest::Rebalance {
                add: str_field("add")?,
                standby: opt_str("standby"),
            }),
            "explain" => Ok(EngineRequest::Explain {
                db: str_field("db")?,
                generator: opt_str("generator").unwrap_or_else(|| "uniform".into()),
            }),
            other => Err(EngineError::BadRequest(format!("unknown op {other:?}"))),
        }
    }

    /// The wire name of this request's op (what trace events report).
    pub fn op_name(&self) -> &'static str {
        match self {
            EngineRequest::Ping => "ping",
            EngineRequest::CreateDb { .. } => "create_db",
            EngineRequest::DropDb { .. } => "drop_db",
            EngineRequest::Insert { .. } => "insert",
            EngineRequest::Delete { .. } => "delete",
            EngineRequest::Prepare { .. } => "prepare",
            EngineRequest::PreparedGet { .. } => "prepared_get",
            EngineRequest::Answer { .. } => "answer",
            EngineRequest::List => "list",
            EngineRequest::Stats => "stats",
            EngineRequest::Metrics => "metrics",
            EngineRequest::Explain { .. } => "explain",
            EngineRequest::Subscribe { .. } => "subscribe",
            EngineRequest::Unsubscribe { .. } => "unsubscribe",
            EngineRequest::FetchSnapshot { .. } => "fetch_snapshot",
            EngineRequest::InstallSnapshot { .. } => "install_snapshot",
            EngineRequest::Rebalance { .. } => "rebalance",
        }
    }
}

/// One estimated answer tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerRow {
    /// The answer tuple.
    pub tuple: Vec<Constant>,
    /// Hit frequency over **all** walks — for failing chains this
    /// estimates the *numerator* of `CP` (the probability of reaching a
    /// repair satisfying the query), not `CP` itself.
    pub p: f64,
    /// Hit frequency over the **successful** walks only — the §6 ratio
    /// estimator of the conditional probability `CP`. Equals `p` whenever
    /// `failed_walks` is 0 (every non-failing generator).
    pub p_cond: f64,
}

/// The payload of a successful `answer`.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerPayload {
    /// Estimated answers, in canonical tuple order.
    pub answers: Vec<AnswerRow>,
    /// Walks performed (the Hoeffding budget for ε/δ).
    pub walks: u64,
    /// Walks ending in failing sequences.
    pub failed_walks: u64,
    /// Whether this response came from the answer cache.
    pub cached: bool,
    /// Whether this response was coalesced onto another request's
    /// in-flight sampling run (the single-flight follower path): the
    /// estimates are shared with — and bit-identical to — that leader's.
    pub coalesced: bool,
    /// Version of the database the answer was computed against.
    pub db_version: u64,
    /// The plan that served this answer.
    pub plan: PlanKind,
    /// Cache counters after this request (the observable hit signal).
    pub cache: CacheStats,
}

/// Engine-wide statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStatsPayload {
    /// Storage backend label (`"memory"`, `"disk"`, …). Owned, because
    /// the multi-process router learns it from an upstream's response
    /// rather than a compiled-in backend.
    pub backend: String,
    /// Requests handled (any op).
    pub requests: u64,
    /// `answer` requests served (computed, cached or coalesced), summed
    /// across shards.
    pub answers: u64,
    /// Sample walks executed by the pools (cache hits and coalesced
    /// followers excluded), summed across shards.
    pub walks: u64,
    /// Answers served by joining another request's in-flight sampling
    /// run (single-flight), summed across shards.
    pub coalesced: u64,
    /// Worker threads across all sampler pools.
    pub workers: usize,
    /// Databases across all shard catalogs.
    pub databases: usize,
    /// Prepared queries registered across all shard registries.
    pub prepared: usize,
    /// Number of shards behind the front door.
    pub shards: usize,
    /// Live subscriptions registered across all shards. Each shard
    /// reports its own registry size; the multi-process router sums its
    /// upstreams' values exactly once and adds nothing of its own.
    pub subscriptions: u64,
    /// Answer-cache counters, summed across shards.
    pub cache: CacheStats,
    /// Milliseconds since this front door started serving.
    pub uptime_ms: u64,
    /// The serving binary's crate version (`CARGO_PKG_VERSION`).
    pub build: String,
    /// Mutations acknowledged but **not** confirmed on the attached
    /// standby (`0` when healthy or unreplicated). The router sums its
    /// upstreams' values; its background probe also records the
    /// per-upstream value, which gates failover — promoting a standby
    /// that missed acked writes would lose them.
    pub replication_lag: u64,
}

/// The payload of a `metrics` response: every shard's latency-histogram
/// snapshot plus their bucket-wise merge. The route proxy reconstructs
/// this exact payload from its upstreams' responses, so both deployments
/// render `metrics` through this one type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsPayload {
    /// Per-shard snapshots, indexed by shard id.
    pub per_shard: Vec<MetricsSnapshot>,
    /// The serving topology's epoch (`ocqa_topology_epoch`). Both
    /// deployments start at 1, so a router over fresh upstreams and an
    /// in-process engine render `metrics` byte-identically until the
    /// first rebalance or failover bumps it.
    pub topology_epoch: u64,
    /// Databases moved by `rebalance` since this router started
    /// (`ocqa_rebalance_moves_total`; always 0 in-process).
    pub rebalance_moves: u64,
    /// Mutations acknowledged but **not** confirmed on a standby —
    /// non-zero only after a standby detached mid-stream
    /// (`ocqa_replication_lag_records`; summed across upstreams by the
    /// router).
    pub replication_lag: u64,
}

/// The payload of an `explain` response: the planner's decision for one
/// database × generator, with the per-candidate evidence. Every field is
/// an integer or a label — no wall-clock values — so two shards holding
/// identical state (e.g. a fresh `ocqa route` upstream and an in-process
/// shard) render `explain` byte-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainPayload {
    /// Catalog name.
    pub db: String,
    /// The database version the decision applies to.
    pub version: u64,
    /// The shard's planner mode (`off`, `static`, `cost`).
    pub mode: PlannerMode,
    /// The plan an automatic answer serves right now.
    pub chosen: PlanKind,
    /// Every plan's verdict, in registry order (key-repair, localized,
    /// monolithic).
    pub candidates: Vec<Candidate>,
    /// The catalog-maintained statistics the prior costs derive from.
    pub stats: DbStats,
}

/// A server response, renderable as one JSON line.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineResponse {
    /// `ping` reply.
    Pong,
    /// `create_db` reply.
    Created(DatabaseInfo),
    /// `drop_db` reply.
    Dropped {
        /// The dropped name.
        name: String,
    },
    /// `insert`/`delete` reply.
    Updated(UpdateOutcome),
    /// `prepare` reply.
    Prepared {
        /// The reusable handle.
        id: String,
    },
    /// `prepared_get` reply.
    PreparedText {
        /// The resolved handle.
        id: String,
        /// The handle's original query source text.
        query: String,
    },
    /// `answer` reply.
    Answer(AnswerPayload),
    /// `list` reply.
    List(Vec<DatabaseInfo>),
    /// `stats` reply.
    Stats(EngineStatsPayload),
    /// `metrics` reply.
    Metrics(MetricsPayload),
    /// `explain` reply.
    Explain(ExplainPayload),
    /// `subscribe` reply.
    Subscribed {
        /// Catalog name.
        db: String,
        /// The subscription id, unique within the owning shard. Pushed
        /// frames echo it so a session with several subscriptions can
        /// attribute each estimate.
        sub: u64,
    },
    /// `unsubscribe` reply.
    Unsubscribed {
        /// Catalog name.
        db: String,
        /// The cancelled subscription id.
        sub: u64,
    },
    /// `fetch_snapshot` reply: the database's transfer image.
    Snapshot {
        /// Catalog name.
        db: String,
        /// The exported version.
        version: u64,
        /// The base64 transfer image (see [`crate::transfer`]).
        image: String,
    },
    /// `rebalance` reply.
    Rebalanced {
        /// The topology epoch after the grow committed.
        epoch: u64,
        /// Member shards after the grow.
        shards: usize,
        /// Databases moved to the new shard, sorted.
        moved: Vec<String>,
    },
    /// Any failure.
    Error(EngineError),
}

fn constant_json(c: &Constant) -> Json {
    match c {
        // Exact: database constants can be any i64, beyond f64's 2⁵³.
        Constant::Int(v) => Json::Int(*v),
        Constant::Sym(s) => Json::Str(s.as_str().to_string()),
    }
}

/// Renders answer rows as the wire-format `"answers"` array. Shared by
/// the `answer` response and the pushed `"event":"estimate"` frames so
/// both serialize tuples identically.
pub(crate) fn answer_rows_json(rows: &[AnswerRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|row| {
                Json::obj([
                    (
                        "tuple",
                        Json::Arr(row.tuple.iter().map(constant_json).collect()),
                    ),
                    ("p", Json::Num(row.p)),
                    ("p_cond", Json::Num(row.p_cond)),
                ])
            })
            .collect(),
    )
}

fn info_json(info: &DatabaseInfo) -> Json {
    Json::obj([
        ("name", Json::from(info.name.clone())),
        ("version", Json::from(info.version)),
        ("facts", Json::from(info.facts as u64)),
        ("violations", Json::from(info.violations as u64)),
        ("plan", Json::from(info.plan.as_str().to_string())),
    ])
}

impl EngineResponse {
    /// Renders the response as a JSON value.
    pub fn to_json(&self) -> Json {
        match self {
            EngineResponse::Pong => Json::obj([("ok", true.into()), ("pong", true.into())]),
            EngineResponse::Created(info) => {
                let mut o = info_json(info);
                if let Json::Obj(m) = &mut o {
                    m.insert("ok".into(), true.into());
                }
                o
            }
            EngineResponse::Dropped { name } => {
                Json::obj([("ok", true.into()), ("dropped", Json::from(name.clone()))])
            }
            EngineResponse::Updated(out) => Json::obj([
                ("ok", true.into()),
                ("inserted", Json::from(out.inserted as u64)),
                ("removed", Json::from(out.removed as u64)),
                ("version", Json::from(out.version)),
                ("violations", Json::from(out.violations as u64)),
            ]),
            EngineResponse::Prepared { id } => {
                Json::obj([("ok", true.into()), ("id", Json::from(id.clone()))])
            }
            EngineResponse::PreparedText { id, query } => Json::obj([
                ("ok", true.into()),
                ("id", Json::from(id.clone())),
                ("query", Json::from(query.clone())),
            ]),
            EngineResponse::Answer(a) => Json::obj([
                ("ok", true.into()),
                ("answers", answer_rows_json(&a.answers)),
                ("walks", Json::from(a.walks)),
                ("failed_walks", Json::from(a.failed_walks)),
                ("cached", Json::from(a.cached)),
                ("coalesced", Json::from(a.coalesced)),
                ("db_version", Json::from(a.db_version)),
                ("plan", Json::from(a.plan.as_str().to_string())),
                ("cache_hits", Json::from(a.cache.hits)),
                ("cache_misses", Json::from(a.cache.misses)),
            ]),
            EngineResponse::List(infos) => Json::obj([
                ("ok", true.into()),
                (
                    "databases",
                    Json::Arr(infos.iter().map(info_json).collect()),
                ),
            ]),
            EngineResponse::Stats(s) => Json::obj([
                ("ok", true.into()),
                ("backend", Json::from(s.backend.clone())),
                ("requests", Json::from(s.requests)),
                ("answers", Json::from(s.answers)),
                ("walks", Json::from(s.walks)),
                ("coalesced", Json::from(s.coalesced)),
                ("workers", Json::from(s.workers as u64)),
                ("databases", Json::from(s.databases as u64)),
                ("prepared", Json::from(s.prepared as u64)),
                ("shards", Json::from(s.shards as u64)),
                ("subscriptions", Json::from(s.subscriptions)),
                ("cache_hits", Json::from(s.cache.hits)),
                ("cache_misses", Json::from(s.cache.misses)),
                ("cache_dominated_hits", Json::from(s.cache.dominated_hits)),
                ("cache_invalidated", Json::from(s.cache.invalidated)),
                ("cache_evicted", Json::from(s.cache.evicted)),
                ("cache_stale_drops", Json::from(s.cache.stale_drops)),
                ("cache_expired", Json::from(s.cache.expired)),
                ("uptime_ms", Json::from(s.uptime_ms)),
                ("build", Json::from(s.build.clone())),
                ("replication_lag", Json::from(s.replication_lag)),
            ]),
            EngineResponse::Metrics(m) => {
                let mut total = MetricsSnapshot::default();
                let per_shard = m
                    .per_shard
                    .iter()
                    .enumerate()
                    .map(|(k, snap)| {
                        total.merge(snap);
                        let mut o = snap.to_json();
                        o.set("shard", Json::from(k as u64));
                        o
                    })
                    .collect();
                Json::obj([
                    ("ok", true.into()),
                    ("shards", Json::from(m.per_shard.len() as u64)),
                    ("per_shard", Json::Arr(per_shard)),
                    ("rebalance_moves", Json::from(m.rebalance_moves)),
                    ("replication_lag", Json::from(m.replication_lag)),
                    ("topology_epoch", Json::from(m.topology_epoch)),
                    ("total", total.to_json()),
                ])
            }
            EngineResponse::Explain(x) => Json::obj([
                ("ok", true.into()),
                ("db", Json::from(x.db.clone())),
                ("db_version", Json::from(x.version)),
                ("mode", Json::from(x.mode.as_str())),
                ("chosen", Json::from(x.chosen.as_str())),
                (
                    "candidates",
                    Json::Arr(
                        x.candidates
                            .iter()
                            .map(|c| {
                                Json::obj([
                                    ("plan", Json::from(c.plan.as_str())),
                                    ("feasible", Json::from(c.feasible)),
                                    ("gate", c.gate.map(Json::from).unwrap_or(Json::Null)),
                                    ("cost", Json::from(c.cost)),
                                    ("source", Json::from(c.source.as_str())),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "stats",
                    Json::obj([
                        ("facts", Json::from(x.stats.facts)),
                        ("conflict_facts", Json::from(x.stats.conflict_facts)),
                        ("clean_facts", Json::from(x.stats.clean_facts)),
                        ("components", Json::from(x.stats.components)),
                        ("largest_component", Json::from(x.stats.largest_component)),
                        ("sum_sq_component", Json::from(x.stats.sum_sq_component)),
                        ("p95_component", Json::from(x.stats.p95_component)),
                        ("violations", Json::from(x.stats.violations)),
                    ]),
                ),
            ]),
            EngineResponse::Subscribed { db, sub } => Json::obj([
                ("ok", true.into()),
                ("db", Json::from(db.clone())),
                ("sub", Json::from(*sub)),
            ]),
            EngineResponse::Unsubscribed { db, sub } => Json::obj([
                ("ok", true.into()),
                ("db", Json::from(db.clone())),
                ("sub", Json::from(*sub)),
                ("unsubscribed", true.into()),
            ]),
            EngineResponse::Snapshot { db, version, image } => Json::obj([
                ("ok", true.into()),
                ("db", Json::from(db.clone())),
                ("version", Json::from(*version)),
                ("image", Json::from(image.clone())),
            ]),
            EngineResponse::Rebalanced {
                epoch,
                shards,
                moved,
            } => Json::obj([
                ("ok", true.into()),
                ("epoch", Json::from(*epoch)),
                ("shards", Json::from(*shards as u64)),
                (
                    "moved",
                    Json::Arr(moved.iter().map(|n| Json::from(n.clone())).collect()),
                ),
            ]),
            EngineResponse::Error(e) => {
                let mut o = Json::obj([("ok", false.into()), ("error", Json::from(e.to_string()))]);
                // A rejected plan override additionally names the plan
                // and the feasibility gate as structured fields, so
                // clients need not parse the message.
                if let EngineError::PlanRejected { plan, gate, .. } = e {
                    o.set("plan", Json::from(plan.as_str()));
                    o.set("gate", Json::from(*gate));
                }
                // A topology change is retryable: the structured fields
                // carry the current epoch so clients re-resolve without
                // parsing the message.
                if let EngineError::StaleTopology { epoch, .. } = e {
                    o.set("retry", Json::from(true));
                    o.set("epoch", Json::from(*epoch));
                }
                o
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn parses_answer_with_defaults() {
        let v = json::parse(r#"{"op":"answer","db":"d","query":"(x) <- R(x)"}"#).unwrap();
        let req = EngineRequest::from_json(&v).unwrap();
        assert_eq!(
            req,
            EngineRequest::Answer {
                db: "d".into(),
                query: QueryRef::Text("(x) <- R(x)".into()),
                generator: "uniform".into(),
                eps: 0.1,
                delta: 0.1,
                seed: 0,
                plan: None,
            }
        );
    }

    #[test]
    fn parses_plan_override() {
        let v =
            json::parse(r#"{"op":"answer","db":"d","query":"(x) <- R(x)","plan":"key-repair"}"#)
                .unwrap();
        let EngineRequest::Answer { plan, .. } = EngineRequest::from_json(&v).unwrap() else {
            panic!("expected answer request");
        };
        assert_eq!(plan, Some(PlanKind::KeyRepair));
        // "auto" and absence both mean planner routing.
        let v =
            json::parse(r#"{"op":"answer","db":"d","query":"(x) <- R(x)","plan":"auto"}"#).unwrap();
        let EngineRequest::Answer { plan, .. } = EngineRequest::from_json(&v).unwrap() else {
            panic!();
        };
        assert_eq!(plan, None);
        // Unknown plans are rejected up front.
        let v = json::parse(r#"{"op":"answer","db":"d","query":"(x) <- R(x)","plan":"turbo"}"#)
            .unwrap();
        assert!(matches!(
            EngineRequest::from_json(&v),
            Err(EngineError::BadRequest(_))
        ));
        // So are non-string plan values: a typed-wrong pin must not be
        // silently downgraded to automatic routing.
        for bad in [r#""plan":5"#, r#""plan":true"#, r#""plan":null"#] {
            let line = format!(r#"{{"op":"answer","db":"d","query":"(x) <- R(x)",{bad}}}"#);
            let v = json::parse(&line).unwrap();
            assert!(
                matches!(
                    EngineRequest::from_json(&v),
                    Err(EngineError::BadRequest(_))
                ),
                "{bad} must be rejected"
            );
        }
    }

    #[test]
    fn parses_prepare_with_optional_generator() {
        let v = json::parse(r#"{"op":"prepare","query":"(x) <- R(x)"}"#).unwrap();
        assert_eq!(
            EngineRequest::from_json(&v).unwrap(),
            EngineRequest::Prepare {
                query: "(x) <- R(x)".into(),
                generator: None,
            }
        );
        let v =
            json::parse(r#"{"op":"prepare","query":"(x) <- R(x)","generator":"trust"}"#).unwrap();
        assert_eq!(
            EngineRequest::from_json(&v).unwrap(),
            EngineRequest::Prepare {
                query: "(x) <- R(x)".into(),
                generator: Some("trust".into()),
            }
        );
    }

    #[test]
    fn parses_subscribe_with_defaults_and_window() {
        let v = json::parse(r#"{"op":"subscribe","db":"d","query":"(x) <- R(x)"}"#).unwrap();
        assert_eq!(
            EngineRequest::from_json(&v).unwrap(),
            EngineRequest::Subscribe {
                db: "d".into(),
                query: QueryRef::Text("(x) <- R(x)".into()),
                generator: "uniform".into(),
                eps: 0.1,
                delta: 0.1,
                seed: 0,
                plan: None,
                window: 1,
            }
        );
        let v = json::parse(r#"{"op":"subscribe","db":"d","prepared":"q1","window":3}"#).unwrap();
        let EngineRequest::Subscribe { query, window, .. } = EngineRequest::from_json(&v).unwrap()
        else {
            panic!("expected subscribe request");
        };
        assert_eq!(query, QueryRef::Prepared("q1".into()));
        assert_eq!(window, 3);
        // A zero window would suppress every push; reject it up front.
        let v =
            json::parse(r#"{"op":"subscribe","db":"d","query":"(x) <- R(x)","window":0}"#).unwrap();
        assert!(matches!(
            EngineRequest::from_json(&v),
            Err(EngineError::BadRequest(_))
        ));
    }

    #[test]
    fn parses_unsubscribe_and_rejects_missing_sub() {
        let v = json::parse(r#"{"op":"unsubscribe","db":"d","sub":2}"#).unwrap();
        assert_eq!(
            EngineRequest::from_json(&v).unwrap(),
            EngineRequest::Unsubscribe {
                db: "d".into(),
                sub: 2
            }
        );
        let v = json::parse(r#"{"op":"unsubscribe","db":"d"}"#).unwrap();
        assert!(matches!(
            EngineRequest::from_json(&v),
            Err(EngineError::BadRequest(_))
        ));
    }

    #[test]
    fn rejects_ambiguous_query_refs() {
        let v = json::parse(r#"{"op":"answer","db":"d","query":"(x) <- R(x)","prepared":"q1"}"#)
            .unwrap();
        assert!(matches!(
            EngineRequest::from_json(&v),
            Err(EngineError::BadRequest(_))
        ));
        let v = json::parse(r#"{"op":"answer","db":"d"}"#).unwrap();
        assert!(EngineRequest::from_json(&v).is_err());
    }

    #[test]
    fn unknown_op_rejected() {
        let v = json::parse(r#"{"op":"explode"}"#).unwrap();
        assert!(matches!(
            EngineRequest::from_json(&v),
            Err(EngineError::BadRequest(_))
        ));
    }

    #[test]
    fn error_response_renders_ok_false() {
        let out = EngineResponse::Error(EngineError::UnknownDatabase("x".into()))
            .to_json()
            .to_string();
        assert!(out.contains("\"ok\":false"), "{out}");
        assert!(out.contains("unknown database"), "{out}");
    }

    #[test]
    fn parses_snapshot_and_rebalance_ops() {
        let v = json::parse(r#"{"op":"fetch_snapshot","db":"kv"}"#).unwrap();
        assert_eq!(
            EngineRequest::from_json(&v).unwrap(),
            EngineRequest::FetchSnapshot { db: "kv".into() }
        );
        let v = json::parse(r#"{"op":"install_snapshot","db":"kv","image":"QUJD"}"#).unwrap();
        assert_eq!(
            EngineRequest::from_json(&v).unwrap(),
            EngineRequest::InstallSnapshot {
                db: "kv".into(),
                image: "QUJD".into(),
            }
        );
        // install_snapshot without an image is rejected up front.
        let v = json::parse(r#"{"op":"install_snapshot","db":"kv"}"#).unwrap();
        assert!(EngineRequest::from_json(&v).is_err());
        let v = json::parse(r#"{"op":"rebalance","add":"127.0.0.1:9","standby":"127.0.0.1:10"}"#)
            .unwrap();
        assert_eq!(
            EngineRequest::from_json(&v).unwrap(),
            EngineRequest::Rebalance {
                add: "127.0.0.1:9".into(),
                standby: Some("127.0.0.1:10".into()),
            }
        );
    }

    #[test]
    fn stale_topology_renders_structured_retry() {
        let out = EngineResponse::Error(EngineError::StaleTopology {
            epoch: 7,
            message: "database \"kv\" is mid-move".into(),
        })
        .to_json()
        .to_string();
        assert!(out.contains("\"ok\":false"), "{out}");
        assert!(out.contains("\"retry\":true"), "{out}");
        assert!(out.contains("\"epoch\":7"), "{out}");
        assert!(out.contains("topology changed"), "{out}");
    }
}
