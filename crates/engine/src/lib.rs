//! `ocqa-engine` — a concurrent, cache-aware serving layer for
//! operational consistent query answering.
//!
//! Theorem 9 of the source paper makes CQA a *servable* workload: the
//! `Sample` random walk approximates operational consistent answers with
//! additive error for **all** FO queries. This crate turns the batch
//! library into a long-lived engine around that result:
//!
//! The request path is an explicit three-stage architecture — **front
//! door → router → shard**. The [`Engine`] front door parses and routes;
//! the [`Router`] deterministically maps each database name to a shard
//! (rendezvous hashing, so resharding moves a minimal set of names); and
//! each [`ShardEngine`] is a self-contained serving engine over its
//! slice of the catalog, with its own cache, pool, prepared registry and
//! storage backend:
//!
//! * [`Catalog`] — named, versioned databases with incremental fact
//!   insert/delete; the violation index `V(D, Σ)` is maintained through
//!   `ocqa_logic::incremental` rather than recomputed per update, and
//!   sampling snapshots reuse it via `RepairContext::with_violations`;
//! * [`PreparedQuery`] / [`PreparedRegistry`] — parse and validate a
//!   query once, reuse the handle across requests;
//! * [`SamplerPool`] — a fixed worker-thread pool that fans each
//!   request's walk budget out as fixed-size chunks with per-chunk seed
//!   derivation, making answers bit-identical for a fixed seed
//!   regardless of pool size;
//! * [`DbPlan`] / [`SampleTask`] — the answer planner: each database is
//!   classified at install time (primary-key-only → group-wise key
//!   repair; denial fragment → per-component localized sampling;
//!   otherwise monolithic chain walks) and every `answer` routes down
//!   the cheapest sound path for its generator, reported back as the
//!   response's `plan` field;
//! * [`AnswerCache`] — an LRU keyed by database version × query ×
//!   generator × ε/δ × seed, invalidated by catalog updates, with an
//!   optional per-entry TTL for time-bounded staleness;
//! * [`SingleFlight`] — answer-path coalescing: N concurrent cache
//!   misses for one fully-qualified key block on a single sampling run
//!   and share its (bit-identical) result;
//! * [`EngineRequest`] / [`EngineResponse`] — the newline-delimited JSON
//!   protocol served by [`serve_stdio`] / [`serve_listener`] (the
//!   `ocqa serve` CLI subcommand);
//! * [`FrontDoor`] / [`RouteProxy`] / [`Upstream`] — the
//!   transport-agnostic front-door core and the multi-process router
//!   built on it (the `ocqa route` CLI subcommand): the same routing,
//!   fan-out and merge logic, proxied over pooled NDJSON/TCP
//!   connections to remote shard servers, with byte-identical responses
//!   to the in-process deployment;
//! * [`obs`] — engine-wide observability: lock-free per-op / per-plan /
//!   per-stage latency histograms reported by the `metrics` protocol op
//!   (and merged bucket-wise through `ocqa route`), `--slow-ms`
//!   structured trace events on stderr, and the `--metrics-addr`
//!   Prometheus exposition listener;
//! * [`subscribe`] — streaming CQA: session-scoped continuous queries
//!   registered by the `subscribe` protocol op; each update diffs the
//!   maintained violation set and pushes `"event":"estimate"` NDJSON
//!   frames only to subscribers whose conflict components the delta
//!   touched, through bounded per-session queues with slow-consumer
//!   shedding, relayed byte-identically by `ocqa route`.
//!
//! ```
//! use ocqa_engine::{Engine, EngineConfig};
//!
//! let engine = Engine::new(EngineConfig {
//!     workers: 2,
//!     cache_capacity: 64,
//!     ..EngineConfig::default()
//! });
//! let out = engine.handle_line(
//!     r#"{"op":"create_db","name":"prefs",
//!         "facts":"Pref(a,b). Pref(b,a).",
//!         "constraints":"Pref(x,y), Pref(y,x) -> false."}"#,
//! );
//! assert!(out.to_string().contains("\"ok\":true"));
//! let out = engine.handle_line(
//!     r#"{"op":"answer","db":"prefs","query":"(x) <- exists y: Pref(x,y)","seed":7}"#,
//! );
//! assert!(out.to_string().contains("\"answers\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod catalog;
mod engine;
mod error;
pub mod frontdoor;
pub mod json;
pub mod obs;
pub mod planner;
pub mod pool;
pub mod prepared;
pub mod proto;
pub mod router;
pub mod server;
pub mod shard;
pub mod singleflight;
pub mod storage;
pub mod subscribe;
pub mod transfer;
pub mod upstream;

pub use cache::{AnswerCache, CacheKey, CacheStats};
pub use catalog::{Catalog, DatabaseInfo, ParsedDatabase, UpdateOutcome};
pub use engine::{generator_by_name, Engine, EngineConfig};
pub use error::EngineError;
pub use frontdoor::{
    parse_request, route_of, FrontDoor, RouteConfig, RouteProxy, RouteTarget, FAILOVER_AFTER,
};
pub use obs::expo::{render_prometheus, spawn_exposition_listener};
pub use obs::{HistSnapshot, Histogram, MetricsSnapshot, ShardMetrics, SlowLog};
pub use planner::{
    classify, feasibility_gate, Candidate, CostModel, CostSource, DbPlan, DbStats, Estimate,
    PlanKind, PlannerMode, SampleTask,
};
pub use pool::{derive_seed, SamplerPool, CHUNK_WALKS};
pub use prepared::{PreparedQuery, PreparedRegistry};
pub use proto::{
    AnswerPayload, AnswerRow, EngineRequest, EngineResponse, ExplainPayload, QueryRef,
};
pub use router::{Router, Topology};
pub use server::{
    handle_connection, serve_listener, serve_listener_with, serve_session, serve_stdio, Frame,
    LineService, MAX_LINE_BYTES,
};
pub use shard::{ShardEngine, ShardStats};
pub use singleflight::SingleFlight;
pub use storage::{
    FeedbackImage, HotKey, InstallImage, MemoryBackend, PlanFeedback, RecoveredState,
    RestoredDatabase, StorageBackend, UpdateDelta,
};
pub use subscribe::{PushOutcome, PushSession, Subscription, SubscriptionRegistry};
pub use transfer::{decode_image, encode_image, TransferImage};
pub use upstream::Upstream;
