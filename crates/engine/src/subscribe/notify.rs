//! Per-session push channels: bounded queues, slow-consumer shedding,
//! and close-time cleanup.
//!
//! A [`PushSession`] is created per streaming connection by the server
//! loop and handed to every request the session issues. Shards push
//! rendered frames into it; a dedicated writer thread drains it onto the
//! socket. The queue is bounded ([`QUEUE_CAP`]): when a consumer falls
//! behind, the **oldest** frame is shed — for estimate streams the
//! newest tally supersedes older ones, so newest-wins is the loss mode
//! that keeps a late reader most current.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Frames a session will buffer before shedding.
pub const QUEUE_CAP: usize = 256;

/// What happened to one pushed frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Queued for delivery.
    Delivered,
    /// Queued, but the oldest buffered frame was shed to make room
    /// (slow consumer).
    Shed,
    /// The session is closed; the frame was discarded.
    Closed,
}

struct SessionState {
    frames: VecDeque<String>,
    closed: bool,
    /// Cleanup closures (shard-side subscription removal) run exactly
    /// once, at close.
    on_close: Vec<Box<dyn FnOnce() + Send>>,
}

struct SessionInner {
    id: u64,
    state: Mutex<SessionState>,
    available: Condvar,
    /// Live subscriptions attached to this session, across all shards
    /// (and, under `ocqa route`, across all upstreams) — the value the
    /// per-connection limit is enforced against.
    subs: AtomicU64,
}

/// One streaming connection's push channel. Cloneable handle; all
/// clones share the queue, the close flag and the subscription count.
#[derive(Clone)]
pub struct PushSession(Arc<SessionInner>);

impl PushSession {
    /// Creates a channel for a new connection.
    pub fn new() -> PushSession {
        static NEXT_ID: AtomicU64 = AtomicU64::new(1);
        PushSession(Arc::new(SessionInner {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            state: Mutex::new(SessionState {
                frames: VecDeque::new(),
                closed: false,
                on_close: Vec::new(),
            }),
            available: Condvar::new(),
            subs: AtomicU64::new(0),
        }))
    }

    /// A process-unique session id (used to key router-side state).
    pub fn id(&self) -> u64 {
        self.0.id
    }

    /// Enqueues one frame for delivery, shedding the oldest buffered
    /// frame if the consumer is [`QUEUE_CAP`] behind.
    pub fn push(&self, frame: String) -> PushOutcome {
        let mut state = self.0.state.lock().unwrap();
        if state.closed {
            return PushOutcome::Closed;
        }
        let shed = if state.frames.len() >= QUEUE_CAP {
            state.frames.pop_front();
            true
        } else {
            false
        };
        state.frames.push_back(frame);
        drop(state);
        self.0.available.notify_one();
        if shed {
            PushOutcome::Shed
        } else {
            PushOutcome::Delivered
        }
    }

    /// Blocks for the next frame; `None` means the session closed and
    /// the queue drained — the writer thread's exit signal.
    pub fn pop_wait(&self) -> Option<String> {
        let mut state = self.0.state.lock().unwrap();
        loop {
            if let Some(frame) = state.frames.pop_front() {
                return Some(frame);
            }
            if state.closed {
                return None;
            }
            state = self.0.available.wait(state).unwrap();
        }
    }

    /// Whether [`close`](Self::close) ran.
    pub fn is_closed(&self) -> bool {
        self.0.state.lock().unwrap().closed
    }

    /// Closes the session: wakes the writer, and runs every registered
    /// cleanup closure exactly once. Idempotent.
    pub fn close(&self) {
        let cleanups = {
            let mut state = self.0.state.lock().unwrap();
            if state.closed {
                return;
            }
            state.closed = true;
            std::mem::take(&mut state.on_close)
        };
        self.0.available.notify_all();
        for f in cleanups {
            f();
        }
    }

    /// Registers cleanup to run at close (immediately if already
    /// closed). Shards use this to drop a disconnected session's
    /// subscriptions.
    pub fn on_close(&self, f: impl FnOnce() + Send + 'static) {
        {
            let mut state = self.0.state.lock().unwrap();
            if !state.closed {
                state.on_close.push(Box::new(f));
                return;
            }
        }
        f();
    }

    /// Claims one subscription slot; `false` when the session already
    /// holds `max` subscriptions.
    pub fn try_add_sub(&self, max: usize) -> bool {
        let mut current = self.0.subs.load(Ordering::Relaxed);
        loop {
            if current >= max as u64 {
                return false;
            }
            match self.0.subs.compare_exchange(
                current,
                current + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => current = seen,
            }
        }
    }

    /// Releases one subscription slot.
    pub fn remove_sub(&self) {
        let _ = self
            .0
            .subs
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1));
    }

    /// Live subscriptions attached to this session.
    pub fn sub_count(&self) -> u64 {
        self.0.subs.load(Ordering::Relaxed)
    }
}

impl Default for PushSession {
    fn default() -> Self {
        PushSession::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_delivers_in_order_until_close() {
        let s = PushSession::new();
        assert_eq!(s.push("a".into()), PushOutcome::Delivered);
        assert_eq!(s.push("b".into()), PushOutcome::Delivered);
        assert_eq!(s.pop_wait().as_deref(), Some("a"));
        assert_eq!(s.pop_wait().as_deref(), Some("b"));
        s.close();
        assert_eq!(s.pop_wait(), None);
        assert_eq!(s.push("c".into()), PushOutcome::Closed);
    }

    #[test]
    fn overflow_sheds_the_oldest_frame() {
        let s = PushSession::new();
        for i in 0..QUEUE_CAP {
            assert_eq!(s.push(format!("{i}")), PushOutcome::Delivered);
        }
        assert_eq!(s.push("newest".into()), PushOutcome::Shed);
        // Frame 0 was shed; frame 1 is now the head.
        assert_eq!(s.pop_wait().as_deref(), Some("1"));
    }

    #[test]
    fn close_runs_cleanups_exactly_once_and_late_registration_fires() {
        let s = PushSession::new();
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        s.on_close(move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        s.close();
        s.close();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        let h = hits.clone();
        s.on_close(move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn subscription_slots_are_bounded() {
        let s = PushSession::new();
        assert!(s.try_add_sub(2));
        assert!(s.try_add_sub(2));
        assert!(!s.try_add_sub(2));
        s.remove_sub();
        assert!(s.try_add_sub(2));
        assert_eq!(s.sub_count(), 2);
        // Underflow is clamped.
        s.remove_sub();
        s.remove_sub();
        s.remove_sub();
        assert_eq!(s.sub_count(), 0);
    }

    #[test]
    fn pop_wait_blocks_until_a_push_arrives() {
        let s = PushSession::new();
        let t = {
            let s = s.clone();
            std::thread::spawn(move || s.pop_wait())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        s.push("late".into());
        assert_eq!(t.join().unwrap().as_deref(), Some("late"));
    }
}
