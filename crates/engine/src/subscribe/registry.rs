//! The per-shard registry of live subscriptions.

use super::notify::PushSession;
use crate::planner::PlanKind;
use ocqa_logic::{Formula, Query};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The sorted relation names a query reads — the footprint matched
/// against an update's touched relations to decide whether a subscriber
/// is affected.
pub fn query_relations(query: &Query) -> Vec<String> {
    fn walk(f: &Formula, out: &mut BTreeSet<String>) {
        match f {
            Formula::Atom(a) => {
                out.insert(a.pred().as_str().to_string());
            }
            Formula::Eq(_, _) => {}
            Formula::Not(inner) => walk(inner, out),
            Formula::And(parts) | Formula::Or(parts) => {
                for part in parts {
                    walk(part, out);
                }
            }
            Formula::Exists(_, inner) | Formula::Forall(_, inner) => walk(inner, out),
        }
    }
    let mut out = BTreeSet::new();
    walk(query.formula(), &mut out);
    out.into_iter().collect()
}

/// One live continuous query.
pub struct Subscription {
    /// Shard-unique id, echoed in every pushed frame.
    pub id: u64,
    /// The catalog entry the query watches.
    pub db: String,
    /// Resolved query source text (prepared handles are resolved at
    /// subscribe time, so a later `prepare` churn can't retarget a live
    /// subscription).
    pub query_text: String,
    /// The query's relation footprint (sorted).
    pub relations: Vec<String>,
    /// Generator the re-estimates sample with.
    pub generator: String,
    /// Additive error bound ε.
    pub eps: f64,
    /// Confidence parameter δ.
    pub delta: f64,
    /// Sampling seed — fixed per subscription, so a re-estimate at the
    /// same version is bit-identical to the equivalent `answer`.
    pub seed: u64,
    /// Explicit plan override (`None` = planner routing).
    pub plan: Option<PlanKind>,
    /// Push every `window`-th touching update.
    pub window: u64,
    /// Touching updates seen so far (the window counter).
    pub pending: AtomicU64,
    /// The owning connection's push channel.
    pub session: PushSession,
}

impl Subscription {
    /// Counts one touching update; `true` when the window admits a push
    /// (the `window`-th, `2·window`-th, … touch; every touch when the
    /// window is 1).
    pub fn window_admits(&self) -> bool {
        let seen = self.pending.fetch_add(1, Ordering::Relaxed) + 1;
        seen.is_multiple_of(self.window)
    }

    /// Whether an update touching `touched` (sorted relation names)
    /// intersects this query's footprint.
    pub fn reads_any(&self, touched: &[String]) -> bool {
        // Both sides are sorted and tiny; a merge scan beats hashing.
        let (mut i, mut j) = (0, 0);
        while i < self.relations.len() && j < touched.len() {
            match self.relations[i].cmp(&touched[j]) {
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
            }
        }
        false
    }
}

/// A shard's live subscriptions, keyed by id. Iteration is id-ordered,
/// so pushes for one update fan out deterministically.
#[derive(Default)]
pub struct SubscriptionRegistry {
    subs: Mutex<BTreeMap<u64, Arc<Subscription>>>,
    next: AtomicU64,
}

impl SubscriptionRegistry {
    /// An empty registry.
    pub fn new() -> SubscriptionRegistry {
        SubscriptionRegistry::default()
    }

    /// Allocates the next subscription id (starting at 1).
    pub fn next_id(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Inserts a subscription under its id.
    pub fn insert(&self, sub: Arc<Subscription>) {
        self.subs.lock().unwrap().insert(sub.id, sub);
    }

    /// Removes by id, returning the subscription if it was live.
    pub fn remove(&self, id: u64) -> Option<Arc<Subscription>> {
        self.subs.lock().unwrap().remove(&id)
    }

    /// Removes by id only if `check` accepts the live subscription (the
    /// ownership guard of `unsubscribe`: the id must belong to the
    /// requesting session and database).
    pub fn remove_if(
        &self,
        id: u64,
        check: impl FnOnce(&Subscription) -> bool,
    ) -> Option<Arc<Subscription>> {
        let mut subs = self.subs.lock().unwrap();
        if check(subs.get(&id)?.as_ref()) {
            subs.remove(&id)
        } else {
            None
        }
    }

    /// Removes every subscription watching `db` (the drop-database
    /// path), id-ordered.
    pub fn remove_db(&self, db: &str) -> Vec<Arc<Subscription>> {
        let mut subs = self.subs.lock().unwrap();
        let ids: Vec<u64> = subs
            .iter()
            .filter(|(_, s)| s.db == db)
            .map(|(id, _)| *id)
            .collect();
        ids.iter().filter_map(|id| subs.remove(id)).collect()
    }

    /// Live subscriptions on `db` whose footprint intersects `touched`,
    /// id-ordered.
    pub fn affected(&self, db: &str, touched: &[String]) -> Vec<Arc<Subscription>> {
        self.subs
            .lock()
            .unwrap()
            .values()
            .filter(|s| s.db == db && s.reads_any(touched))
            .cloned()
            .collect()
    }

    /// Live subscription count (the `stats`/`metrics` gauge).
    pub fn len(&self) -> usize {
        self.subs.lock().unwrap().len()
    }

    /// Whether no subscription is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocqa_logic::parser;

    fn sub(id: u64, db: &str, relations: &[&str], window: u64) -> Arc<Subscription> {
        Arc::new(Subscription {
            id,
            db: db.into(),
            query_text: String::new(),
            relations: relations.iter().map(|r| r.to_string()).collect(),
            generator: "uniform".into(),
            eps: 0.1,
            delta: 0.1,
            seed: 0,
            plan: None,
            window,
            pending: AtomicU64::new(0),
            session: PushSession::new(),
        })
    }

    #[test]
    fn query_relations_walks_every_connective() {
        let q = parser::parse_query("(x) <- exists y: (R(x,y) & (S(y) | !T(x, y)))").unwrap();
        assert_eq!(query_relations(&q), vec!["R", "S", "T"]);
    }

    #[test]
    fn affected_filters_by_db_and_footprint() {
        let reg = SubscriptionRegistry::new();
        reg.insert(sub(1, "a", &["R"], 1));
        reg.insert(sub(2, "a", &["S"], 1));
        reg.insert(sub(3, "b", &["R"], 1));
        let hits = reg.affected("a", &["R".into()]);
        assert_eq!(hits.iter().map(|s| s.id).collect::<Vec<_>>(), vec![1]);
        assert!(reg.affected("a", &["T".into()]).is_empty());
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.remove_db("a").len(), 2);
        assert_eq!(reg.len(), 1);
        assert!(reg.remove(3).is_some());
        assert!(reg.remove(3).is_none());
        assert!(reg.is_empty());
    }

    #[test]
    fn window_admits_every_nth_touch() {
        let s = sub(1, "a", &["R"], 3);
        let admitted: Vec<bool> = (0..6).map(|_| s.window_admits()).collect();
        assert_eq!(admitted, vec![false, false, true, false, false, true]);
    }
}
