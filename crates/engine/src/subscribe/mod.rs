//! Continuous queries over fact streams.
//!
//! A `subscribe` request registers a query inside the owning
//! [`crate::shard::ShardEngine`]. On every update the shard diffs the
//! maintained violation set ([`touched_relations`]) and re-estimates the
//! query **only when the delta touches a conflict component the query
//! reads** — a clean-region-only update triggers neither a push nor a
//! sampling run, mirroring the planner-stats insight that repairs agree
//! on the clean region. Re-estimates arrive as asynchronous NDJSON
//! frames on the subscriber's own connection:
//!
//! ```json
//! {"answers":[…],"db":"prefs","db_version":3,"event":"estimate","failed_walks":0,"plan":"localized","sub":1,"walks":150}
//! {"db":"prefs","event":"closed","reason":"dropped","sub":1}
//! ```
//!
//! Frames deliberately omit per-deployment fields (`shard`, cache
//! counters), so `ocqa route` relays upstream push lines **verbatim**
//! and routed subscribers see bytes identical to in-process ones.
//!
//! Subscriptions are session-scoped: they die with the connection
//! ([`PushSession::close`] runs shard-registered cleanup), are never
//! journaled, and are bounded per session (`--max-subs-per-conn`).
//! Delivery is best-effort through a bounded per-session queue — a slow
//! consumer sheds its **oldest** queued frame (newest-estimate-wins),
//! counted in shard metrics.

mod diff;
mod notify;
mod registry;

pub use diff::touched_relations;
pub use notify::{PushOutcome, PushSession};
pub use registry::{query_relations, Subscription, SubscriptionRegistry};

use crate::json::Json;
use crate::proto::{self, AnswerPayload};

/// Renders one pushed re-estimate as an NDJSON line (no trailing
/// newline). The frame carries the same estimate fields as an `answer`
/// response minus deployment-specific ones, plus `"event"` and the
/// subscription id.
pub fn estimate_frame(db: &str, sub: u64, a: &AnswerPayload) -> String {
    Json::obj([
        ("answers", proto::answer_rows_json(&a.answers)),
        ("db", Json::from(db.to_string())),
        ("db_version", Json::from(a.db_version)),
        ("event", Json::from("estimate")),
        ("failed_walks", Json::from(a.failed_walks)),
        ("plan", Json::from(a.plan.as_str().to_string())),
        ("sub", Json::from(sub)),
        ("walks", Json::from(a.walks)),
    ])
    .to_string()
}

/// The canonical over-limit `subscribe` rejection — shared by shards
/// and the route proxy (which enforces the same ceiling before dialing
/// an upstream), so both deployments render identical bytes.
pub fn subscribe_limit_error(max: usize) -> crate::error::EngineError {
    crate::error::EngineError::BadRequest(format!("session subscription limit of {max} reached"))
}

/// The canonical unknown-subscription `unsubscribe` rejection — shared
/// by shards and the route proxy for byte-identical errors.
pub fn unknown_subscription(db: &str, sub: u64) -> crate::error::EngineError {
    crate::error::EngineError::BadRequest(format!(
        "no subscription {sub} on database {db:?} in this session"
    ))
}

/// Renders the terminal frame a subscriber receives when its
/// subscription ends without an `unsubscribe`: `reason` is `"dropped"`
/// (the database was dropped) or `"upstream"` (the routed upstream
/// connection died).
pub fn closed_frame(db: &str, sub: u64, reason: &str) -> String {
    Json::obj([
        ("db", Json::from(db.to_string())),
        ("event", Json::from("closed")),
        ("reason", Json::from(reason.to_string())),
        ("sub", Json::from(sub)),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::PlanKind;

    #[test]
    fn frames_render_deterministically_without_deployment_fields() {
        let payload = AnswerPayload {
            answers: vec![],
            walks: 150,
            failed_walks: 0,
            cached: true,
            coalesced: false,
            db_version: 3,
            plan: PlanKind::Localized,
            cache: Default::default(),
        };
        let frame = estimate_frame("prefs", 1, &payload);
        assert_eq!(
            frame,
            r#"{"answers":[],"db":"prefs","db_version":3,"event":"estimate","failed_walks":0,"plan":"localized","sub":1,"walks":150}"#
        );
        assert!(!frame.contains("shard"));
        assert!(!frame.contains("cached"));
        assert_eq!(
            closed_frame("prefs", 2, "dropped"),
            r#"{"db":"prefs","event":"closed","reason":"dropped","sub":2}"#
        );
    }
}
