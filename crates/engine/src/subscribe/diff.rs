//! Dirty-set diffing: which relations did an update's delta touch,
//! measured against the conflict-component structure?
//!
//! The catalog already maintains `V(D, Σ)` incrementally; this module
//! answers the follow-up question the push path needs: *given the
//! violation sets before and after an update and the delta facts, which
//! conflict components changed?* The component structure is the same
//! union-find over violation body images that [`crate::planner::stats`]
//! computes — built here over the **union** of the pre- and
//! post-violation sets, so a delta that dissolves a component still
//! reports it as touched.

use ocqa_data::Fact;
use ocqa_logic::{ConstraintSet, ViolationSet};
use std::collections::{BTreeSet, HashMap};

fn find(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]]; // path halving
        x = parent[x];
    }
    x
}

/// The sorted, deduplicated relation names of every fact belonging to a
/// conflict component the delta touched. Empty means the update was
/// clean-region-only: every delta fact lies outside `V(D, Σ)` both
/// before and after, so no subscriber's tally can have moved and no
/// push (or resampling) is warranted.
pub fn touched_relations(
    sigma: &ConstraintSet,
    pre: &ViolationSet,
    post: &ViolationSet,
    added: &[Fact],
    removed: &[Fact],
) -> Vec<String> {
    // Union-find over the facts of pre ∪ post violation body images:
    // facts in one violation share a component; components chain through
    // shared facts.
    let mut index: HashMap<Fact, usize> = HashMap::new();
    let mut parent: Vec<usize> = Vec::new();
    for violation in pre.iter().chain(post.iter()) {
        let mut prev: Option<usize> = None;
        for fact in violation.body_image(sigma) {
            let next = parent.len();
            let id = *index.entry(fact).or_insert_with(|| {
                parent.push(next);
                next
            });
            let root = find(&mut parent, id);
            if let Some(p) = prev {
                let p_root = find(&mut parent, p);
                if p_root != root {
                    parent[root] = p_root;
                    prev = Some(p_root);
                    continue;
                }
            }
            prev = Some(root);
        }
    }
    // A delta fact touches the component it (ever) belonged to; a delta
    // fact in no violation on either side touches nothing.
    let mut touched_roots: BTreeSet<usize> = BTreeSet::new();
    for fact in added.iter().chain(removed.iter()) {
        if let Some(&id) = index.get(fact) {
            touched_roots.insert(find(&mut parent, id));
        }
    }
    if touched_roots.is_empty() {
        return Vec::new();
    }
    let mut relations: BTreeSet<&str> = BTreeSet::new();
    for (fact, &id) in &index {
        if touched_roots.contains(&find(&mut parent, id)) {
            relations.insert(fact.pred().as_str());
        }
    }
    relations.into_iter().map(str::to_string).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocqa_data::Database;
    use ocqa_logic::parser;

    fn setup(facts: &str, constraints: &str) -> (Database, ConstraintSet, ViolationSet) {
        let facts = parser::parse_facts(facts).unwrap();
        let sigma = parser::parse_constraints(constraints).unwrap();
        let schema = parser::infer_schema(&facts, &sigma).unwrap();
        let db = Database::from_facts(schema, facts).unwrap();
        let violations = ViolationSet::compute(&sigma, &db);
        (db, sigma, violations)
    }

    #[test]
    fn clean_region_delta_touches_nothing() {
        let (mut db, sigma, pre) = setup("R(1,10). R(1,20). S(5).", "R(x,y), R(x,z) -> y = z.");
        // Appending to the unconstrained relation S changes no violation.
        let added = parser::parse_facts("S(6).").unwrap();
        for f in &added {
            db.insert(f).unwrap();
        }
        let post = ViolationSet::compute(&sigma, &db);
        assert_eq!(pre.len(), post.len());
        assert!(touched_relations(&sigma, &pre, &post, &added, &[]).is_empty());
    }

    #[test]
    fn conflicting_insert_touches_its_component_relations() {
        let (mut db, sigma, pre) = setup("R(1,10). S(5).", "R(x,y), R(x,z) -> y = z.");
        assert!(pre.is_empty());
        let added = parser::parse_facts("R(1,20).").unwrap();
        for f in &added {
            db.insert(f).unwrap();
        }
        let post = ViolationSet::compute(&sigma, &db);
        assert_eq!(
            touched_relations(&sigma, &pre, &post, &added, &[]),
            vec!["R".to_string()]
        );
    }

    #[test]
    fn delete_that_dissolves_a_component_still_reports_it() {
        let (mut db, sigma, pre) = setup("R(1,10). R(1,20).", "R(x,y), R(x,z) -> y = z.");
        assert!(!pre.is_empty());
        let removed = parser::parse_facts("R(1,20).").unwrap();
        for f in &removed {
            db.remove(f);
        }
        let post = ViolationSet::compute(&sigma, &db);
        assert!(post.is_empty());
        // The post set is empty; the pre-side component must still mark
        // R as touched so subscribers learn the conflict resolved.
        assert_eq!(
            touched_relations(&sigma, &pre, &post, &[], &removed),
            vec!["R".to_string()]
        );
    }

    #[test]
    fn touch_reports_every_relation_chained_into_the_component() {
        // A two-relation DC chains P and Q facts into one component;
        // touching it via a P fact must also report Q, because a query
        // over Q alone still sees its tally move.
        let (mut db, sigma, pre) = setup("P(a,b). Q(b,a).", "P(x,y), Q(y,x) -> false.");
        assert!(!pre.is_empty());
        let removed = parser::parse_facts("Q(b,a).").unwrap();
        for f in &removed {
            db.remove(f);
        }
        let post = ViolationSet::compute(&sigma, &db);
        let touched = touched_relations(&sigma, &pre, &post, &[], &removed);
        assert_eq!(touched, vec!["P".to_string(), "Q".to_string()]);
    }
}
