//! Single-flight coalescing for the answer path.
//!
//! Repeated approximate answering of the same query dominates serving
//! cost (the uniform operational CQA follow-ups make this explicit), and
//! the worst case is N concurrent *misses* for one key: without
//! coalescing, every one of them runs the full Hoeffding walk budget for
//! a result that is — by the engine's determinism contract — bit-for-bit
//! identical. The [`SingleFlight`] table collapses them: the first miss
//! becomes the **leader** and samples; every concurrent miss for the same
//! fully-qualified [`CacheKey`] becomes a **follower** and blocks until
//! the leader publishes, then shares the leader's tally (an `Arc` clone).
//!
//! Keys are full cache keys — database **and version**, query text,
//! generator, plan, ε/δ bits and seed — so coalescing can never merge
//! two requests whose computed answers could differ.
//!
//! The leader publishes errors too: followers of a failing run see the
//! same error instead of dog-piling onto a failing computation. A leader
//! that unwinds without publishing (a panic outside the pool's own
//! catch) is covered by [`LeaderToken`]'s `Drop`, which publishes a
//! generic sampling error — followers never block forever.

use crate::cache::CacheKey;
use crate::error::EngineError;
use ocqa_core::sample::SampleTally;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// What a flight resolves to: the shared tally, or the leader's error.
pub type FlightResult = Result<Arc<SampleTally>, EngineError>;

/// One in-flight computation, shared between its leader and followers.
pub struct Flight {
    slot: Mutex<Option<FlightResult>>,
    cv: Condvar,
}

impl Flight {
    /// Blocks until the leader publishes, then returns the shared result.
    pub fn wait(&self) -> FlightResult {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.cv.wait(slot).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn publish(&self, result: FlightResult) {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(result);
        }
        drop(slot);
        self.cv.notify_all();
    }
}

/// The in-flight table: at most one live computation per key.
#[derive(Default)]
pub struct SingleFlight {
    inflight: Mutex<HashMap<CacheKey, Arc<Flight>>>,
}

/// The outcome of [`SingleFlight::join`].
pub enum Join<'a> {
    /// This caller owns the computation and **must** resolve the token
    /// (compute → [`LeaderToken::complete`]).
    Leader(LeaderToken<'a>),
    /// Another caller is computing this key; [`Flight::wait`] for it.
    Follower(Arc<Flight>),
}

/// Leadership of one flight. Completing removes the flight from the
/// table *before* waking followers, so a caller arriving after
/// completion starts fresh (and, with the engine's cache-before-complete
/// ordering, immediately hits the answer cache instead of resampling).
pub struct LeaderToken<'a> {
    table: &'a SingleFlight,
    key: CacheKey,
    flight: Arc<Flight>,
    done: bool,
}

impl LeaderToken<'_> {
    /// Publishes the computation's outcome to every follower and retires
    /// the flight.
    pub fn complete(mut self, result: FlightResult) {
        self.resolve(result);
    }

    fn resolve(&mut self, result: FlightResult) {
        if self.done {
            return;
        }
        self.done = true;
        self.table
            .inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&self.key);
        self.flight.publish(result);
    }
}

impl Drop for LeaderToken<'_> {
    fn drop(&mut self) {
        // A leader that unwinds without completing must not strand its
        // followers: publish a generic failure.
        self.resolve(Err(EngineError::Sampling(
            "single-flight leader aborted without a result".into(),
        )));
    }
}

impl SingleFlight {
    /// An empty table.
    pub fn new() -> SingleFlight {
        SingleFlight::default()
    }

    /// The live flight for `key`, if any — a follower-only peek that
    /// never creates a flight. The answer path consults this *before*
    /// admission control: a caller that can coalesce onto an existing
    /// run needs no sampling slot, so it must never be turned away by a
    /// full shard.
    pub fn follow(&self, key: &CacheKey) -> Option<Arc<Flight>> {
        self.inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
            .cloned()
    }

    /// Joins the flight for `key`: the first caller becomes the leader,
    /// every concurrent caller a follower of the leader's flight.
    pub fn join(&self, key: &CacheKey) -> Join<'_> {
        let mut inflight = self.inflight.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(flight) = inflight.get(key) {
            return Join::Follower(flight.clone());
        }
        let flight = Arc::new(Flight {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        });
        inflight.insert(key.clone(), flight.clone());
        Join::Leader(LeaderToken {
            table: self,
            key: key.clone(),
            flight,
            done: false,
        })
    }

    /// Number of live flights (test observability).
    pub fn len(&self) -> usize {
        self.inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether no flight is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::PlanKind;

    fn key(seed: u64) -> CacheKey {
        CacheKey {
            db: "db".into(),
            version: 1,
            query: "(x) <- R(x)".into(),
            generator: "uniform".into(),
            plan: PlanKind::Monolithic,
            eps_bits: 0.1f64.to_bits(),
            delta_bits: 0.1f64.to_bits(),
            seed,
        }
    }

    fn tally(walks: u64) -> Arc<SampleTally> {
        Arc::new(SampleTally {
            walks,
            ..Default::default()
        })
    }

    #[test]
    fn leader_then_followers_share_one_result() {
        let table = Arc::new(SingleFlight::new());
        let Join::Leader(token) = table.join(&key(7)) else {
            panic!("first join must lead");
        };
        // Concurrent joins for the same key follow; a different key leads.
        let Join::Follower(flight) = table.join(&key(7)) else {
            panic!("second join must follow");
        };
        assert!(matches!(table.join(&key(8)), Join::Leader(_)));
        let waiter = {
            let flight = flight.clone();
            std::thread::spawn(move || flight.wait())
        };
        token.complete(Ok(tally(150)));
        assert_eq!(waiter.join().unwrap().unwrap().walks, 150);
        assert_eq!(flight.wait().unwrap().walks, 150, "late wait still served");
        // The flight retired: the next join for the key leads again.
        assert!(matches!(table.join(&key(7)), Join::Leader(_)));
    }

    #[test]
    fn follow_peeks_without_creating_a_flight() {
        let table = SingleFlight::new();
        assert!(table.follow(&key(9)).is_none());
        assert!(table.is_empty(), "follow must not create a flight");
        let Join::Leader(token) = table.join(&key(9)) else {
            panic!()
        };
        let flight = table.follow(&key(9)).expect("live flight visible");
        token.complete(Ok(tally(10)));
        assert_eq!(flight.wait().unwrap().walks, 10);
        assert!(table.follow(&key(9)).is_none(), "retired flight invisible");
    }

    #[test]
    fn errors_propagate_to_followers() {
        let table = SingleFlight::new();
        let Join::Leader(token) = table.join(&key(1)) else {
            panic!()
        };
        let Join::Follower(flight) = table.join(&key(1)) else {
            panic!()
        };
        token.complete(Err(EngineError::Sampling("boom".into())));
        assert!(matches!(flight.wait(), Err(EngineError::Sampling(_))));
    }

    #[test]
    fn dropped_leader_unblocks_followers() {
        let table = SingleFlight::new();
        let Join::Follower(flight) = ({
            let Join::Leader(token) = table.join(&key(2)) else {
                panic!()
            };
            let follower = table.join(&key(2));
            drop(token); // leader unwinds without completing
            follower
        }) else {
            panic!()
        };
        let err = flight.wait().unwrap_err();
        assert!(err.to_string().contains("aborted"), "{err}");
        assert!(table.is_empty(), "aborted flight must retire");
    }
}
