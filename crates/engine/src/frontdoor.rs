//! The transport-agnostic front door, and the multi-process router
//! built on it.
//!
//! PR 4 split the serving path into front door → router → shard. This
//! module extracts everything the front door does that is **independent
//! of how shards are reached** — request parsing, routing policy,
//! placement bookkeeping, duplicate-recovery detection, `list` merging,
//! `stats` summation, and `shard`-field injection — into [`FrontDoor`],
//! so the in-process engine ([`crate::Engine`] over [`ShardEngine`]s)
//! and the multi-process router ([`RouteProxy`] over
//! [`Upstream`] NDJSON/TCP clients) share one implementation instead of
//! forking it. The determinism contract rides on this: both deployments
//! route every name through the same [`Router`] and merge fan-outs the
//! same way, so moving a shard out of process can never change an
//! estimate.
//!
//! [`ShardEngine`]: crate::shard::ShardEngine
//!
//! # The route proxy
//!
//! [`RouteProxy`] is the `ocqa route` process: a standalone front door
//! proxying the NDJSON protocol to N upstream shard servers, each an
//! ordinary `ocqa serve --shards 1` over its own `shard-<k>/` store.
//! Per-database requests are forwarded verbatim to the owning upstream
//! and the response's `shard` field rewritten from the upstream's local
//! `0` to the global shard index; `list`/`stats` fan out and merge
//! exactly like the in-process engine. Because the JSON writer is
//! deterministic (sorted keys, shortest-round-trip numbers), a response
//! proxied through `ocqa route` is **byte-identical** to the same
//! request served by `ocqa serve --shards N` — pinned by the
//! `route` integration tests.
//!
//! Prepared-query handles keep their front-door scope: `prepare` (and
//! the `prepared_get` lookup op) are served by upstream 0, the handle
//! authority, and an `answer` carrying a `prepared` handle destined for
//! another upstream is rewritten to its query text first, resolved via
//! `prepared_get` on every request — exactly the per-answer authority
//! lookup the in-process front door performs, so handle lifetime
//! (including the registry's capacity eviction) behaves identically in
//! both deployments.
//!
//! # Routed subscriptions
//!
//! A `subscribe` through the router opens a **dedicated** upstream
//! session (never the request pool — pushed frames arrive on it
//! asynchronously) and a relay thread forwards every pushed line to the
//! client *verbatim*: estimate frames carry no deployment-specific
//! fields, so routed subscribers see bytes identical to in-process
//! ones. The per-connection subscription ceiling is enforced at the
//! router (each routed subscription is alone on its upstream session,
//! so the upstream's own limit never trips), and a dead upstream turns
//! into a structured `"event":"closed"` frame with reason `"upstream"`
//! rather than a silent hang.
//!
//! # The elastic cluster
//!
//! The front door's routing state is an explicit, **epoch-versioned**
//! [`Topology`]: member count, per-database placement overrides and the
//! set of in-flight moves, with an epoch bumped by every membership
//! change, committed move and failover. Requests may pin the epoch they
//! resolved placement at (`"epoch":N`); a pinned request against a
//! changed topology — or a mutation addressed to a mid-move database —
//! gets a structured [`EngineError::StaleTopology`] retry (`"retry":
//! true` plus the current epoch) instead of a silently wrong shard.
//!
//! On top of the topology the route proxy is elastic three ways:
//!
//! * **Live rebalance** — the admin `rebalance` op grows the cluster
//!   n→n+1 under traffic: the new upstream is registered, every
//!   database whose rendezvous home moves is snapshot-shipped
//!   (`fetch_snapshot` → `install_snapshot`, versions preserved
//!   exactly), its placement flipped at a new epoch, and only then
//!   dropped from the old shard. Move-then-drop means a crash mid-move
//!   leaves a duplicate that [`FrontDoor::seed`] detects as a hard
//!   error — never a lost database. In-flight mutations are fenced
//!   (every routed mutation holds a read lock the mover write-acquires
//!   between marking the move and exporting the snapshot), so a shipped
//!   snapshot never misses an acked write. Re-issuing `rebalance` with
//!   an address that is already a member resumes (or no-ops) instead of
//!   registering a duplicate shard — a grow interrupted by a router
//!   crash finishes the same way it started.
//! * **Background health probing** — `--probe-ms` probes every upstream
//!   with a lightweight `stats` exchange, detecting a dead shard (and
//!   hot re-dialing a recovered one) before the first client request.
//! * **Standby failover** — a primary that fails [`FAILOVER_AFTER`]
//!   consecutive probes with a `--standby` configured is replaced by
//!   its standby at a new epoch. The standby replayed every acked
//!   mutation (the serve side's synchronous `--replicate-to` op-stream
//!   replication), so acked writes survive and answers stay
//!   bit-identical. A standby that detached mid-stream is **not**
//!   promoted: probes record each primary's reported `replication_lag`,
//!   and [`RouteProxy::fail_over`] refuses while the last observed lag
//!   is non-zero — promoting a diverged standby would silently lose
//!   acked writes.
//!
//! Membership changes persist to `--topology PATH` (`{epoch, upstreams,
//! standbys}`, tmp+rename): on restart the file wins over the CLI
//! flags, so a grown or failed-over cluster resumes as it last ran.

use crate::catalog::DatabaseInfo;
use crate::error::EngineError;
use crate::json::Json;
use crate::obs::{MetricsSnapshot, SlowLog};
use crate::planner::PlanKind;
use crate::proto::{EngineRequest, EngineResponse, EngineStatsPayload, MetricsPayload, QueryRef};
use crate::router::Topology;
use crate::server::{Frame, LineService};
use crate::shard::ShardStats;
use crate::subscribe::{self, PushOutcome, PushSession};
use crate::upstream::{StreamSession, Upstream};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::net::{Shutdown, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Consecutive probe failures before a primary with a standby is failed
/// over. One failure can be a blip; three spaced `--probe-ms` apart is a
/// dead process.
pub const FAILOVER_AFTER: u32 = 3;

/// Where the front door sends a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteTarget<'a> {
    /// Served by the front door itself (`ping`).
    Local,
    /// Routed to the shard owning this database name.
    Database(&'a str),
    /// Served by shard 0, the prepared-handle authority
    /// (`prepare` / `prepared_get`).
    Authority,
    /// Fanned out over every shard and merged
    /// (`list` / `stats` / `metrics`).
    FanOut,
}

/// The routing policy: which shard serves each request kind. One
/// function, used by both the in-process engine and the route proxy, so
/// the policies cannot drift apart.
pub fn route_of(req: &EngineRequest) -> RouteTarget<'_> {
    match req {
        EngineRequest::Ping => RouteTarget::Local,
        EngineRequest::CreateDb { name, .. } | EngineRequest::DropDb { name } => {
            RouteTarget::Database(name)
        }
        EngineRequest::Insert { db, .. }
        | EngineRequest::Delete { db, .. }
        | EngineRequest::Answer { db, .. }
        | EngineRequest::Explain { db, .. }
        | EngineRequest::Subscribe { db, .. }
        | EngineRequest::Unsubscribe { db, .. }
        | EngineRequest::FetchSnapshot { db }
        | EngineRequest::InstallSnapshot { db, .. } => RouteTarget::Database(db),
        EngineRequest::Prepare { .. } | EngineRequest::PreparedGet { .. } => RouteTarget::Authority,
        EngineRequest::List | EngineRequest::Stats | EngineRequest::Metrics => RouteTarget::FanOut,
        // The rebalance admin op mutates the *topology*, not a shard:
        // the front door itself serves it (the in-process engine refuses
        // — growing it means restarting with more `--shards`).
        EngineRequest::Rebalance { .. } => RouteTarget::Local,
    }
}

/// Ops that change durable shard state. A mutation addressed to a
/// mid-move database is refused with a structured retry — the shipped
/// snapshot must not miss an acked write — while reads keep serving
/// from the old shard until the move commits.
fn is_mutation(req: &EngineRequest) -> bool {
    matches!(
        req,
        EngineRequest::CreateDb { .. }
            | EngineRequest::DropDb { .. }
            | EngineRequest::Insert { .. }
            | EngineRequest::Delete { .. }
            | EngineRequest::InstallSnapshot { .. }
    )
}

/// Parses one protocol line into a request (plus the raw JSON value, so
/// a proxy can rewrite fields without re-deriving them).
pub fn parse_request(line: &str) -> Result<(Json, EngineRequest), EngineError> {
    let v = crate::json::parse(line).map_err(|e| EngineError::BadRequest(e.to_string()))?;
    let req = EngineRequest::from_json(&v)?;
    Ok((v, req))
}

/// Transport-agnostic front-door state: the epoch-versioned topology
/// plus the request counter and fan-out merge logic.
pub struct FrontDoor {
    /// The serving topology: member count, per-database placement
    /// overrides (a database restored or created on a shard stays there
    /// even when rendezvous hashing would place a *new* namesake
    /// elsewhere), in-flight moves, and the epoch every change bumps.
    topology: RwLock<Topology>,
    requests: AtomicU64,
    started: Instant,
}

impl FrontDoor {
    /// A front door over `shards` shards (at least 1), with no seeded
    /// placements, at epoch 1.
    pub fn new(shards: usize) -> FrontDoor {
        FrontDoor {
            topology: RwLock::new(Topology::new(shards)),
            requests: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Number of shards behind this front door.
    pub fn shards(&self) -> usize {
        self.topology.read().shards()
    }

    /// The topology lock itself — the route proxy's rebalancer and
    /// failover sequence the epoch-bumping transitions directly.
    pub fn topology(&self) -> &RwLock<Topology> {
        &self.topology
    }

    /// The current topology epoch.
    pub fn epoch(&self) -> u64 {
        self.topology.read().epoch()
    }

    /// Enforces a request's pinned `"epoch"` field, when present: a
    /// client that resolved placement under an older (or newer) topology
    /// gets a structured retry carrying the current epoch, never a
    /// silently wrong shard.
    pub fn check_epoch(&self, raw: &Json) -> Result<(), EngineError> {
        let Some(pinned) = raw.get("epoch").and_then(Json::as_u64) else {
            return Ok(());
        };
        let current = self.epoch();
        if pinned != current {
            return Err(EngineError::StaleTopology {
                epoch: current,
                message: format!("request pinned epoch {pinned}; re-resolve and retry"),
            });
        }
        Ok(())
    }

    /// Refuses a mutation addressed to a mid-move database with a
    /// structured retry (reads keep serving from the old shard until
    /// the move commits).
    pub fn check_not_moving(&self, name: &str) -> Result<(), EngineError> {
        let topo = self.topology.read();
        if topo.is_moving(name) {
            return Err(EngineError::StaleTopology {
                epoch: topo.epoch(),
                message: format!("database {name:?} is mid-move; retry after the move commits"),
            });
        }
        Ok(())
    }

    /// Seeds recovered placements for one shard. A name already seeded
    /// by **another** shard is a hard error (a half-finished rebalance
    /// or a resharding gone wrong), never a silent coin toss.
    pub fn seed<'a>(
        &self,
        shard: usize,
        names: impl IntoIterator<Item = &'a str>,
    ) -> Result<(), EngineError> {
        let mut topology = self.topology.write();
        for name in names {
            if let Some(other) = topology.placed(name) {
                return Err(EngineError::Storage(format!(
                    "database {name:?} recovered on shard {other} and shard {shard}; \
                     rebalance the data directories before serving (a rebalance that \
                     died between install and drop leaves the database on both its \
                     old and new shard — drop it from the old one to resume)"
                )));
            }
            topology.place(name, shard);
        }
        Ok(())
    }

    /// The shard serving `name`: its restored/created placement if one
    /// exists, the router's deterministic assignment otherwise.
    pub fn shard_of(&self, name: &str) -> usize {
        self.topology.read().shard_of(name)
    }

    /// Records a successful `create_db` placement.
    pub fn record_create(&self, name: &str, shard: usize) {
        self.topology.write().place(name, shard);
    }

    /// Clears a dropped database's placement.
    pub fn record_drop(&self, name: &str) {
        self.topology.write().remove(name);
    }

    /// Counts one front-door request. Shards never count requests —
    /// only the front door does — so a retried rejection contributes one
    /// tick per attempt and nothing double-counts.
    pub fn begin_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests handled so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Milliseconds since this front door was built (the `stats`
    /// `uptime_ms` field — each deployment reports its own).
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64
    }

    /// Merges per-shard `list` results into one catalog view, sorted by
    /// name (the fan-out contract: every shard read exactly once).
    pub fn merge_lists(lists: impl IntoIterator<Item = Vec<DatabaseInfo>>) -> Vec<DatabaseInfo> {
        let mut all: Vec<DatabaseInfo> = lists.into_iter().flatten().collect();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }

    /// Sums per-shard counters into the engine-wide `stats` payload:
    /// the front door's own request counter plus each shard's local
    /// counters, each shard read **exactly once**.
    pub fn sum_stats(&self, backend: String, per_shard: &[ShardStats]) -> EngineStatsPayload {
        let mut out = EngineStatsPayload {
            backend,
            requests: self.requests(),
            answers: 0,
            walks: 0,
            coalesced: 0,
            workers: 0,
            databases: 0,
            prepared: 0,
            shards: self.shards(),
            subscriptions: 0,
            cache: Default::default(),
            uptime_ms: self.uptime_ms(),
            build: env!("CARGO_PKG_VERSION").to_string(),
            // Replication is deployment-level, not per-shard: the
            // in-process engine and the router each fill this in from
            // their own replica bookkeeping after summing.
            replication_lag: 0,
        };
        for s in per_shard {
            out.answers += s.answers;
            out.walks += s.walks;
            out.coalesced += s.coalesced;
            out.workers += s.workers;
            out.databases += s.databases;
            out.prepared += s.prepared;
            out.subscriptions += s.subscriptions as u64;
            out.cache.merge(&s.cache);
        }
        out
    }

    /// Adds each listed database's owning shard to a rendered `list`
    /// response (protocol-layer `shard` injection).
    pub fn tag_list_shards(&self, json: &mut Json) {
        let Json::Obj(obj) = json else { return };
        let Some(Json::Arr(dbs)) = obj.get_mut("databases") else {
            return;
        };
        for db in dbs {
            let Some(name) = db.get("name").and_then(Json::as_str) else {
                continue;
            };
            let shard = self.shard_of(name) as u64;
            db.set("shard", Json::from(shard));
        }
    }
}

/// A routed subscription's identity: (client session id, db, sub id).
type SubKey = (u64, String, u64);

/// One router-side upstream slot: the live primary plus the optional
/// standby it fails over to.
struct UpstreamSlot {
    upstream: Arc<Upstream>,
    /// `--standby` address paired with this slot, if any. Consumed by a
    /// failover: a standby serves at most one promotion.
    standby: Option<String>,
}

/// Everything [`RouteProxy::connect_cfg`] needs to build a router.
pub struct RouteConfig {
    /// Upstream addresses in shard order (the first is shard 0, the
    /// prepared-handle authority).
    pub upstreams: Vec<String>,
    /// Standby address per upstream slot, positionally paired
    /// (`None` = no standby; shorter than `upstreams` is padded).
    pub standbys: Vec<Option<String>>,
    /// `--slow-ms` transport trace threshold (`0` disables).
    pub slow_ms: u64,
    /// `--max-subs-per-conn` subscription ceiling.
    pub max_subs: usize,
    /// `--probe-ms` background health-probe interval (`0` disables
    /// probing, and with it automatic failover).
    pub probe_ms: u64,
    /// `--topology PATH`: where membership changes persist. On startup
    /// an existing file **wins over** `upstreams`/`standbys`, so a grown
    /// or failed-over cluster resumes as it last ran.
    pub topology_path: Option<PathBuf>,
}

/// The membership record persisted at `--topology PATH`.
struct PersistedTopology {
    epoch: u64,
    upstreams: Vec<String>,
    standbys: Vec<Option<String>>,
}

/// The `ocqa route` engine: a standalone front door proxying the NDJSON
/// protocol to remote shard servers. See the module docs.
pub struct RouteProxy {
    front: FrontDoor,
    /// Upstream slots in shard order. Behind a lock because `rebalance`
    /// appends and failover swaps a primary in place; request paths
    /// clone the `Arc<Upstream>` out and never hold the lock across IO.
    slots: RwLock<Vec<UpstreamSlot>>,
    slow: SlowLog,
    /// Per-connection subscription ceiling (`--max-subs-per-conn`),
    /// enforced at the router before an upstream is dialed.
    max_subs: usize,
    /// Live routed subscriptions: each entry holds the shutdown handle
    /// of its dedicated upstream session. Removal is the "still live"
    /// token — whichever path removes the entry (unsubscribe, client
    /// disconnect, upstream close) owns the teardown, so the relay never
    /// synthesizes a terminal frame for an already-ended subscription.
    subs: Arc<Mutex<HashMap<SubKey, TcpStream>>>,
    /// Databases moved by completed rebalance steps (the
    /// `ocqa_rebalance_moves_total` gauge).
    moves: AtomicU64,
    /// Where membership persists (see [`RouteConfig::topology_path`]).
    topology_path: Option<PathBuf>,
    /// Serializes topology mutations: one rebalance or failover at a
    /// time, never interleaved.
    admin: Mutex<()>,
    /// The mutation fence for snapshot shipping. Every routed mutation
    /// holds this for **read** across the mid-move check *and* its
    /// upstream forward; the rebalancer acquires (and immediately
    /// releases) it for **write** between `begin_move` and
    /// `fetch_snapshot`. The write acquisition therefore waits out every
    /// in-flight mutation that passed the check before the move began —
    /// its write is applied (and acked) by the old shard *before* the
    /// snapshot is exported, so a shipped snapshot can never miss an
    /// acked write. Mutations arriving after `begin_move` see the moving
    /// flag and get the structured retry.
    move_gate: RwLock<()>,
}

/// Outcome of resolving a prepared handle against upstream 0.
enum Resolved {
    /// The handle's query text.
    Text(String),
    /// Upstream 0 answered with a protocol error (e.g. unknown handle):
    /// the response to relay, before shard tagging.
    Refused(Json),
    /// Upstream 0 was unreachable.
    Transport(EngineError),
}

impl RouteProxy {
    /// Connects to the given upstream shard servers (in shard order:
    /// the first address is shard 0, the prepared-handle authority) and
    /// seeds the placement table from each upstream's current catalog.
    /// Fails if any upstream is unreachable or one database name is
    /// served by two upstreams.
    pub fn connect(addrs: Vec<String>) -> Result<Arc<RouteProxy>, EngineError> {
        RouteProxy::connect_with(addrs, 0, 64)
    }

    /// [`connect`](RouteProxy::connect) with a `--slow-ms` trace
    /// threshold (proxied requests at or above `slow_ms` milliseconds
    /// emit one transport-level trace event on stderr; `0` disables)
    /// and a `--max-subs-per-conn` subscription ceiling.
    pub fn connect_with(
        addrs: Vec<String>,
        slow_ms: u64,
        max_subs: usize,
    ) -> Result<Arc<RouteProxy>, EngineError> {
        RouteProxy::connect_cfg(RouteConfig {
            upstreams: addrs,
            standbys: Vec::new(),
            slow_ms,
            max_subs,
            probe_ms: 0,
            topology_path: None,
        })
    }

    /// The full-configuration constructor behind `ocqa route`: standbys,
    /// background probing and topology persistence. An existing
    /// `--topology` file **overrides** the configured members (the
    /// cluster resumes as it last ran); a missing one is written fresh.
    pub fn connect_cfg(cfg: RouteConfig) -> Result<Arc<RouteProxy>, EngineError> {
        let mut addrs = cfg.upstreams;
        let mut standbys = cfg.standbys;
        let mut epoch = None;
        if let Some(path) = cfg.topology_path.as_deref() {
            if path.exists() {
                let persisted = load_topology(path)?;
                addrs = persisted.upstreams;
                standbys = persisted.standbys;
                epoch = Some(persisted.epoch);
            }
        }
        if addrs.is_empty() {
            return Err(EngineError::BadRequest(
                "route needs at least one upstream".into(),
            ));
        }
        standbys.resize(addrs.len(), None);
        let slots: Vec<UpstreamSlot> = addrs
            .into_iter()
            .zip(standbys)
            .map(|(addr, standby)| UpstreamSlot {
                upstream: Arc::new(Upstream::new(addr)),
                standby,
            })
            .collect();
        let front = FrontDoor::new(slots.len());
        if let Some(epoch) = epoch {
            front.topology().write().set_epoch(epoch);
        }
        for (k, slot) in slots.iter().enumerate() {
            let up = &slot.upstream;
            let resp = up.exchange(r#"{"op":"list"}"#)?;
            let infos = crate::json::parse(&resp)
                .map_err(|e| e.to_string())
                .and_then(|v| parse_list(&v))
                .map_err(|e| {
                    EngineError::Unavailable(format!("{}: malformed list: {e}", up.addr()))
                })?;
            front.seed(k, infos.iter().map(|i| i.name.as_str()))?;
        }
        let proxy = Arc::new(RouteProxy {
            front,
            slots: RwLock::new(slots),
            slow: SlowLog::new(cfg.slow_ms),
            max_subs: cfg.max_subs,
            subs: Arc::new(Mutex::new(HashMap::new())),
            moves: AtomicU64::new(0),
            topology_path: cfg.topology_path,
            admin: Mutex::new(()),
            move_gate: RwLock::new(()),
        });
        if let Some(path) = proxy.topology_path.as_deref() {
            if !path.exists() {
                proxy.persist_topology()?;
            }
        }
        if cfg.probe_ms > 0 {
            spawn_prober(&proxy, cfg.probe_ms);
        }
        Ok(proxy)
    }

    /// Number of upstream shard servers.
    pub fn shards(&self) -> usize {
        self.slots.read().len()
    }

    /// Number of databases currently placed across the upstreams.
    pub fn databases(&self) -> usize {
        self.front.topology().read().len()
    }

    /// The current topology epoch.
    pub fn epoch(&self) -> u64 {
        self.front.epoch()
    }

    /// The current upstream addresses, in shard order.
    pub fn upstream_addrs(&self) -> Vec<String> {
        self.slots
            .read()
            .iter()
            .map(|s| s.upstream.addr().to_string())
            .collect()
    }

    /// The live upstream handle for shard `k` (cloned out so no request
    /// ever holds the slot lock across IO). After a failover this is the
    /// promoted standby.
    pub fn upstream(&self, k: usize) -> Arc<Upstream> {
        self.slots.read()[k].upstream.clone()
    }

    /// A point-in-time snapshot of every upstream handle, for fan-outs.
    fn upstream_snapshot(&self) -> Vec<Arc<Upstream>> {
        self.slots
            .read()
            .iter()
            .map(|s| s.upstream.clone())
            .collect()
    }

    /// The shard serving `name` (placement table, else the router).
    pub fn shard_of(&self, name: &str) -> usize {
        self.front.shard_of(name)
    }

    /// Handles one raw protocol line, exactly like
    /// [`Engine::handle_line`](crate::Engine::handle_line) — but by
    /// proxying to the owning upstream instead of calling into an
    /// in-process shard.
    pub fn handle_line(&self, line: &str) -> String {
        let t0 = Instant::now();
        self.front.begin_request();
        let (raw, req) = match parse_request(line) {
            Ok(parsed) => parsed,
            Err(e) => return error_line(None, e),
        };
        let op = req.op_name();
        let out = self.route_one(line, raw, &req);
        // Transport-level slow tracing: total proxy time, including the
        // upstream's own service time. The stage breakdown lives in the
        // upstream's log — this event identifies *which* routed request
        // was slow and where it went.
        let elapsed = t0.elapsed();
        if self.slow.is_slow(elapsed) {
            self.slow.emit(Json::obj([
                ("op", Json::from(op)),
                ("proxy", Json::from(true)),
                (
                    "elapsed_ms",
                    Json::from(elapsed.as_millis().min(u128::from(u64::MAX)) as u64),
                ),
            ]));
        }
        out
    }

    /// Routes one parsed request: epoch enforcement, mid-move mutation
    /// gating, then the per-target proxy path.
    fn route_one(&self, line: &str, mut raw: Json, req: &EngineRequest) -> String {
        if let Err(e) = self.front.check_epoch(&raw) {
            return error_line(None, e);
        }
        // Strip a *validated* epoch pin before forwarding: each upstream
        // is its own single-shard engine whose epoch never leaves 1, so
        // a forwarded pin from a grown router would be refused there.
        let stripped: String;
        let line: &str = if raw.get("epoch").is_some() {
            raw.remove("epoch");
            stripped = raw.to_string();
            &stripped
        } else {
            line
        };
        match route_of(req) {
            RouteTarget::Local => match req {
                EngineRequest::Rebalance { add, standby } => {
                    match self.rebalance(add, standby.as_deref()) {
                        Ok(resp) => resp.to_json().to_string(),
                        Err(e) => error_line(None, e),
                    }
                }
                _ => EngineResponse::Pong.to_json().to_string(),
            },
            RouteTarget::Authority => self.proxy_authority(line),
            RouteTarget::Database(name) => {
                // Mutations hold the move gate for read from the
                // mid-move check through the upstream forward: the
                // rebalancer fences on it (write-acquire) between
                // `begin_move` and the snapshot fetch, so a mutation
                // that passed the check just before a move began is
                // applied by the old shard before its copy is exported
                // — never silently destroyed by the post-move drop.
                let _gate = is_mutation(req).then(|| self.move_gate.read());
                if _gate.is_some() {
                    if let Err(e) = self.front.check_not_moving(name) {
                        return error_line(Some(self.front.shard_of(name) as u32), e);
                    }
                }
                let k = self.front.shard_of(name);
                self.proxy_database(line, raw, req, k)
            }
            RouteTarget::FanOut => match req {
                EngineRequest::List => self.fan_out_list(),
                EngineRequest::Metrics => self.fan_out_metrics(),
                _ => self.fan_out_stats(),
            },
        }
    }

    /// Forwards a line to upstream `k` and parses the response (every
    /// well-behaved upstream emits one JSON object per line).
    fn forward(&self, k: usize, line: &str) -> Result<Json, EngineError> {
        RouteProxy::forward_up(&self.upstream(k), line)
    }

    /// [`forward`](RouteProxy::forward) against an explicit upstream
    /// handle (the rebalancer talks to shards the topology does not
    /// route to yet, or no longer routes to).
    fn forward_up(up: &Upstream, line: &str) -> Result<Json, EngineError> {
        let resp = up.exchange(line)?;
        crate::json::parse(&resp).map_err(|e| {
            EngineError::Unavailable(format!("{}: malformed response: {e}", up.addr()))
        })
    }

    /// `prepare` / `prepared_get`: upstream 0 is the handle authority.
    fn proxy_authority(&self, line: &str) -> String {
        match self.forward(0, line) {
            Ok(mut resp) => {
                resp.set("shard", Json::from(0u64));
                resp.to_string()
            }
            Err(e) => error_line(Some(0), e),
        }
    }

    /// Per-database ops: forward to the owning upstream, rewrite the
    /// `shard` tag, and mirror the in-process placement bookkeeping.
    fn proxy_database(&self, line: &str, raw: Json, req: &EngineRequest, k: usize) -> String {
        // Prepared handles live on upstream 0: rewrite to the query text
        // before routing elsewhere, so any upstream can serve any handle.
        let rewritten: String;
        let line = match req {
            EngineRequest::Answer {
                query: QueryRef::Prepared(id),
                ..
            } if k != 0 => match self.resolve_prepared(id) {
                Resolved::Text(text) => {
                    let mut raw = raw;
                    raw.remove("prepared");
                    raw.set("query", Json::from(text));
                    rewritten = raw.to_string();
                    &rewritten
                }
                Resolved::Refused(mut resp) => {
                    resp.set("shard", Json::from(k as u64));
                    return resp.to_string();
                }
                Resolved::Transport(e) => return error_line(Some(k as u32), e),
            },
            _ => line,
        };
        match self.forward(k, line) {
            Ok(mut resp) => {
                if is_ok(&resp) {
                    match req {
                        EngineRequest::CreateDb { name, .. } => self.front.record_create(name, k),
                        EngineRequest::DropDb { name } => self.front.record_drop(name),
                        _ => {}
                    }
                }
                resp.set("shard", Json::from(k as u64));
                resp.to_string()
            }
            Err(e) => error_line(Some(k as u32), e),
        }
    }

    /// The text behind a prepared handle, resolved against upstream 0
    /// on every request — the same per-answer authority lookup the
    /// in-process front door makes, so handle lifetime (including the
    /// registry's capacity eviction) behaves identically.
    fn resolve_prepared(&self, id: &str) -> Resolved {
        let lookup = Json::obj([("op", Json::from("prepared_get")), ("id", Json::from(id))]);
        let resp = match self.forward(0, &lookup.to_string()) {
            Ok(resp) => resp,
            Err(e) => return Resolved::Transport(e),
        };
        if !is_ok(&resp) {
            return Resolved::Refused(resp);
        }
        match resp.get("query").and_then(Json::as_str) {
            Some(text) => Resolved::Text(text.to_string()),
            None => Resolved::Transport(EngineError::Unavailable(format!(
                "{}: prepared_get returned no query text",
                self.upstream(0).addr()
            ))),
        }
    }

    /// `list`: fan out, merge and sort across upstreams, tag shards. A
    /// dead upstream fails the whole request — an incomplete catalog
    /// must never be presented as complete.
    fn fan_out_list(&self) -> String {
        let ups = self.upstream_snapshot();
        let mut lists = Vec::with_capacity(ups.len());
        for up in &ups {
            let resp = match RouteProxy::forward_up(up, r#"{"op":"list"}"#) {
                Ok(resp) => resp,
                Err(e) => return error_line(None, e),
            };
            match parse_list(&resp) {
                Ok(infos) => lists.push(infos),
                Err(e) => {
                    return error_line(
                        None,
                        EngineError::Unavailable(format!("{}: malformed list: {e}", up.addr())),
                    )
                }
            }
        }
        let mut json = EngineResponse::List(FrontDoor::merge_lists(lists)).to_json();
        self.front.tag_list_shards(&mut json);
        json.to_string()
    }

    /// `stats`: fan out and sum per-upstream counters exactly once.
    fn fan_out_stats(&self) -> String {
        let ups = self.upstream_snapshot();
        let mut backend = String::new();
        let mut per_shard = Vec::with_capacity(ups.len());
        let mut lag = 0u64;
        for (k, up) in ups.iter().enumerate() {
            let resp = match RouteProxy::forward_up(up, r#"{"op":"stats"}"#) {
                Ok(resp) => resp,
                Err(e) => return error_line(None, e),
            };
            match parse_stats(&resp) {
                Ok((upstream_backend, stats, upstream_lag)) => {
                    if k == 0 {
                        backend = upstream_backend;
                    }
                    per_shard.push(stats);
                    lag += upstream_lag;
                }
                Err(e) => {
                    return error_line(
                        None,
                        EngineError::Unavailable(format!("{}: malformed stats: {e}", up.addr())),
                    )
                }
            }
        }
        let mut payload = self.front.sum_stats(backend, &per_shard);
        payload.replication_lag = lag;
        let mut json = EngineResponse::Stats(payload).to_json();
        json.set("topology", self.topology_json());
        json.set("upstreams", self.upstream_health());
        json.to_string()
    }

    /// `metrics`: fan out, merge each upstream's shards into its global
    /// shard slot, and render through the *same* payload type the
    /// in-process engine uses — so the two deployments answer
    /// byte-identically, apart from the router-only `upstreams` key.
    fn fan_out_metrics(&self) -> String {
        let ups = self.upstream_snapshot();
        let mut per_shard = Vec::with_capacity(ups.len());
        let mut lag = 0u64;
        for up in &ups {
            let resp = match RouteProxy::forward_up(up, r#"{"op":"metrics"}"#) {
                Ok(resp) => resp,
                Err(e) => return error_line(None, e),
            };
            match parse_metrics(&resp) {
                Ok((snapshot, shard_lag)) => {
                    per_shard.push(snapshot);
                    lag += shard_lag;
                }
                Err(e) => {
                    return error_line(
                        None,
                        EngineError::Unavailable(format!("{}: malformed metrics: {e}", up.addr())),
                    )
                }
            }
        }
        let mut json = EngineResponse::Metrics(MetricsPayload {
            per_shard,
            topology_epoch: self.front.epoch(),
            rebalance_moves: self.moves.load(Ordering::Relaxed),
            replication_lag: lag,
        })
        .to_json();
        json.set("upstreams", self.upstream_health());
        json.to_string()
    }

    /// The router-only `topology` block appended to `stats` responses:
    /// epoch, members (with standbys), in-flight moves and placement
    /// count.
    fn topology_json(&self) -> Json {
        let slots = self.slots.read();
        let topo = self.front.topology().read();
        let members = slots
            .iter()
            .enumerate()
            .map(|(k, s)| {
                let mut m = Json::obj([
                    ("addr", Json::from(s.upstream.addr().to_string())),
                    ("shard", Json::from(k as u64)),
                ]);
                if let Some(standby) = &s.standby {
                    m.set("standby", Json::from(standby.clone()));
                }
                m
            })
            .collect();
        Json::obj([
            ("epoch", Json::from(topo.epoch())),
            ("members", Json::Arr(members)),
            (
                "moving",
                Json::Arr(topo.moving().into_iter().map(Json::from).collect()),
            ),
            ("placements", Json::from(topo.len() as u64)),
            ("shards", Json::from(topo.shards() as u64)),
        ])
    }

    /// The per-upstream health array appended (router-only) to `stats`
    /// and `metrics` responses.
    fn upstream_health(&self) -> Json {
        Json::Arr(
            self.upstream_snapshot()
                .iter()
                .map(|up| up.health_json())
                .collect(),
        )
    }

    /// [`handle_line`](RouteProxy::handle_line) on a duplex session:
    /// `subscribe` opens a dedicated upstream session and relays its
    /// pushed frames to the client verbatim, `unsubscribe` tears the
    /// relay down, every other op behaves exactly as on a plain session.
    pub fn handle_open_line(&self, line: &str, session: &PushSession) -> String {
        let (mut raw, req) = match parse_request(line) {
            Ok(parsed) => parsed,
            Err(e) => {
                self.front.begin_request();
                return error_line(None, e);
            }
        };
        match req {
            EngineRequest::Subscribe { db, query, .. } => {
                self.front.begin_request();
                if let Err(e) = self.front.check_epoch(&raw) {
                    return error_line(None, e);
                }
                if raw.get("epoch").is_some() {
                    raw.remove("epoch");
                }
                self.proxy_subscribe(raw, &db, &query, session)
            }
            EngineRequest::Unsubscribe { db, sub } => {
                self.front.begin_request();
                if let Err(e) = self.front.check_epoch(&raw) {
                    return error_line(None, e);
                }
                self.proxy_unsubscribe(&db, sub, session)
            }
            _ => self.handle_line(line),
        }
    }

    /// Opens one routed subscription: dial a dedicated session to the
    /// owning upstream, forward the `subscribe` line (prepared handles
    /// rewritten to text first), hand the session to a relay thread, and
    /// return the upstream's response with its `shard` tag rewritten to
    /// the global index.
    fn proxy_subscribe(
        &self,
        mut raw: Json,
        db: &str,
        query: &QueryRef,
        session: &PushSession,
    ) -> String {
        let k = self.front.shard_of(db);
        // The router enforces the per-connection ceiling itself: each
        // routed subscription is alone on its dedicated upstream
        // session, so the upstream's own limit would never trip.
        if !session.try_add_sub(self.max_subs) {
            return error_line(
                Some(k as u32),
                subscribe::subscribe_limit_error(self.max_subs),
            );
        }
        let fail = |e: EngineError| {
            session.remove_sub();
            error_line(Some(k as u32), e)
        };
        let up = self.upstream(k);
        let addr = up.addr();
        // Prepared handles live on upstream 0: rewrite to the query text
        // before routing elsewhere, exactly like `answer`.
        if let QueryRef::Prepared(id) = query {
            if k != 0 {
                match self.resolve_prepared(id) {
                    Resolved::Text(text) => {
                        raw.remove("prepared");
                        raw.set("query", Json::from(text));
                    }
                    Resolved::Refused(mut resp) => {
                        session.remove_sub();
                        resp.set("shard", Json::from(k as u64));
                        return resp.to_string();
                    }
                    Resolved::Transport(e) => return fail(e),
                }
            }
        }
        let mut stream = match up.dial_stream() {
            Ok(stream) => stream,
            Err(e) => return fail(e),
        };
        let resp = match stream.send(&raw.to_string()).and_then(|()| stream.read()) {
            Ok(Frame::Line(resp)) => resp,
            Ok(_) => {
                return fail(EngineError::Unavailable(format!(
                    "{addr}: subscribe: no usable response line"
                )))
            }
            Err(e) => return fail(EngineError::Unavailable(format!("{addr}: subscribe: {e}"))),
        };
        let mut resp = match crate::json::parse(&resp) {
            Ok(resp) => resp,
            Err(e) => {
                return fail(EngineError::Unavailable(format!(
                    "{addr}: malformed response: {e}"
                )))
            }
        };
        if !is_ok(&resp) {
            // The upstream refused (unknown db, bad ε, …): relay its
            // structured rejection, shard-tagged like every routed error.
            session.remove_sub();
            resp.set("shard", Json::from(k as u64));
            return resp.to_string();
        }
        let Some(sub) = resp.get("sub").and_then(Json::as_u64) else {
            return fail(EngineError::Unavailable(format!(
                "{addr}: subscribe response carries no sub id"
            )));
        };
        let Ok(shutdown) = stream.shutdown_handle() else {
            return fail(EngineError::Unavailable(format!(
                "{addr}: subscribe: lost the session socket"
            )));
        };
        let key: SubKey = (session.id(), db.to_string(), sub);
        self.subs.lock().insert(key.clone(), shutdown);
        {
            // Client disconnect: shut the dedicated session down, which
            // unblocks the relay; the removed map entry tells it not to
            // synthesize a terminal frame.
            let subs = self.subs.clone();
            let key = key.clone();
            session.on_close(move || {
                if let Some(conn) = subs.lock().remove(&key) {
                    let _ = conn.shutdown(Shutdown::Both);
                }
            });
        }
        if spawn_relay(stream, self.subs.clone(), key.clone(), session.clone()).is_err() {
            if self.subs.lock().remove(&key).is_some() {
                session.remove_sub();
            }
            return error_line(
                Some(k as u32),
                EngineError::Unavailable("no thread available for the subscription relay".into()),
            );
        }
        resp.set("shard", Json::from(k as u64));
        resp.to_string()
    }

    /// Ends one routed subscription: tear its relay down locally and
    /// synthesize the same `Unsubscribed` response an in-process shard
    /// renders. Closing the dedicated session is what unsubscribes
    /// upstream — its server reaps the subscription with the connection.
    fn proxy_unsubscribe(&self, db: &str, sub: u64, session: &PushSession) -> String {
        let k = self.front.shard_of(db);
        match self
            .subs
            .lock()
            .remove(&(session.id(), db.to_string(), sub))
        {
            Some(conn) => {
                let _ = conn.shutdown(Shutdown::Both);
                session.remove_sub();
                let mut json = EngineResponse::Unsubscribed {
                    db: db.to_string(),
                    sub,
                }
                .to_json();
                json.set("shard", Json::from(k as u64));
                json.to_string()
            }
            None => error_line(Some(k as u32), subscribe::unknown_subscription(db, sub)),
        }
    }

    /// Grows the cluster from `n` to `n+1` upstreams, live: registers
    /// (and persists) the new member, snapshot-ships every database
    /// whose rendezvous home moves to it, flips each placement at a new
    /// epoch, and only then drops the source copy (move-then-drop — a
    /// crash mid-move leaves a duplicate [`FrontDoor::seed`] refuses,
    /// never a lost database). Mutations against a mid-move database are
    /// refused with a structured retry; reads keep serving from the old
    /// shard until its move commits.
    ///
    /// A rebalance that failed partway is resumable by re-issuing the op
    /// with the same address — in the same router process *or* after a
    /// router restart: an `add` matching an **existing** member is never
    /// dialed as a new shard (no duplicate slot can ever be registered);
    /// instead its unfinished moves are re-driven. A fully-settled
    /// member re-added this way is a no-op.
    pub fn rebalance(
        &self,
        add: &str,
        standby: Option<&str>,
    ) -> Result<EngineResponse, EngineError> {
        let _admin = self.admin.lock();
        // Where does `add` stand relative to the current membership?
        // - a slot past the routed shard count: a grow this process
        //   started and lost mid-flight — resume it;
        // - an already-routed slot: a grow whose grown membership
        //   persisted but whose router crashed before every database
        //   shipped — finish the shipping (or no-op when settled);
        // - unknown while another grow is mid-flight: refused;
        // - unknown otherwise: a genuinely new member.
        let routed = self.front.shards();
        let existing = {
            let slots = self.slots.read();
            match slots.iter().position(|s| s.upstream.addr() == add) {
                Some(k) => Some((k, k >= routed)),
                None if slots.len() > routed => {
                    let addr = slots[routed].upstream.addr().to_string();
                    return Err(EngineError::BadRequest(format!(
                        "rebalance: a grow to {addr:?} is mid-flight; resume it by \
                         re-issuing rebalance with that address"
                    )));
                }
                None => None,
            }
        };
        let (new_index, grows_membership) = match existing {
            Some((k, mid_flight)) => {
                self.reconcile_standby(k, standby)?;
                (k, mid_flight)
            }
            None => {
                let up = Upstream::new(add.to_string());
                let resp = RouteProxy::forward_up(&up, r#"{"op":"list"}"#)?;
                let infos = parse_list(&resp)
                    .map_err(|e| EngineError::Unavailable(format!("{add}: malformed list: {e}")))?;
                if !infos.is_empty() {
                    return Err(EngineError::BadRequest(format!(
                        "rebalance: new shard {add:?} is not empty ({} databases); \
                         point it at a fresh data directory",
                        infos.len()
                    )));
                }
                let mut slots = self.slots.write();
                let k = slots.len();
                slots.push(UpstreamSlot {
                    upstream: Arc::new(up),
                    standby: standby.map(str::to_string),
                });
                drop(slots);
                // Persist the grown membership *before* any data moves:
                // a crash mid-move must restart knowing about the shard
                // that already holds shipped databases.
                self.persist_topology()?;
                (k, true)
            }
        };
        let new_up = self.upstream(new_index);
        let moving = if grows_membership {
            self.front.topology().read().names_moving_to_new_shard()
        } else {
            // Resuming after a router restart: the persisted membership
            // already routes over `slots.len()` shards, so the remaining
            // work is the stranded tail — databases HRW-homed on this
            // member but still placed where the pre-grow layout left
            // them (re-seeded from the upstream catalogs at startup).
            self.front.topology().read().names_stranded_off(new_index)
        };
        for name in &moving {
            self.move_database(name, new_index, &new_up)?;
        }
        if grows_membership {
            let mut topo = self.front.topology().write();
            topo.set_shards(new_index + 1);
            topo.bump_epoch();
        }
        self.persist_topology()?;
        Ok(EngineResponse::Rebalanced {
            epoch: self.front.epoch(),
            shards: self.front.shards(),
            moved: moving,
        })
    }

    /// Applies a resumed rebalance's `standby` argument to the slot it
    /// resumes: an unset slot adopts (and persists) the provided
    /// standby, a matching one is a no-op, and a conflicting one is
    /// refused — never silently ignored.
    fn reconcile_standby(&self, k: usize, standby: Option<&str>) -> Result<(), EngineError> {
        let Some(want) = standby else { return Ok(()) };
        {
            let mut slots = self.slots.write();
            match &slots[k].standby {
                Some(have) if have == want => return Ok(()),
                Some(have) => {
                    let have = have.clone();
                    return Err(EngineError::BadRequest(format!(
                        "rebalance: shard {k} ({add}) already has standby {have:?}; \
                         refusing to replace it with {want:?} — edit the topology \
                         file to change standbys",
                        add = slots[k].upstream.addr(),
                    )));
                }
                None => slots[k].standby = Some(want.to_string()),
            }
        }
        self.persist_topology()
    }

    /// Ships one database to the new shard and commits its placement
    /// flip. Mutations are blocked (structured retry) from `begin_move`
    /// to `finish_move`, and mutations already past the check are fenced
    /// out via `move_gate` before the snapshot is fetched; reads keep
    /// hitting the old shard, whose copy is thus frozen, so the shipped
    /// snapshot can't miss an acked write.
    fn move_database(
        &self,
        name: &str,
        new_index: usize,
        new_up: &Upstream,
    ) -> Result<(), EngineError> {
        let old = self.front.shard_of(name);
        self.front.topology().write().begin_move(name);
        // The fence: every mutation that passed the mid-move check
        // before `begin_move` holds the gate for read across its
        // forward, so this write acquisition returns only once each of
        // them has been applied (and acked) by the old shard — the copy
        // exported below misses none of them. Later mutations see the
        // moving flag and are refused with the structured retry.
        drop(self.move_gate.write());
        if let Err(e) = self.ship_database(name, old, new_up) {
            self.front.topology().write().abort_move(name);
            return Err(e);
        }
        self.front.topology().write().finish_move(name, new_index);
        self.moves.fetch_add(1, Ordering::Relaxed);
        self.persist_topology()?;
        // Drop the source copy — addressed at the old shard directly,
        // never routed: the placement already points at the new one.
        let drop_line = Json::obj([
            ("name", Json::from(name.to_string())),
            ("op", Json::from("drop_db")),
        ])
        .to_string();
        let resp = RouteProxy::forward_up(&self.upstream(old), &drop_line)?;
        if !is_ok(&resp) {
            return Err(EngineError::Storage(format!(
                "rebalance: moved {name:?} to shard {new_index} but dropping it from \
                 shard {old} failed: {resp}; drop it there manually, then re-issue \
                 the rebalance"
            )));
        }
        Ok(())
    }

    /// The shipping leg: `fetch_snapshot` from the old shard,
    /// `install_snapshot` on the new upstream (version, plan and
    /// violations preserved exactly — answers stay bit-identical).
    fn ship_database(&self, name: &str, old: usize, new_up: &Upstream) -> Result<(), EngineError> {
        let fetch = Json::obj([
            ("db", Json::from(name.to_string())),
            ("op", Json::from("fetch_snapshot")),
        ])
        .to_string();
        let resp = RouteProxy::forward_up(&self.upstream(old), &fetch)?;
        if !is_ok(&resp) {
            return Err(EngineError::Storage(format!(
                "rebalance: fetch_snapshot of {name:?} from shard {old} refused: {resp}"
            )));
        }
        let Some(image) = resp.get("image").and_then(Json::as_str) else {
            return Err(EngineError::Storage(format!(
                "rebalance: fetch_snapshot of {name:?} returned no image"
            )));
        };
        let install = Json::obj([
            ("db", Json::from(name.to_string())),
            ("image", Json::from(image.to_string())),
            ("op", Json::from("install_snapshot")),
        ])
        .to_string();
        let resp = RouteProxy::forward_up(new_up, &install)?;
        if !is_ok(&resp) {
            return Err(EngineError::Storage(format!(
                "rebalance: install_snapshot of {name:?} on {} refused: {resp}",
                new_up.addr()
            )));
        }
        Ok(())
    }

    /// One background probe sweep: a lightweight `stats` exchange per
    /// upstream (hot re-dialing recovered ones), tracking consecutive
    /// failures in `fails` (resized to the slot count); a primary at
    /// [`FAILOVER_AFTER`] consecutive failures with a standby configured
    /// is failed over. Public so tests drive the sweep deterministically
    /// instead of racing the `--probe-ms` thread.
    pub fn probe_once(&self, fails: &mut Vec<u32>) {
        let slots: Vec<(Arc<Upstream>, bool)> = self
            .slots
            .read()
            .iter()
            .map(|s| (s.upstream.clone(), s.standby.is_some()))
            .collect();
        fails.resize(slots.len(), 0);
        for (k, (up, has_standby)) in slots.into_iter().enumerate() {
            if up.probe().is_ok() {
                fails[k] = 0;
                continue;
            }
            fails[k] += 1;
            if has_standby && fails[k] >= FAILOVER_AFTER {
                match self.fail_over(k) {
                    Ok(()) => fails[k] = 0,
                    // Refused (lagging or unreachable standby): log once
                    // at the threshold, then keep retrying each sweep —
                    // a lagging standby stays refused, an unreachable
                    // one may come back.
                    Err(e) if fails[k] == FAILOVER_AFTER => eprintln!(
                        "{}",
                        Json::obj([
                            ("error", Json::from(e.to_string())),
                            ("event", Json::from("failover_refused")),
                            ("shard", Json::from(k as u64)),
                        ])
                    ),
                    Err(_) => {}
                }
            }
        }
    }

    /// Fails shard `k` over to its standby: the standby (which replayed
    /// every acked mutation via the serve side's `--replicate-to`
    /// synchronous op-stream) replaces the primary at a new epoch.
    /// Refused if no standby is configured, if the primary last reported
    /// a non-zero `replication_lag` (a standby that detached mid-stream
    /// missed acked writes — promoting it would silently lose them), or
    /// if the standby itself is unreachable — a failover must never
    /// trade a dead shard for a dead or diverged one.
    pub fn fail_over(&self, k: usize) -> Result<(), EngineError> {
        let _admin = self.admin.lock();
        let (dead, standby, lag) = {
            let slots = self.slots.read();
            let slot = slots
                .get(k)
                .ok_or_else(|| EngineError::BadRequest(format!("fail_over: no shard {k}")))?;
            let Some(standby) = slot.standby.clone() else {
                return Err(EngineError::Unavailable(format!(
                    "shard {k} ({}) has no standby to fail over to",
                    slot.upstream.addr()
                )));
            };
            (
                slot.upstream.addr().to_string(),
                standby,
                slot.upstream.probed_lag(),
            )
        };
        if lag > 0 {
            return Err(EngineError::Unavailable(format!(
                "shard {k} standby {standby}: the primary last reported \
                 replication_lag {lag} — the standby detached mid-stream and \
                 missed acked writes; refusing to promote it (rebuild the \
                 standby from the primary's store instead)"
            )));
        }
        let up = Upstream::new(standby.clone());
        up.probe()
            .map_err(|e| EngineError::Unavailable(format!("shard {k} standby {standby}: {e}")))?;
        {
            let mut slots = self.slots.write();
            slots[k].upstream = Arc::new(up);
            slots[k].standby = None;
        }
        let epoch = self.front.topology().write().bump_epoch();
        self.persist_topology()?;
        eprintln!(
            "{}",
            Json::obj([
                ("epoch", Json::from(epoch)),
                ("event", Json::from("failover")),
                ("from", Json::from(dead)),
                ("shard", Json::from(k as u64)),
                ("to", Json::from(standby)),
            ])
        );
        Ok(())
    }

    /// Writes the membership record to `--topology PATH` (tmp+rename, so
    /// a crash never leaves a torn file). A no-op without the flag.
    fn persist_topology(&self) -> Result<(), EngineError> {
        let Some(path) = self.topology_path.as_deref() else {
            return Ok(());
        };
        let json = {
            let slots = self.slots.read();
            Json::obj([
                ("epoch", Json::from(self.front.epoch())),
                (
                    "standbys",
                    Json::Arr(
                        slots
                            .iter()
                            .map(|s| Json::from(s.standby.clone().unwrap_or_else(|| "-".into())))
                            .collect(),
                    ),
                ),
                (
                    "upstreams",
                    Json::Arr(
                        slots
                            .iter()
                            .map(|s| Json::from(s.upstream.addr().to_string()))
                            .collect(),
                    ),
                ),
            ])
        };
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, format!("{json}\n"))
            .and_then(|()| std::fs::rename(&tmp, path))
            .map_err(|e| EngineError::Storage(format!("topology file {}: {e}", path.display())))
    }
}

/// Loads a persisted membership record. Malformed content is a hard
/// [`EngineError::Storage`] — a router must never guess its topology.
fn load_topology(path: &Path) -> Result<PersistedTopology, EngineError> {
    let bad = |m: String| EngineError::Storage(format!("topology file {}: {m}", path.display()));
    let text = std::fs::read_to_string(path).map_err(|e| bad(e.to_string()))?;
    let v = crate::json::parse(text.trim()).map_err(|e| bad(e.to_string()))?;
    let epoch = v
        .get("epoch")
        .and_then(Json::as_u64)
        .ok_or_else(|| bad("missing \"epoch\"".into()))?;
    let Some(Json::Arr(ups)) = v.get("upstreams") else {
        return Err(bad("missing \"upstreams\" array".into()));
    };
    let upstreams = ups
        .iter()
        .map(|u| {
            u.as_str()
                .map(str::to_string)
                .ok_or_else(|| bad("non-string upstream entry".into()))
        })
        .collect::<Result<Vec<_>, _>>()?;
    if upstreams.is_empty() {
        return Err(bad("no upstreams".into()));
    }
    let standbys = match v.get("standbys") {
        Some(Json::Arr(entries)) => entries
            .iter()
            .map(|s| {
                s.as_str()
                    .map(|s| (s != "-").then(|| s.to_string()))
                    .ok_or_else(|| bad("non-string standby entry".into()))
            })
            .collect::<Result<Vec<_>, _>>()?,
        None => Vec::new(),
        Some(_) => return Err(bad("\"standbys\" is not an array".into())),
    };
    Ok(PersistedTopology {
        epoch,
        upstreams,
        standbys,
    })
}

/// Spawns the `--probe-ms` background prober: a detached thread holding
/// only a weak handle (it dies with the router), sweeping every upstream
/// each interval via [`RouteProxy::probe_once`].
fn spawn_prober(proxy: &Arc<RouteProxy>, probe_ms: u64) {
    let weak = Arc::downgrade(proxy);
    let interval = Duration::from_millis(probe_ms.max(1));
    let _ = std::thread::Builder::new()
        .name("ocqa-probe".into())
        .spawn(move || {
            let mut fails: Vec<u32> = Vec::new();
            loop {
                std::thread::sleep(interval);
                let Some(proxy) = weak.upgrade() else { return };
                proxy.probe_once(&mut fails);
            }
        });
}

/// Relays one routed subscription's pushed frames from its dedicated
/// upstream session to the client **verbatim**. An upstream
/// `"event":"closed"` frame ends the subscription (relayed, then
/// deregistered); a dead upstream synthesizes one with reason
/// `"upstream"` — unless the subscription was already torn down locally
/// (unsubscribe, client disconnect), in which case the client hears
/// nothing further.
fn spawn_relay(
    mut stream: StreamSession,
    subs: Arc<Mutex<HashMap<SubKey, TcpStream>>>,
    key: SubKey,
    session: PushSession,
) -> std::io::Result<()> {
    let run = move || loop {
        match stream.read() {
            Ok(Frame::Line(frame)) => {
                let ended = crate::json::parse(&frame)
                    .ok()
                    .map(|v| v.get("event").and_then(Json::as_str) == Some("closed"))
                    .unwrap_or(false);
                if ended {
                    // Deregister *before* delivering the terminal frame:
                    // a subscriber reacting to it with `unsubscribe`
                    // must get the canonical unknown-subscription error,
                    // exactly like an in-process session whose shard
                    // already removed the registration.
                    if subs.lock().remove(&key).is_some() {
                        session.remove_sub();
                    }
                    session.push(frame);
                    return;
                }
                if session.push(frame) == PushOutcome::Closed {
                    return; // client gone; on_close owns the teardown
                }
            }
            Ok(Frame::Eof | Frame::TooLong | Frame::NotUtf8) | Err(_) => {
                // The upstream died (or spoke garbage). If the
                // subscription is still live locally, tell the client —
                // a killed upstream must end as a structured close, not
                // a silent hang.
                if subs.lock().remove(&key).is_some() {
                    session.remove_sub();
                    session.push(subscribe::closed_frame(&key.1, key.2, "upstream"));
                }
                return;
            }
        }
    };
    std::thread::Builder::new()
        .name("ocqa-relay".into())
        .spawn(run)
        .map(|_| ())
}

impl LineService for RouteProxy {
    fn serve_line(&self, line: &str) -> String {
        self.handle_line(line)
    }

    fn serve_open_line(&self, line: &str, session: &PushSession) -> String {
        self.handle_open_line(line, session)
    }
}

/// Renders an error response, shard-tagged like the in-process engine
/// tags errors from routed requests.
fn error_line(shard: Option<u32>, e: EngineError) -> String {
    let mut json = EngineResponse::Error(e).to_json();
    if let Some(k) = shard {
        json.set("shard", Json::from(u64::from(k)));
    }
    json.to_string()
}

fn is_ok(resp: &Json) -> bool {
    resp.get("ok").and_then(Json::as_bool) == Some(true)
}

/// Parses an upstream `list` response into catalog infos.
fn parse_list(v: &Json) -> Result<Vec<DatabaseInfo>, String> {
    if !is_ok(v) {
        return Err(format!("upstream refused list: {v}"));
    }
    let Some(Json::Arr(dbs)) = v.get("databases") else {
        return Err("no databases array".into());
    };
    dbs.iter().map(parse_info).collect()
}

fn parse_info(v: &Json) -> Result<DatabaseInfo, String> {
    let field = |key: &str| v.get(key).ok_or_else(|| format!("missing {key:?}"));
    let num = |key: &str| field(key)?.as_u64().ok_or_else(|| format!("bad {key:?}"));
    Ok(DatabaseInfo {
        name: field("name")?.as_str().ok_or("bad \"name\"")?.to_string(),
        version: num("version")?,
        facts: num("facts")? as usize,
        violations: num("violations")? as usize,
        plan: field("plan")?
            .as_str()
            .and_then(PlanKind::parse)
            .ok_or("bad \"plan\"")?,
    })
}

/// Parses an upstream `stats` response into its backend label, the
/// per-shard counter block the front door sums, and the upstream's
/// deployment-level `replication_lag` (tolerantly `0` when absent).
fn parse_stats(v: &Json) -> Result<(String, ShardStats, u64), String> {
    if !is_ok(v) {
        return Err(format!("upstream refused stats: {v}"));
    }
    let num = |key: &str| {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing counter {key:?}"))
    };
    let stats = ShardStats {
        answers: num("answers")?,
        walks: num("walks")?,
        coalesced: num("coalesced")?,
        databases: num("databases")? as usize,
        prepared: num("prepared")? as usize,
        workers: num("workers")? as usize,
        subscriptions: num("subscriptions")? as usize,
        cache: crate::cache::CacheStats {
            hits: num("cache_hits")?,
            misses: num("cache_misses")?,
            dominated_hits: num("cache_dominated_hits")?,
            invalidated: num("cache_invalidated")?,
            evicted: num("cache_evicted")?,
            stale_drops: num("cache_stale_drops")?,
            expired: num("cache_expired")?,
        },
    };
    let backend = v
        .get("backend")
        .and_then(Json::as_str)
        .ok_or("missing \"backend\"")?
        .to_string();
    let lag = v.get("replication_lag").and_then(Json::as_u64).unwrap_or(0);
    Ok((backend, stats, lag))
}

/// Parses an upstream `metrics` response, merging the upstream's shards
/// (usually just one — each upstream is an `ocqa serve --shards 1`, but
/// a multi-shard upstream aggregates correctly too, because histogram
/// merging is associative) into one snapshot for its global shard slot,
/// plus the upstream's replication lag (tolerantly `0` when absent —
/// the field only exists once `--replicate-to` ships).
fn parse_metrics(v: &Json) -> Result<(MetricsSnapshot, u64), String> {
    if !is_ok(v) {
        return Err(format!("upstream refused metrics: {v}"));
    }
    let Some(Json::Arr(shards)) = v.get("per_shard") else {
        return Err("no per_shard array".into());
    };
    let mut merged = MetricsSnapshot::default();
    for entry in shards {
        merged.merge(&MetricsSnapshot::from_json(entry)?);
    }
    let lag = v.get("replication_lag").and_then(Json::as_u64).unwrap_or(0);
    Ok((merged, lag))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_policy_matches_request_kinds() {
        let req = parse_request(r#"{"op":"ping"}"#).unwrap().1;
        assert_eq!(route_of(&req), RouteTarget::Local);
        let req = parse_request(r#"{"op":"create_db","name":"kv"}"#)
            .unwrap()
            .1;
        assert_eq!(route_of(&req), RouteTarget::Database("kv"));
        let req = parse_request(r#"{"op":"answer","db":"kv","query":"(x) <- R(x)"}"#)
            .unwrap()
            .1;
        assert_eq!(route_of(&req), RouteTarget::Database("kv"));
        let req = parse_request(r#"{"op":"prepare","query":"(x) <- R(x)"}"#)
            .unwrap()
            .1;
        assert_eq!(route_of(&req), RouteTarget::Authority);
        let req = parse_request(r#"{"op":"prepared_get","id":"q1"}"#)
            .unwrap()
            .1;
        assert_eq!(route_of(&req), RouteTarget::Authority);
        let req = parse_request(r#"{"op":"list"}"#).unwrap().1;
        assert_eq!(route_of(&req), RouteTarget::FanOut);
        let req = parse_request(r#"{"op":"stats"}"#).unwrap().1;
        assert_eq!(route_of(&req), RouteTarget::FanOut);
        let req = parse_request(r#"{"op":"metrics"}"#).unwrap().1;
        assert_eq!(route_of(&req), RouteTarget::FanOut);
        assert_eq!(req.op_name(), "metrics");
    }

    #[test]
    fn seed_rejects_duplicate_recovery() {
        let front = FrontDoor::new(3);
        front.seed(0, ["alpha", "bravo"]).unwrap();
        front.seed(1, ["charlie"]).unwrap();
        let err = front.seed(2, ["bravo"]).unwrap_err();
        assert!(err.to_string().contains("shard 0 and shard 2"), "{err}");
        // Seeded placements win over the router's assignment.
        assert_eq!(front.shard_of("alpha"), 0);
        assert_eq!(front.shard_of("charlie"), 1);
    }

    #[test]
    fn placements_follow_create_and_drop() {
        let front = FrontDoor::new(4);
        let routed = front.shard_of("kv");
        // A create pins the name even somewhere the router wouldn't put it.
        let pinned = (routed + 1) % 4;
        front.record_create("kv", pinned);
        assert_eq!(front.shard_of("kv"), pinned);
        front.record_drop("kv");
        assert_eq!(front.shard_of("kv"), routed, "drop frees the name");
    }

    #[test]
    fn merge_lists_sorts_across_shards() {
        let info = |name: &str| DatabaseInfo {
            name: name.into(),
            version: 1,
            facts: 0,
            violations: 0,
            plan: PlanKind::Monolithic,
        };
        let merged = FrontDoor::merge_lists([
            vec![info("delta"), info("echo")],
            vec![info("alpha")],
            vec![info("charlie")],
        ]);
        let names: Vec<&str> = merged.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, ["alpha", "charlie", "delta", "echo"]);
    }
}
