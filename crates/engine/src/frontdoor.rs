//! The transport-agnostic front door, and the multi-process router
//! built on it.
//!
//! PR 4 split the serving path into front door → router → shard. This
//! module extracts everything the front door does that is **independent
//! of how shards are reached** — request parsing, routing policy,
//! placement bookkeeping, duplicate-recovery detection, `list` merging,
//! `stats` summation, and `shard`-field injection — into [`FrontDoor`],
//! so the in-process engine ([`crate::Engine`] over [`ShardEngine`]s)
//! and the multi-process router ([`RouteProxy`] over
//! [`Upstream`] NDJSON/TCP clients) share one implementation instead of
//! forking it. The determinism contract rides on this: both deployments
//! route every name through the same [`Router`] and merge fan-outs the
//! same way, so moving a shard out of process can never change an
//! estimate.
//!
//! [`ShardEngine`]: crate::shard::ShardEngine
//!
//! # The route proxy
//!
//! [`RouteProxy`] is the `ocqa route` process: a standalone front door
//! proxying the NDJSON protocol to N upstream shard servers, each an
//! ordinary `ocqa serve --shards 1` over its own `shard-<k>/` store.
//! Per-database requests are forwarded verbatim to the owning upstream
//! and the response's `shard` field rewritten from the upstream's local
//! `0` to the global shard index; `list`/`stats` fan out and merge
//! exactly like the in-process engine. Because the JSON writer is
//! deterministic (sorted keys, shortest-round-trip numbers), a response
//! proxied through `ocqa route` is **byte-identical** to the same
//! request served by `ocqa serve --shards N` — pinned by the
//! `route` integration tests.
//!
//! Prepared-query handles keep their front-door scope: `prepare` (and
//! the `prepared_get` lookup op) are served by upstream 0, the handle
//! authority, and an `answer` carrying a `prepared` handle destined for
//! another upstream is rewritten to its query text first, resolved via
//! `prepared_get` on every request — exactly the per-answer authority
//! lookup the in-process front door performs, so handle lifetime
//! (including the registry's capacity eviction) behaves identically in
//! both deployments.
//!
//! # Routed subscriptions
//!
//! A `subscribe` through the router opens a **dedicated** upstream
//! session (never the request pool — pushed frames arrive on it
//! asynchronously) and a relay thread forwards every pushed line to the
//! client *verbatim*: estimate frames carry no deployment-specific
//! fields, so routed subscribers see bytes identical to in-process
//! ones. The per-connection subscription ceiling is enforced at the
//! router (each routed subscription is alone on its upstream session,
//! so the upstream's own limit never trips), and a dead upstream turns
//! into a structured `"event":"closed"` frame with reason `"upstream"`
//! rather than a silent hang.

use crate::catalog::DatabaseInfo;
use crate::error::EngineError;
use crate::json::Json;
use crate::obs::{MetricsSnapshot, SlowLog};
use crate::planner::PlanKind;
use crate::proto::{EngineRequest, EngineResponse, EngineStatsPayload, MetricsPayload, QueryRef};
use crate::router::Router;
use crate::server::{Frame, LineService};
use crate::shard::ShardStats;
use crate::subscribe::{self, PushOutcome, PushSession};
use crate::upstream::{StreamSession, Upstream};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Where the front door sends a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteTarget<'a> {
    /// Served by the front door itself (`ping`).
    Local,
    /// Routed to the shard owning this database name.
    Database(&'a str),
    /// Served by shard 0, the prepared-handle authority
    /// (`prepare` / `prepared_get`).
    Authority,
    /// Fanned out over every shard and merged
    /// (`list` / `stats` / `metrics`).
    FanOut,
}

/// The routing policy: which shard serves each request kind. One
/// function, used by both the in-process engine and the route proxy, so
/// the policies cannot drift apart.
pub fn route_of(req: &EngineRequest) -> RouteTarget<'_> {
    match req {
        EngineRequest::Ping => RouteTarget::Local,
        EngineRequest::CreateDb { name, .. } | EngineRequest::DropDb { name } => {
            RouteTarget::Database(name)
        }
        EngineRequest::Insert { db, .. }
        | EngineRequest::Delete { db, .. }
        | EngineRequest::Answer { db, .. }
        | EngineRequest::Explain { db, .. }
        | EngineRequest::Subscribe { db, .. }
        | EngineRequest::Unsubscribe { db, .. } => RouteTarget::Database(db),
        EngineRequest::Prepare { .. } | EngineRequest::PreparedGet { .. } => RouteTarget::Authority,
        EngineRequest::List | EngineRequest::Stats | EngineRequest::Metrics => RouteTarget::FanOut,
    }
}

/// Parses one protocol line into a request (plus the raw JSON value, so
/// a proxy can rewrite fields without re-deriving them).
pub fn parse_request(line: &str) -> Result<(Json, EngineRequest), EngineError> {
    let v = crate::json::parse(line).map_err(|e| EngineError::BadRequest(e.to_string()))?;
    let req = EngineRequest::from_json(&v)?;
    Ok((v, req))
}

/// Transport-agnostic front-door state: the deterministic router plus
/// the placement table, request counter and fan-out merge logic.
pub struct FrontDoor {
    router: Router,
    /// Actual placements, seeded from recovery: a database restored on a
    /// shard stays there even if the router would place a *new* database
    /// of that name elsewhere (e.g. after a shard-count change). New
    /// names fall through to the router; drops clear their entry.
    placements: RwLock<HashMap<String, usize>>,
    requests: AtomicU64,
    started: Instant,
}

impl FrontDoor {
    /// A front door over `shards` shards (at least 1), with no seeded
    /// placements.
    pub fn new(shards: usize) -> FrontDoor {
        FrontDoor {
            router: Router::new(shards),
            placements: RwLock::new(HashMap::new()),
            requests: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Number of shards behind this front door.
    pub fn shards(&self) -> usize {
        self.router.shards()
    }

    /// Seeds recovered placements for one shard. A name already seeded
    /// by **another** shard is a hard error (a resharding gone wrong),
    /// never a silent coin toss.
    pub fn seed<'a>(
        &self,
        shard: usize,
        names: impl IntoIterator<Item = &'a str>,
    ) -> Result<(), EngineError> {
        let mut placements = self.placements.write();
        for name in names {
            if let Some(other) = placements.insert(name.to_string(), shard) {
                return Err(EngineError::Storage(format!(
                    "database {name:?} recovered on shard {other} and shard {shard}; \
                     rebalance the data directories before serving"
                )));
            }
        }
        Ok(())
    }

    /// The shard serving `name`: its restored/created placement if one
    /// exists, the router's deterministic assignment otherwise.
    pub fn shard_of(&self, name: &str) -> usize {
        if let Some(k) = self.placements.read().get(name) {
            return *k;
        }
        self.router.shard_for(name)
    }

    /// Records a successful `create_db` placement.
    pub fn record_create(&self, name: &str, shard: usize) {
        self.placements.write().insert(name.to_string(), shard);
    }

    /// Clears a dropped database's placement.
    pub fn record_drop(&self, name: &str) {
        self.placements.write().remove(name);
    }

    /// Counts one front-door request. Shards never count requests —
    /// only the front door does — so a retried rejection contributes one
    /// tick per attempt and nothing double-counts.
    pub fn begin_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests handled so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Milliseconds since this front door was built (the `stats`
    /// `uptime_ms` field — each deployment reports its own).
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64
    }

    /// Merges per-shard `list` results into one catalog view, sorted by
    /// name (the fan-out contract: every shard read exactly once).
    pub fn merge_lists(lists: impl IntoIterator<Item = Vec<DatabaseInfo>>) -> Vec<DatabaseInfo> {
        let mut all: Vec<DatabaseInfo> = lists.into_iter().flatten().collect();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }

    /// Sums per-shard counters into the engine-wide `stats` payload:
    /// the front door's own request counter plus each shard's local
    /// counters, each shard read **exactly once**.
    pub fn sum_stats(&self, backend: String, per_shard: &[ShardStats]) -> EngineStatsPayload {
        let mut out = EngineStatsPayload {
            backend,
            requests: self.requests(),
            answers: 0,
            walks: 0,
            coalesced: 0,
            workers: 0,
            databases: 0,
            prepared: 0,
            shards: self.shards(),
            subscriptions: 0,
            cache: Default::default(),
            uptime_ms: self.uptime_ms(),
            build: env!("CARGO_PKG_VERSION").to_string(),
        };
        for s in per_shard {
            out.answers += s.answers;
            out.walks += s.walks;
            out.coalesced += s.coalesced;
            out.workers += s.workers;
            out.databases += s.databases;
            out.prepared += s.prepared;
            out.subscriptions += s.subscriptions as u64;
            out.cache.merge(&s.cache);
        }
        out
    }

    /// Adds each listed database's owning shard to a rendered `list`
    /// response (protocol-layer `shard` injection).
    pub fn tag_list_shards(&self, json: &mut Json) {
        let Json::Obj(obj) = json else { return };
        let Some(Json::Arr(dbs)) = obj.get_mut("databases") else {
            return;
        };
        for db in dbs {
            let Some(name) = db.get("name").and_then(Json::as_str) else {
                continue;
            };
            let shard = self.shard_of(name) as u64;
            db.set("shard", Json::from(shard));
        }
    }
}

/// A routed subscription's identity: (client session id, db, sub id).
type SubKey = (u64, String, u64);

/// The `ocqa route` engine: a standalone front door proxying the NDJSON
/// protocol to remote shard servers. See the module docs.
pub struct RouteProxy {
    front: FrontDoor,
    upstreams: Vec<Upstream>,
    slow: SlowLog,
    /// Per-connection subscription ceiling (`--max-subs-per-conn`),
    /// enforced at the router before an upstream is dialed.
    max_subs: usize,
    /// Live routed subscriptions: each entry holds the shutdown handle
    /// of its dedicated upstream session. Removal is the "still live"
    /// token — whichever path removes the entry (unsubscribe, client
    /// disconnect, upstream close) owns the teardown, so the relay never
    /// synthesizes a terminal frame for an already-ended subscription.
    subs: Arc<Mutex<HashMap<SubKey, TcpStream>>>,
}

/// Outcome of resolving a prepared handle against upstream 0.
enum Resolved {
    /// The handle's query text.
    Text(String),
    /// Upstream 0 answered with a protocol error (e.g. unknown handle):
    /// the response to relay, before shard tagging.
    Refused(Json),
    /// Upstream 0 was unreachable.
    Transport(EngineError),
}

impl RouteProxy {
    /// Connects to the given upstream shard servers (in shard order:
    /// the first address is shard 0, the prepared-handle authority) and
    /// seeds the placement table from each upstream's current catalog.
    /// Fails if any upstream is unreachable or one database name is
    /// served by two upstreams.
    pub fn connect(addrs: Vec<String>) -> Result<Arc<RouteProxy>, EngineError> {
        RouteProxy::connect_with(addrs, 0, 64)
    }

    /// [`connect`](RouteProxy::connect) with a `--slow-ms` trace
    /// threshold (proxied requests at or above `slow_ms` milliseconds
    /// emit one transport-level trace event on stderr; `0` disables)
    /// and a `--max-subs-per-conn` subscription ceiling.
    pub fn connect_with(
        addrs: Vec<String>,
        slow_ms: u64,
        max_subs: usize,
    ) -> Result<Arc<RouteProxy>, EngineError> {
        if addrs.is_empty() {
            return Err(EngineError::BadRequest(
                "route needs at least one upstream".into(),
            ));
        }
        let upstreams: Vec<Upstream> = addrs.into_iter().map(Upstream::new).collect();
        let front = FrontDoor::new(upstreams.len());
        for (k, up) in upstreams.iter().enumerate() {
            let resp = up.exchange(r#"{"op":"list"}"#)?;
            let infos = crate::json::parse(&resp)
                .map_err(|e| e.to_string())
                .and_then(|v| parse_list(&v))
                .map_err(|e| {
                    EngineError::Unavailable(format!("{}: malformed list: {e}", up.addr()))
                })?;
            front.seed(k, infos.iter().map(|i| i.name.as_str()))?;
        }
        Ok(Arc::new(RouteProxy {
            front,
            upstreams,
            slow: SlowLog::new(slow_ms),
            max_subs,
            subs: Arc::new(Mutex::new(HashMap::new())),
        }))
    }

    /// Number of upstream shard servers.
    pub fn shards(&self) -> usize {
        self.upstreams.len()
    }

    /// Number of databases currently placed across the upstreams.
    pub fn databases(&self) -> usize {
        self.front.placements.read().len()
    }

    /// The upstream handles (address, health, reconnect counters).
    pub fn upstreams(&self) -> &[Upstream] {
        &self.upstreams
    }

    /// The shard serving `name` (placement table, else the router).
    pub fn shard_of(&self, name: &str) -> usize {
        self.front.shard_of(name)
    }

    /// Handles one raw protocol line, exactly like
    /// [`Engine::handle_line`](crate::Engine::handle_line) — but by
    /// proxying to the owning upstream instead of calling into an
    /// in-process shard.
    pub fn handle_line(&self, line: &str) -> String {
        let t0 = Instant::now();
        self.front.begin_request();
        let (raw, req) = match parse_request(line) {
            Ok(parsed) => parsed,
            Err(e) => return error_line(None, e),
        };
        let op = req.op_name();
        let out = match route_of(&req) {
            RouteTarget::Local => EngineResponse::Pong.to_json().to_string(),
            RouteTarget::Authority => self.proxy_authority(line),
            RouteTarget::Database(name) => {
                let k = self.front.shard_of(name);
                self.proxy_database(line, raw, &req, k)
            }
            RouteTarget::FanOut => match &req {
                EngineRequest::List => self.fan_out_list(),
                EngineRequest::Metrics => self.fan_out_metrics(),
                _ => self.fan_out_stats(),
            },
        };
        // Transport-level slow tracing: total proxy time, including the
        // upstream's own service time. The stage breakdown lives in the
        // upstream's log — this event identifies *which* routed request
        // was slow and where it went.
        let elapsed = t0.elapsed();
        if self.slow.is_slow(elapsed) {
            self.slow.emit(Json::obj([
                ("op", Json::from(op)),
                ("proxy", Json::from(true)),
                (
                    "elapsed_ms",
                    Json::from(elapsed.as_millis().min(u128::from(u64::MAX)) as u64),
                ),
            ]));
        }
        out
    }

    /// Forwards a line to upstream `k` and parses the response (every
    /// well-behaved upstream emits one JSON object per line).
    fn forward(&self, k: usize, line: &str) -> Result<Json, EngineError> {
        let resp = self.upstreams[k].exchange(line)?;
        crate::json::parse(&resp).map_err(|e| {
            EngineError::Unavailable(format!(
                "{}: malformed response: {e}",
                self.upstreams[k].addr()
            ))
        })
    }

    /// `prepare` / `prepared_get`: upstream 0 is the handle authority.
    fn proxy_authority(&self, line: &str) -> String {
        match self.forward(0, line) {
            Ok(mut resp) => {
                resp.set("shard", Json::from(0u64));
                resp.to_string()
            }
            Err(e) => error_line(Some(0), e),
        }
    }

    /// Per-database ops: forward to the owning upstream, rewrite the
    /// `shard` tag, and mirror the in-process placement bookkeeping.
    fn proxy_database(&self, line: &str, raw: Json, req: &EngineRequest, k: usize) -> String {
        // Prepared handles live on upstream 0: rewrite to the query text
        // before routing elsewhere, so any upstream can serve any handle.
        let rewritten: String;
        let line = match req {
            EngineRequest::Answer {
                query: QueryRef::Prepared(id),
                ..
            } if k != 0 => match self.resolve_prepared(id) {
                Resolved::Text(text) => {
                    let mut raw = raw;
                    raw.remove("prepared");
                    raw.set("query", Json::from(text));
                    rewritten = raw.to_string();
                    &rewritten
                }
                Resolved::Refused(mut resp) => {
                    resp.set("shard", Json::from(k as u64));
                    return resp.to_string();
                }
                Resolved::Transport(e) => return error_line(Some(k as u32), e),
            },
            _ => line,
        };
        match self.forward(k, line) {
            Ok(mut resp) => {
                if is_ok(&resp) {
                    match req {
                        EngineRequest::CreateDb { name, .. } => self.front.record_create(name, k),
                        EngineRequest::DropDb { name } => self.front.record_drop(name),
                        _ => {}
                    }
                }
                resp.set("shard", Json::from(k as u64));
                resp.to_string()
            }
            Err(e) => error_line(Some(k as u32), e),
        }
    }

    /// The text behind a prepared handle, resolved against upstream 0
    /// on every request — the same per-answer authority lookup the
    /// in-process front door makes, so handle lifetime (including the
    /// registry's capacity eviction) behaves identically.
    fn resolve_prepared(&self, id: &str) -> Resolved {
        let lookup = Json::obj([("op", Json::from("prepared_get")), ("id", Json::from(id))]);
        let resp = match self.forward(0, &lookup.to_string()) {
            Ok(resp) => resp,
            Err(e) => return Resolved::Transport(e),
        };
        if !is_ok(&resp) {
            return Resolved::Refused(resp);
        }
        match resp.get("query").and_then(Json::as_str) {
            Some(text) => Resolved::Text(text.to_string()),
            None => Resolved::Transport(EngineError::Unavailable(format!(
                "{}: prepared_get returned no query text",
                self.upstreams[0].addr()
            ))),
        }
    }

    /// `list`: fan out, merge and sort across upstreams, tag shards. A
    /// dead upstream fails the whole request — an incomplete catalog
    /// must never be presented as complete.
    fn fan_out_list(&self) -> String {
        let mut lists = Vec::with_capacity(self.upstreams.len());
        for (k, up) in self.upstreams.iter().enumerate() {
            let resp = match self.forward(k, r#"{"op":"list"}"#) {
                Ok(resp) => resp,
                Err(e) => return error_line(None, e),
            };
            match parse_list(&resp) {
                Ok(infos) => lists.push(infos),
                Err(e) => {
                    return error_line(
                        None,
                        EngineError::Unavailable(format!("{}: malformed list: {e}", up.addr())),
                    )
                }
            }
        }
        let mut json = EngineResponse::List(FrontDoor::merge_lists(lists)).to_json();
        self.front.tag_list_shards(&mut json);
        json.to_string()
    }

    /// `stats`: fan out and sum per-upstream counters exactly once.
    fn fan_out_stats(&self) -> String {
        let mut backend = String::new();
        let mut per_shard = Vec::with_capacity(self.upstreams.len());
        for (k, up) in self.upstreams.iter().enumerate() {
            let resp = match self.forward(k, r#"{"op":"stats"}"#) {
                Ok(resp) => resp,
                Err(e) => return error_line(None, e),
            };
            match parse_stats(&resp) {
                Ok((upstream_backend, stats)) => {
                    if k == 0 {
                        backend = upstream_backend;
                    }
                    per_shard.push(stats);
                }
                Err(e) => {
                    return error_line(
                        None,
                        EngineError::Unavailable(format!("{}: malformed stats: {e}", up.addr())),
                    )
                }
            }
        }
        let payload = self.front.sum_stats(backend, &per_shard);
        let mut json = EngineResponse::Stats(payload).to_json();
        json.set("upstreams", self.upstream_health());
        json.to_string()
    }

    /// `metrics`: fan out, merge each upstream's shards into its global
    /// shard slot, and render through the *same* payload type the
    /// in-process engine uses — so the two deployments answer
    /// byte-identically, apart from the router-only `upstreams` key.
    fn fan_out_metrics(&self) -> String {
        let mut per_shard = Vec::with_capacity(self.upstreams.len());
        for (k, up) in self.upstreams.iter().enumerate() {
            let resp = match self.forward(k, r#"{"op":"metrics"}"#) {
                Ok(resp) => resp,
                Err(e) => return error_line(None, e),
            };
            match parse_metrics(&resp) {
                Ok(snapshot) => per_shard.push(snapshot),
                Err(e) => {
                    return error_line(
                        None,
                        EngineError::Unavailable(format!("{}: malformed metrics: {e}", up.addr())),
                    )
                }
            }
        }
        let mut json = EngineResponse::Metrics(MetricsPayload { per_shard }).to_json();
        json.set("upstreams", self.upstream_health());
        json.to_string()
    }

    /// The per-upstream health array appended (router-only) to `stats`
    /// and `metrics` responses.
    fn upstream_health(&self) -> Json {
        Json::Arr(self.upstreams.iter().map(Upstream::health_json).collect())
    }

    /// [`handle_line`](RouteProxy::handle_line) on a duplex session:
    /// `subscribe` opens a dedicated upstream session and relays its
    /// pushed frames to the client verbatim, `unsubscribe` tears the
    /// relay down, every other op behaves exactly as on a plain session.
    pub fn handle_open_line(&self, line: &str, session: &PushSession) -> String {
        let (raw, req) = match parse_request(line) {
            Ok(parsed) => parsed,
            Err(e) => {
                self.front.begin_request();
                return error_line(None, e);
            }
        };
        match req {
            EngineRequest::Subscribe { db, query, .. } => {
                self.front.begin_request();
                self.proxy_subscribe(raw, &db, &query, session)
            }
            EngineRequest::Unsubscribe { db, sub } => {
                self.front.begin_request();
                self.proxy_unsubscribe(&db, sub, session)
            }
            _ => self.handle_line(line),
        }
    }

    /// Opens one routed subscription: dial a dedicated session to the
    /// owning upstream, forward the `subscribe` line (prepared handles
    /// rewritten to text first), hand the session to a relay thread, and
    /// return the upstream's response with its `shard` tag rewritten to
    /// the global index.
    fn proxy_subscribe(
        &self,
        mut raw: Json,
        db: &str,
        query: &QueryRef,
        session: &PushSession,
    ) -> String {
        let k = self.front.shard_of(db);
        // The router enforces the per-connection ceiling itself: each
        // routed subscription is alone on its dedicated upstream
        // session, so the upstream's own limit would never trip.
        if !session.try_add_sub(self.max_subs) {
            return error_line(
                Some(k as u32),
                subscribe::subscribe_limit_error(self.max_subs),
            );
        }
        let fail = |e: EngineError| {
            session.remove_sub();
            error_line(Some(k as u32), e)
        };
        let addr = self.upstreams[k].addr();
        // Prepared handles live on upstream 0: rewrite to the query text
        // before routing elsewhere, exactly like `answer`.
        if let QueryRef::Prepared(id) = query {
            if k != 0 {
                match self.resolve_prepared(id) {
                    Resolved::Text(text) => {
                        raw.remove("prepared");
                        raw.set("query", Json::from(text));
                    }
                    Resolved::Refused(mut resp) => {
                        session.remove_sub();
                        resp.set("shard", Json::from(k as u64));
                        return resp.to_string();
                    }
                    Resolved::Transport(e) => return fail(e),
                }
            }
        }
        let mut stream = match self.upstreams[k].dial_stream() {
            Ok(stream) => stream,
            Err(e) => return fail(e),
        };
        let resp = match stream.send(&raw.to_string()).and_then(|()| stream.read()) {
            Ok(Frame::Line(resp)) => resp,
            Ok(_) => {
                return fail(EngineError::Unavailable(format!(
                    "{addr}: subscribe: no usable response line"
                )))
            }
            Err(e) => return fail(EngineError::Unavailable(format!("{addr}: subscribe: {e}"))),
        };
        let mut resp = match crate::json::parse(&resp) {
            Ok(resp) => resp,
            Err(e) => {
                return fail(EngineError::Unavailable(format!(
                    "{addr}: malformed response: {e}"
                )))
            }
        };
        if !is_ok(&resp) {
            // The upstream refused (unknown db, bad ε, …): relay its
            // structured rejection, shard-tagged like every routed error.
            session.remove_sub();
            resp.set("shard", Json::from(k as u64));
            return resp.to_string();
        }
        let Some(sub) = resp.get("sub").and_then(Json::as_u64) else {
            return fail(EngineError::Unavailable(format!(
                "{addr}: subscribe response carries no sub id"
            )));
        };
        let Ok(shutdown) = stream.shutdown_handle() else {
            return fail(EngineError::Unavailable(format!(
                "{addr}: subscribe: lost the session socket"
            )));
        };
        let key: SubKey = (session.id(), db.to_string(), sub);
        self.subs.lock().insert(key.clone(), shutdown);
        {
            // Client disconnect: shut the dedicated session down, which
            // unblocks the relay; the removed map entry tells it not to
            // synthesize a terminal frame.
            let subs = self.subs.clone();
            let key = key.clone();
            session.on_close(move || {
                if let Some(conn) = subs.lock().remove(&key) {
                    let _ = conn.shutdown(Shutdown::Both);
                }
            });
        }
        if spawn_relay(stream, self.subs.clone(), key.clone(), session.clone()).is_err() {
            if self.subs.lock().remove(&key).is_some() {
                session.remove_sub();
            }
            return error_line(
                Some(k as u32),
                EngineError::Unavailable("no thread available for the subscription relay".into()),
            );
        }
        resp.set("shard", Json::from(k as u64));
        resp.to_string()
    }

    /// Ends one routed subscription: tear its relay down locally and
    /// synthesize the same `Unsubscribed` response an in-process shard
    /// renders. Closing the dedicated session is what unsubscribes
    /// upstream — its server reaps the subscription with the connection.
    fn proxy_unsubscribe(&self, db: &str, sub: u64, session: &PushSession) -> String {
        let k = self.front.shard_of(db);
        match self
            .subs
            .lock()
            .remove(&(session.id(), db.to_string(), sub))
        {
            Some(conn) => {
                let _ = conn.shutdown(Shutdown::Both);
                session.remove_sub();
                let mut json = EngineResponse::Unsubscribed {
                    db: db.to_string(),
                    sub,
                }
                .to_json();
                json.set("shard", Json::from(k as u64));
                json.to_string()
            }
            None => error_line(Some(k as u32), subscribe::unknown_subscription(db, sub)),
        }
    }
}

/// Relays one routed subscription's pushed frames from its dedicated
/// upstream session to the client **verbatim**. An upstream
/// `"event":"closed"` frame ends the subscription (relayed, then
/// deregistered); a dead upstream synthesizes one with reason
/// `"upstream"` — unless the subscription was already torn down locally
/// (unsubscribe, client disconnect), in which case the client hears
/// nothing further.
fn spawn_relay(
    mut stream: StreamSession,
    subs: Arc<Mutex<HashMap<SubKey, TcpStream>>>,
    key: SubKey,
    session: PushSession,
) -> std::io::Result<()> {
    let run = move || loop {
        match stream.read() {
            Ok(Frame::Line(frame)) => {
                let ended = crate::json::parse(&frame)
                    .ok()
                    .map(|v| v.get("event").and_then(Json::as_str) == Some("closed"))
                    .unwrap_or(false);
                if ended {
                    // Deregister *before* delivering the terminal frame:
                    // a subscriber reacting to it with `unsubscribe`
                    // must get the canonical unknown-subscription error,
                    // exactly like an in-process session whose shard
                    // already removed the registration.
                    if subs.lock().remove(&key).is_some() {
                        session.remove_sub();
                    }
                    session.push(frame);
                    return;
                }
                if session.push(frame) == PushOutcome::Closed {
                    return; // client gone; on_close owns the teardown
                }
            }
            Ok(Frame::Eof | Frame::TooLong | Frame::NotUtf8) | Err(_) => {
                // The upstream died (or spoke garbage). If the
                // subscription is still live locally, tell the client —
                // a killed upstream must end as a structured close, not
                // a silent hang.
                if subs.lock().remove(&key).is_some() {
                    session.remove_sub();
                    session.push(subscribe::closed_frame(&key.1, key.2, "upstream"));
                }
                return;
            }
        }
    };
    std::thread::Builder::new()
        .name("ocqa-relay".into())
        .spawn(run)
        .map(|_| ())
}

impl LineService for RouteProxy {
    fn serve_line(&self, line: &str) -> String {
        self.handle_line(line)
    }

    fn serve_open_line(&self, line: &str, session: &PushSession) -> String {
        self.handle_open_line(line, session)
    }
}

/// Renders an error response, shard-tagged like the in-process engine
/// tags errors from routed requests.
fn error_line(shard: Option<u32>, e: EngineError) -> String {
    let mut json = EngineResponse::Error(e).to_json();
    if let Some(k) = shard {
        json.set("shard", Json::from(u64::from(k)));
    }
    json.to_string()
}

fn is_ok(resp: &Json) -> bool {
    resp.get("ok").and_then(Json::as_bool) == Some(true)
}

/// Parses an upstream `list` response into catalog infos.
fn parse_list(v: &Json) -> Result<Vec<DatabaseInfo>, String> {
    if !is_ok(v) {
        return Err(format!("upstream refused list: {v}"));
    }
    let Some(Json::Arr(dbs)) = v.get("databases") else {
        return Err("no databases array".into());
    };
    dbs.iter().map(parse_info).collect()
}

fn parse_info(v: &Json) -> Result<DatabaseInfo, String> {
    let field = |key: &str| v.get(key).ok_or_else(|| format!("missing {key:?}"));
    let num = |key: &str| field(key)?.as_u64().ok_or_else(|| format!("bad {key:?}"));
    Ok(DatabaseInfo {
        name: field("name")?.as_str().ok_or("bad \"name\"")?.to_string(),
        version: num("version")?,
        facts: num("facts")? as usize,
        violations: num("violations")? as usize,
        plan: field("plan")?
            .as_str()
            .and_then(PlanKind::parse)
            .ok_or("bad \"plan\"")?,
    })
}

/// Parses an upstream `stats` response into its backend label and the
/// per-shard counter block the front door sums.
fn parse_stats(v: &Json) -> Result<(String, ShardStats), String> {
    if !is_ok(v) {
        return Err(format!("upstream refused stats: {v}"));
    }
    let num = |key: &str| {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing counter {key:?}"))
    };
    let stats = ShardStats {
        answers: num("answers")?,
        walks: num("walks")?,
        coalesced: num("coalesced")?,
        databases: num("databases")? as usize,
        prepared: num("prepared")? as usize,
        workers: num("workers")? as usize,
        subscriptions: num("subscriptions")? as usize,
        cache: crate::cache::CacheStats {
            hits: num("cache_hits")?,
            misses: num("cache_misses")?,
            dominated_hits: num("cache_dominated_hits")?,
            invalidated: num("cache_invalidated")?,
            evicted: num("cache_evicted")?,
            stale_drops: num("cache_stale_drops")?,
            expired: num("cache_expired")?,
        },
    };
    let backend = v
        .get("backend")
        .and_then(Json::as_str)
        .ok_or("missing \"backend\"")?
        .to_string();
    Ok((backend, stats))
}

/// Parses an upstream `metrics` response, merging the upstream's shards
/// (usually just one — each upstream is an `ocqa serve --shards 1`, but
/// a multi-shard upstream aggregates correctly too, because histogram
/// merging is associative) into one snapshot for its global shard slot.
fn parse_metrics(v: &Json) -> Result<MetricsSnapshot, String> {
    if !is_ok(v) {
        return Err(format!("upstream refused metrics: {v}"));
    }
    let Some(Json::Arr(shards)) = v.get("per_shard") else {
        return Err("no per_shard array".into());
    };
    let mut merged = MetricsSnapshot::default();
    for entry in shards {
        merged.merge(&MetricsSnapshot::from_json(entry)?);
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_policy_matches_request_kinds() {
        let req = parse_request(r#"{"op":"ping"}"#).unwrap().1;
        assert_eq!(route_of(&req), RouteTarget::Local);
        let req = parse_request(r#"{"op":"create_db","name":"kv"}"#)
            .unwrap()
            .1;
        assert_eq!(route_of(&req), RouteTarget::Database("kv"));
        let req = parse_request(r#"{"op":"answer","db":"kv","query":"(x) <- R(x)"}"#)
            .unwrap()
            .1;
        assert_eq!(route_of(&req), RouteTarget::Database("kv"));
        let req = parse_request(r#"{"op":"prepare","query":"(x) <- R(x)"}"#)
            .unwrap()
            .1;
        assert_eq!(route_of(&req), RouteTarget::Authority);
        let req = parse_request(r#"{"op":"prepared_get","id":"q1"}"#)
            .unwrap()
            .1;
        assert_eq!(route_of(&req), RouteTarget::Authority);
        let req = parse_request(r#"{"op":"list"}"#).unwrap().1;
        assert_eq!(route_of(&req), RouteTarget::FanOut);
        let req = parse_request(r#"{"op":"stats"}"#).unwrap().1;
        assert_eq!(route_of(&req), RouteTarget::FanOut);
        let req = parse_request(r#"{"op":"metrics"}"#).unwrap().1;
        assert_eq!(route_of(&req), RouteTarget::FanOut);
        assert_eq!(req.op_name(), "metrics");
    }

    #[test]
    fn seed_rejects_duplicate_recovery() {
        let front = FrontDoor::new(3);
        front.seed(0, ["alpha", "bravo"]).unwrap();
        front.seed(1, ["charlie"]).unwrap();
        let err = front.seed(2, ["bravo"]).unwrap_err();
        assert!(err.to_string().contains("shard 0 and shard 2"), "{err}");
        // Seeded placements win over the router's assignment.
        assert_eq!(front.shard_of("alpha"), 0);
        assert_eq!(front.shard_of("charlie"), 1);
    }

    #[test]
    fn placements_follow_create_and_drop() {
        let front = FrontDoor::new(4);
        let routed = front.shard_of("kv");
        // A create pins the name even somewhere the router wouldn't put it.
        let pinned = (routed + 1) % 4;
        front.record_create("kv", pinned);
        assert_eq!(front.shard_of("kv"), pinned);
        front.record_drop("kv");
        assert_eq!(front.shard_of("kv"), routed, "drop frees the name");
    }

    #[test]
    fn merge_lists_sorts_across_shards() {
        let info = |name: &str| DatabaseInfo {
            name: name.into(),
            version: 1,
            facts: 0,
            violations: 0,
            plan: PlanKind::Monolithic,
        };
        let merged = FrontDoor::merge_lists([
            vec![info("delta"), info("echo")],
            vec![info("alpha")],
            vec![info("charlie")],
        ]);
        let names: Vec<&str> = merged.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, ["alpha", "charlie", "delta", "echo"]);
    }
}
