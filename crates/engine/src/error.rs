//! Engine-level errors, surfaced to clients as `{"ok":false,"error":…}`.

use crate::planner::PlanKind;
use std::fmt;

/// Anything that can go wrong while serving a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The request line was not valid JSON or missed required fields.
    BadRequest(String),
    /// Facts / constraints / query text failed to parse.
    Parse(String),
    /// The named database does not exist in the catalog.
    UnknownDatabase(String),
    /// A database with that name already exists.
    DatabaseExists(String),
    /// The named prepared-query handle does not exist.
    UnknownPrepared(String),
    /// The generator name is not recognized.
    UnknownGenerator(String),
    /// A fact violated the database schema.
    Schema(String),
    /// Sampling failed (generator could not produce a distribution).
    Sampling(String),
    /// An explicit `plan` override is structurally unsound for the
    /// database × generator: the named feasibility gate rejected it.
    /// Rendered with structured `plan`/`gate` fields so clients can tell
    /// "you asked for an impossible plan" from a generic bad request.
    PlanRejected {
        /// The plan the client forced.
        plan: PlanKind,
        /// The feasibility gate that rejected it (`"key-cover"`,
        /// `"denial-fragment"`, `"component-local"`, `"group-policy"`).
        gate: &'static str,
        /// The human-readable explanation.
        message: String,
    },
    /// The storage backend failed to journal or recover state.
    Storage(String),
    /// The owning shard is at its concurrent-sampling admission limit;
    /// the request was rejected *before* any counter moved, so a retry
    /// is accounted like a fresh request (no double counting).
    ShardFull(u32),
    /// A remote upstream shard server could not be reached (or spoke
    /// garbage) — the multi-process router's transport failure.
    Unavailable(String),
    /// The cluster topology changed under the client (its pinned
    /// `"epoch"` is stale) or the addressed database is mid-move.
    /// Rendered with structured `"retry": true` and `"epoch"` fields so
    /// clients re-resolve and retry instead of treating it as a failure.
    StaleTopology {
        /// The router's current topology epoch.
        epoch: u64,
        /// The human-readable explanation.
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            EngineError::Parse(msg) => write!(f, "parse error: {msg}"),
            EngineError::UnknownDatabase(name) => write!(f, "unknown database {name:?}"),
            EngineError::DatabaseExists(name) => write!(f, "database {name:?} already exists"),
            EngineError::UnknownPrepared(id) => write!(f, "unknown prepared query {id:?}"),
            EngineError::UnknownGenerator(name) => write!(f, "unknown generator {name:?}"),
            EngineError::Schema(msg) => write!(f, "schema error: {msg}"),
            EngineError::Sampling(msg) => write!(f, "sampling error: {msg}"),
            EngineError::PlanRejected { message, .. } => write!(f, "bad request: {message}"),
            EngineError::Storage(msg) => write!(f, "storage error: {msg}"),
            EngineError::ShardFull(shard) => write!(
                f,
                "shard {shard} is at its sampling admission limit; retry shortly"
            ),
            EngineError::Unavailable(msg) => write!(f, "upstream unavailable: {msg}"),
            EngineError::StaleTopology { epoch, message } => {
                write!(f, "topology changed (epoch {epoch}): {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}
