//! The engine: catalog + prepared queries + sampler pool + answer cache,
//! behind one concurrent [`Engine::handle`] entry point.
//!
//! Locking discipline: the catalog and cache locks are held only to read
//! or mutate metadata — never across sampling. An `answer` request takes
//! a snapshot (`Arc<RepairContext>`) under the catalog lock, releases it,
//! samples on the pool, and re-takes the cache lock to store the result.
//! Concurrent sessions therefore sample in parallel, bounded only by the
//! pool's worker count.

use crate::cache::{AnswerCache, CacheKey, CacheStats};
use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::json::Json;
use crate::planner::PlanKind;
use crate::pool::SamplerPool;
use crate::prepared::PreparedRegistry;
use crate::proto::{
    AnswerPayload, AnswerRow, EngineRequest, EngineResponse, EngineStatsPayload, QueryRef,
};
use crate::storage::{MemoryBackend, StorageBackend};
use ocqa_core::sample::{sample_size, SampleTally};
use ocqa_core::{ChainGenerator, PreferenceGenerator, UniformGenerator};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Engine tunables.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Sampler-pool worker threads.
    pub workers: usize,
    /// Answer-cache capacity (entries).
    pub cache_capacity: usize,
    /// Largest per-request walk budget the engine accepts. Without a cap
    /// a client-supplied tiny ε/δ would make `sample_size` astronomical
    /// and one request could pin every worker (and the job queue) forever.
    pub max_walks: u64,
    /// Whether the answer planner routes eligible requests down the
    /// localized / key-repair fast paths. When disabled every automatic
    /// answer serves monolithically (explicit per-request `plan`
    /// overrides still work) — an operational escape hatch and the
    /// baseline switch used by benchmarks.
    pub planner: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            cache_capacity: 1024,
            max_walks: 1_000_000,
            planner: true,
        }
    }
}

/// Instantiates a generator by its protocol name.
pub fn generator_by_name(name: &str) -> Result<Arc<dyn ChainGenerator>, EngineError> {
    match name {
        "uniform" => Ok(Arc::new(UniformGenerator::new())),
        "uniform-deletions" => Ok(Arc::new(UniformGenerator::deletions_only())),
        "preference" => Ok(Arc::new(PreferenceGenerator::new())),
        other => Err(EngineError::UnknownGenerator(other.to_string())),
    }
}

/// A long-lived, concurrent CQA serving engine.
pub struct Engine {
    catalog: RwLock<Catalog>,
    cache: Mutex<AnswerCache>,
    prepared: RwLock<PreparedRegistry>,
    backend: Arc<dyn StorageBackend>,
    pool: SamplerPool,
    max_walks: u64,
    planner: bool,
    requests: AtomicU64,
    answers: AtomicU64,
    walks: AtomicU64,
}

impl Engine {
    /// Builds an in-memory engine (spawns the sampler pool). Nothing
    /// persists across restarts; see [`Engine::with_backend`] for that.
    pub fn new(config: EngineConfig) -> Arc<Engine> {
        Engine::with_backend(config, Arc::new(MemoryBackend))
            .expect("memory backend recovery is empty and infallible")
    }

    /// Builds an engine on a storage backend: the backend's persisted
    /// state is recovered first — databases with their exact versions,
    /// violation sets and planner classifications, and prepared queries
    /// with their original ordinal handles — and every subsequent catalog
    /// or registry mutation is journaled write-through. A recovered
    /// engine serves bit-identical answers to its pre-restart self for
    /// equal requests (same seed, ε/δ, plan).
    pub fn with_backend(
        config: EngineConfig,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<Arc<Engine>, EngineError> {
        let state = backend.recover()?;
        let mut catalog = Catalog::new();
        for db in state.databases {
            catalog.restore(db)?;
        }
        catalog.raise_version_floor(state.next_version);
        let mut prepared = PreparedRegistry::new();
        prepared.restore(state.prepared, state.prepared_next)?;
        Ok(Arc::new(Engine {
            catalog: RwLock::new(catalog),
            cache: Mutex::new(AnswerCache::new(config.cache_capacity)),
            prepared: RwLock::new(prepared),
            backend,
            pool: SamplerPool::new(config.workers),
            max_walks: config.max_walks.max(1),
            planner: config.planner,
            requests: AtomicU64::new(0),
            answers: AtomicU64::new(0),
            walks: AtomicU64::new(0),
        }))
    }

    /// Handles one request. Safe to call from any number of threads.
    pub fn handle(&self, req: EngineRequest) -> EngineResponse {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match self.dispatch(req) {
            Ok(resp) => resp,
            Err(e) => EngineResponse::Error(e),
        }
    }

    /// Handles one raw protocol line (parse → handle → render).
    pub fn handle_line(&self, line: &str) -> Json {
        let req = crate::json::parse(line)
            .map_err(|e| EngineError::BadRequest(e.to_string()))
            .and_then(|v| EngineRequest::from_json(&v));
        match req {
            Ok(req) => self.handle(req).to_json(),
            Err(e) => {
                self.requests.fetch_add(1, Ordering::Relaxed);
                EngineResponse::Error(e).to_json()
            }
        }
    }

    fn dispatch(&self, req: EngineRequest) -> Result<EngineResponse, EngineError> {
        match req {
            EngineRequest::Ping => Ok(EngineResponse::Pong),
            EngineRequest::CreateDb {
                name,
                facts,
                constraints,
            } => {
                // Parse and compute V(D, Σ) before taking the write lock:
                // a big create must not stall concurrent answers. The
                // journal write happens under the lock so the durable log
                // and the catalog agree on mutation order.
                let parsed = crate::catalog::ParsedDatabase::parse(&facts, &constraints)?;
                let info = self
                    .catalog
                    .write()
                    .install_with(&name, parsed, |image| self.backend.journal_install(image))?;
                Ok(EngineResponse::Created(info))
            }
            EngineRequest::DropDb { name } => {
                let version = {
                    let mut catalog = self.catalog.write();
                    let version = catalog.info(&name)?.version;
                    // Journal-then-mutate, like every other mutation: a
                    // vetoed drop leaves the database in place.
                    self.backend.journal_drop(&name, version)?;
                    catalog.drop_db(&name);
                    version
                };
                // Floor above the dropped incarnation: a recreated
                // database starts at a strictly higher global version, so
                // its entries pass while any in-flight answer against the
                // dropped one is rejected.
                self.cache.lock().invalidate_db(&name, version + 1);
                Ok(EngineResponse::Dropped { name })
            }
            EngineRequest::Insert { db, facts } => self.update(&db, &facts, ""),
            EngineRequest::Delete { db, facts } => self.update(&db, "", &facts),
            EngineRequest::Prepare { query } => {
                let prepared = self
                    .prepared
                    .write()
                    .prepare_with(&query, |text, ord| self.backend.journal_prepare(text, ord))?;
                Ok(EngineResponse::Prepared {
                    id: prepared.id.clone(),
                })
            }
            EngineRequest::Answer {
                db,
                query,
                generator,
                eps,
                delta,
                seed,
                plan,
            } => self.answer(&db, &query, &generator, eps, delta, seed, plan),
            EngineRequest::List => Ok(EngineResponse::List(self.catalog.read().list())),
            EngineRequest::Stats => Ok(EngineResponse::Stats(self.stats())),
        }
    }

    fn update(&self, db: &str, insert: &str, delete: &str) -> Result<EngineResponse, EngineError> {
        // Parse outside the lock; the locked phase is the incremental
        // violation update, proportional to the delta's neighbourhood.
        let inserts = ocqa_logic::parser::parse_facts(insert)
            .map_err(|e| EngineError::Parse(e.to_string()))?;
        let deletes = ocqa_logic::parser::parse_facts(delete)
            .map_err(|e| EngineError::Parse(e.to_string()))?;
        let outcome = self
            .catalog
            .write()
            .update_parsed_with(db, &inserts, &deletes, |delta| {
                self.backend.journal_update(delta)
            })?;
        // An effective update bumps the version, so cached entries for
        // the old version can never be served again; purge them eagerly
        // so they don't occupy cache slots until eviction, and floor the
        // database at the new version so an in-flight answer that sampled
        // the pre-update snapshot cannot re-insert a dead entry. No-op
        // updates keep the version and the cache — idempotent retries
        // stay cheap.
        if outcome.inserted > 0 || outcome.removed > 0 {
            self.cache.lock().invalidate_db(db, outcome.version);
        }
        Ok(EngineResponse::Updated(outcome))
    }

    #[allow(clippy::too_many_arguments)]
    fn answer(
        &self,
        db: &str,
        query_ref: &QueryRef,
        generator: &str,
        eps: f64,
        delta: f64,
        seed: u64,
        plan_request: Option<PlanKind>,
    ) -> Result<EngineResponse, EngineError> {
        if eps <= 0.0 || eps >= 1.0 || delta <= 0.0 || delta >= 1.0 {
            return Err(EngineError::BadRequest(
                "eps and delta must lie in (0,1)".into(),
            ));
        }
        let walks = sample_size(eps, delta);
        if walks > self.max_walks {
            return Err(EngineError::BadRequest(format!(
                "eps/delta require {walks} walks, above the engine limit of {}",
                self.max_walks
            )));
        }
        // Inline text is routed through the prepared registry too: the
        // parse/validate cost is paid once per distinct query text.
        let prepared = match query_ref {
            QueryRef::Text(text) => {
                // Fast path under the read lock: hot workloads repeat the
                // same inline text, and a write lock here would serialize
                // every concurrent answer. New inline texts are journaled
                // like explicit prepares — handle ids are ordinal, so
                // recovery must replay every allocation to reproduce them.
                let known = self.prepared.read().lookup_text(text);
                match known {
                    Some(p) => p,
                    None => self
                        .prepared
                        .write()
                        .prepare_with(text, |t, ord| self.backend.journal_prepare(t, ord))?,
                }
            }
            QueryRef::Prepared(id) => self.prepared.read().get(id)?,
        };
        let gen = generator_by_name(generator)?;
        let (_ctx, version, plan) = self.catalog.read().snapshot(db)?;
        // Resolve the route: the planner picks the cheapest sound path
        // for this database × generator; a disabled planner pins
        // automatic requests to monolithic; explicit requests are
        // validated (unsound forces are errors, not silent fallbacks).
        let route = if plan_request.is_none() && !self.planner {
            PlanKind::Monolithic
        } else {
            plan.route(gen.as_ref(), plan_request)?
        };
        let key = CacheKey {
            db: db.to_string(),
            version,
            query: prepared.text.clone(),
            generator: generator.to_string(),
            plan: route,
            eps_bits: eps.to_bits(),
            delta_bits: delta.to_bits(),
            seed,
        };
        // One lock acquisition serves both the lookup and the stats
        // snapshot reported alongside the answer.
        let (hit, stats) = {
            let mut cache = self.cache.lock();
            let hit = cache.get(&key);
            let stats = cache.stats();
            (hit, stats)
        };
        if let Some(tally) = hit {
            self.answers.fetch_add(1, Ordering::Relaxed);
            return Ok(answer_response(&tally, true, version, stats, route));
        }
        // Cache miss: sample on the pool with no locks held.
        let task = plan.task(route, gen)?;
        let tally = Arc::new(self.pool.run(&task, &prepared.query, walks, seed)?);
        // Counters move only on success: a rejected or failed request
        // must inflate neither `answers` nor `walks`.
        self.walks.fetch_add(walks, Ordering::Relaxed);
        self.answers.fetch_add(1, Ordering::Relaxed);
        let stats = self.store_answer(key, tally.clone());
        Ok(answer_response(&tally, false, version, stats, route))
    }

    /// Stores a computed answer, returning the post-insert cache stats.
    /// The insert is version-checked: if an update (or drop) invalidated
    /// this database while the request was sampling, the cache drops the
    /// entry instead of re-inserting a dead version.
    fn store_answer(&self, key: CacheKey, tally: Arc<SampleTally>) -> CacheStats {
        let mut cache = self.cache.lock();
        cache.insert(key, tally);
        cache.stats()
    }

    /// The configured per-request walk ceiling.
    pub fn max_walks(&self) -> u64 {
        self.max_walks
    }

    fn stats(&self) -> EngineStatsPayload {
        EngineStatsPayload {
            backend: self.backend.label(),
            requests: self.requests.load(Ordering::Relaxed),
            answers: self.answers.load(Ordering::Relaxed),
            walks: self.walks.load(Ordering::Relaxed),
            workers: self.pool.workers(),
            databases: self.catalog.read().len(),
            prepared: self.prepared.read().len(),
            cache: self.cache.lock().stats(),
        }
    }
}

fn answer_response(
    tally: &SampleTally,
    cached: bool,
    version: u64,
    stats: CacheStats,
    plan: PlanKind,
) -> EngineResponse {
    // Raw and conditional estimates zip positionally: both iterate the
    // same count map. `conditional_frequencies` is None only when every
    // walk failed, in which case there are no rows at all.
    let conditional = tally.conditional_frequencies().unwrap_or_default();
    let answers = tally
        .frequencies()
        .into_iter()
        .zip(conditional)
        .map(|((tuple, p), (_, p_cond))| AnswerRow { tuple, p, p_cond })
        .collect();
    EngineResponse::Answer(AnswerPayload {
        answers,
        walks: tally.walks,
        failed_walks: tally.failed_walks,
        cached,
        db_version: version,
        plan,
        cache: stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Arc<Engine> {
        Engine::new(EngineConfig {
            workers: 2,
            cache_capacity: 64,
            ..EngineConfig::default()
        })
    }

    fn create_prefs(e: &Engine) {
        let resp = e.handle(EngineRequest::CreateDb {
            name: "prefs".into(),
            facts: "Pref(a,b). Pref(a,c). Pref(a,d). Pref(b,a). Pref(b,d). Pref(c,a).".into(),
            constraints: "Pref(x,y), Pref(y,x) -> false.".into(),
        });
        assert!(matches!(resp, EngineResponse::Created(_)), "{resp:?}");
    }

    fn answer_req(seed: u64) -> EngineRequest {
        EngineRequest::Answer {
            db: "prefs".into(),
            query: QueryRef::Text("(x) <- forall y: (Pref(x,y) | x = y)".into()),
            generator: "preference".into(),
            eps: 0.1,
            delta: 0.1,
            seed,
            plan: None,
        }
    }

    #[test]
    fn answer_estimates_example7() {
        let e = engine();
        create_prefs(&e);
        let EngineResponse::Answer(a) = e.handle(answer_req(7)) else {
            panic!("expected answer");
        };
        assert_eq!(a.walks, 150);
        assert!(!a.cached);
        assert_eq!(a.answers.len(), 1, "only (a) can win every comparison");
        // Exact CP is 9/20 = 0.45; ε = 0.1.
        assert!(
            (a.answers[0].p - 0.45).abs() <= 0.1,
            "p = {}",
            a.answers[0].p
        );
    }

    #[test]
    fn repeat_hits_cache_and_update_invalidates() {
        let e = engine();
        create_prefs(&e);
        let EngineResponse::Answer(first) = e.handle(answer_req(7)) else {
            panic!()
        };
        let EngineResponse::Answer(second) = e.handle(answer_req(7)) else {
            panic!()
        };
        assert!(!first.cached && second.cached);
        assert_eq!(second.cache.hits, 1);
        let rows_eq = first
            .answers
            .iter()
            .zip(&second.answers)
            .all(|(x, y)| x.tuple == y.tuple && x.p == y.p);
        assert!(rows_eq, "cached answer must be byte-identical");

        // Different seed is a different computation.
        let EngineResponse::Answer(third) = e.handle(answer_req(8)) else {
            panic!()
        };
        assert!(!third.cached);

        // An update bumps the version; the same request recomputes.
        let resp = e.handle(EngineRequest::Delete {
            db: "prefs".into(),
            facts: "Pref(c,a).".into(),
        });
        assert!(matches!(resp, EngineResponse::Updated(_)));
        let EngineResponse::Answer(fourth) = e.handle(answer_req(7)) else {
            panic!()
        };
        assert!(!fourth.cached, "update must invalidate");
        assert_eq!(fourth.db_version, 2);
    }

    #[test]
    fn prepared_handles_work() {
        let e = engine();
        create_prefs(&e);
        let EngineResponse::Prepared { id } = e.handle(EngineRequest::Prepare {
            query: "(x) <- exists y: Pref(x,y)".into(),
        }) else {
            panic!()
        };
        let EngineResponse::Answer(a) = e.handle(EngineRequest::Answer {
            db: "prefs".into(),
            query: QueryRef::Prepared(id),
            generator: "uniform".into(),
            eps: 0.2,
            delta: 0.2,
            seed: 1,
            plan: None,
        }) else {
            panic!()
        };
        assert!(!a.answers.is_empty());
    }

    #[test]
    fn bad_inputs_are_reported_not_panicked() {
        let e = engine();
        assert!(matches!(
            e.handle(EngineRequest::Answer {
                db: "missing".into(),
                query: QueryRef::Text("(x) <- R(x)".into()),
                generator: "uniform".into(),
                eps: 0.1,
                delta: 0.1,
                seed: 0,
                plan: None,
            }),
            EngineResponse::Error(EngineError::UnknownDatabase(_))
        ));
        create_prefs(&e);
        assert!(matches!(
            e.handle(EngineRequest::Answer {
                db: "prefs".into(),
                query: QueryRef::Text("(x) <- exists y: Pref(x,y)".into()),
                generator: "nope".into(),
                eps: 0.1,
                delta: 0.1,
                seed: 0,
                plan: None,
            }),
            EngineResponse::Error(EngineError::UnknownGenerator(_))
        ));
        assert!(matches!(
            e.handle(EngineRequest::Answer {
                db: "prefs".into(),
                query: QueryRef::Text("(x) <- exists y: Pref(x,y)".into()),
                generator: "uniform".into(),
                eps: 0.0,
                delta: 0.1,
                seed: 0,
                plan: None,
            }),
            EngineResponse::Error(EngineError::BadRequest(_))
        ));
        // A tiny ε would need an astronomical walk budget: the request is
        // rejected up front instead of pinning the pool (DoS guard).
        let resp = e.handle(EngineRequest::Answer {
            db: "prefs".into(),
            query: QueryRef::Text("(x) <- exists y: Pref(x,y)".into()),
            generator: "uniform".into(),
            eps: 1e-9,
            delta: 0.1,
            seed: 0,
            plan: None,
        });
        let EngineResponse::Error(EngineError::BadRequest(msg)) = resp else {
            panic!("expected budget rejection, got {resp:?}");
        };
        assert!(msg.contains("engine limit"), "{msg}");
    }

    fn create_kv(e: &Engine) {
        let resp = e.handle(EngineRequest::CreateDb {
            name: "kv".into(),
            facts: "R(1,10). R(1,20). R(2,30). R(2,40). R(3,50).".into(),
            constraints: "R(x,y), R(x,z) -> y = z.".into(),
        });
        assert!(matches!(resp, EngineResponse::Created(_)), "{resp:?}");
    }

    fn stats_of(e: &Engine) -> EngineStatsPayload {
        let EngineResponse::Stats(s) = e.handle(EngineRequest::Stats) else {
            panic!("expected stats");
        };
        s
    }

    #[test]
    fn failed_requests_do_not_inflate_answer_stats() {
        let e = engine();
        // Unknown database, unknown generator, bad ε, over-budget ε: all
        // rejected before (or instead of) sampling — none may count as a
        // served answer or as walks.
        for (db, generator, eps) in [
            ("missing", "uniform", 0.1),
            ("prefs", "nope", 0.1),
            ("prefs", "uniform", 0.0),
            ("prefs", "uniform", 1e-9),
        ] {
            if db == "prefs" && stats_of(&e).databases == 0 {
                create_prefs(&e);
            }
            let resp = e.handle(EngineRequest::Answer {
                db: db.into(),
                query: QueryRef::Text("(x) <- exists y: Pref(x,y)".into()),
                generator: generator.into(),
                eps,
                delta: 0.1,
                seed: 0,
                plan: None,
            });
            assert!(matches!(resp, EngineResponse::Error(_)), "{resp:?}");
        }
        let s = stats_of(&e);
        assert_eq!(s.answers, 0, "failed requests must not count as answers");
        assert_eq!(s.walks, 0);

        // A successful answer counts once, with its walks.
        assert!(matches!(e.handle(answer_req(7)), EngineResponse::Answer(_)));
        let s = stats_of(&e);
        assert_eq!((s.answers, s.walks), (1, 150));
        // A cached answer counts as an answer but adds no walks.
        assert!(matches!(e.handle(answer_req(7)), EngineResponse::Answer(_)));
        let s = stats_of(&e);
        assert_eq!((s.answers, s.walks), (2, 150));
    }

    #[test]
    fn stale_answer_insert_after_update_is_dropped() {
        // The in-flight race, deterministically interleaved: a slow
        // answer snapshots version v1, an update purges and floors the
        // cache while it samples, then its insert lands through the same
        // `store_answer` path the real request path uses. The dead entry
        // must be dropped, not parked in an LRU slot.
        let e = engine();
        create_prefs(&e);
        let (_ctx, v1, plan) = e.catalog.read().snapshot("prefs").unwrap();
        // The "slow sampler" finishes its work against the v1 snapshot…
        let gen = generator_by_name("uniform").unwrap();
        let task = plan.task(PlanKind::Localized, gen).unwrap();
        let query =
            Arc::new(ocqa_logic::parser::parse_query("(x) <- exists y: Pref(x,y)").unwrap());
        let tally = Arc::new(e.pool.run(&task, &query, 64, 3).unwrap());
        // …but an update lands first, bumping the version and flooring
        // the cache.
        let resp = e.handle(EngineRequest::Delete {
            db: "prefs".into(),
            facts: "Pref(c,a).".into(),
        });
        assert!(matches!(resp, EngineResponse::Updated(_)));
        // The late insert must be dropped.
        let key = CacheKey {
            db: "prefs".into(),
            version: v1,
            query: "(x) <- exists y: Pref(x,y)".into(),
            generator: "uniform".into(),
            plan: PlanKind::Localized,
            eps_bits: 0.1f64.to_bits(),
            delta_bits: 0.1f64.to_bits(),
            seed: 3,
        };
        let stats = e.store_answer(key, tally);
        assert_eq!(stats.stale_drops, 1);
        assert_eq!(e.cache.lock().len(), 0, "no dead entry may occupy a slot");
        // Answers against the current version cache normally again.
        let EngineResponse::Answer(a) = e.handle(answer_req(3)) else {
            panic!()
        };
        assert!(!a.cached);
        assert_eq!(e.cache.lock().len(), 1);
    }

    #[test]
    fn planner_routes_by_shape_and_generator() {
        let e = engine();
        create_kv(&e);
        create_prefs(&e);
        let answer = |db: &str, generator: &str, plan: Option<PlanKind>| {
            e.handle(EngineRequest::Answer {
                db: db.into(),
                query: QueryRef::Text(
                    if db == "kv" {
                        "(x) <- exists y: R(x,y)"
                    } else {
                        "(x) <- exists y: Pref(x,y)"
                    }
                    .into(),
                ),
                generator: generator.into(),
                eps: 0.1,
                delta: 0.1,
                seed: 1,
                plan,
            })
        };
        // Key-only constraints serve key-repair; DC constraints localized.
        let EngineResponse::Answer(a) = answer("kv", "uniform", None) else {
            panic!()
        };
        assert_eq!(a.plan, PlanKind::KeyRepair);
        let EngineResponse::Answer(a) = answer("prefs", "uniform", None) else {
            panic!()
        };
        assert_eq!(a.plan, PlanKind::Localized);
        // Non-component-local generators fall back to monolithic.
        let EngineResponse::Answer(a) = answer("prefs", "preference", None) else {
            panic!()
        };
        assert_eq!(a.plan, PlanKind::Monolithic);
        // Explicit overrides: monolithic always; unsound forces error.
        let EngineResponse::Answer(a) = answer("kv", "uniform", Some(PlanKind::Monolithic)) else {
            panic!()
        };
        assert_eq!(a.plan, PlanKind::Monolithic);
        assert!(matches!(
            answer("prefs", "uniform", Some(PlanKind::KeyRepair)),
            EngineResponse::Error(EngineError::BadRequest(_))
        ));
        // The catalog reports the structural classification in `list`.
        let EngineResponse::List(infos) = e.handle(EngineRequest::List) else {
            panic!()
        };
        let by_name: std::collections::HashMap<_, _> =
            infos.iter().map(|i| (i.name.as_str(), i.plan)).collect();
        assert_eq!(by_name["kv"], PlanKind::KeyRepair);
        assert_eq!(by_name["prefs"], PlanKind::Localized);
    }

    #[test]
    fn planner_disabled_pins_automatic_answers_to_monolithic() {
        let e = Engine::new(EngineConfig {
            workers: 2,
            cache_capacity: 64,
            planner: false,
            ..EngineConfig::default()
        });
        create_kv(&e);
        let req = |plan: Option<PlanKind>| EngineRequest::Answer {
            db: "kv".into(),
            query: QueryRef::Text("(x) <- exists y: R(x,y)".into()),
            generator: "uniform".into(),
            eps: 0.1,
            delta: 0.1,
            seed: 1,
            plan,
        };
        let EngineResponse::Answer(a) = e.handle(req(None)) else {
            panic!()
        };
        assert_eq!(a.plan, PlanKind::Monolithic);
        // Explicit plan requests still work with the planner off.
        let EngineResponse::Answer(a) = e.handle(req(Some(PlanKind::KeyRepair))) else {
            panic!()
        };
        assert_eq!(a.plan, PlanKind::KeyRepair);
    }

    #[test]
    fn vetoing_backend_blocks_mutations() {
        use crate::storage::{InstallImage, RecoveredState, StorageBackend, UpdateDelta};

        /// Journals nothing and vetoes everything: every mutation must
        /// fail *and leave no trace* — the journal-before-mutate contract.
        struct Veto;
        impl StorageBackend for Veto {
            fn label(&self) -> &'static str {
                "veto"
            }
            fn recover(&self) -> Result<RecoveredState, EngineError> {
                Ok(RecoveredState::empty())
            }
            fn journal_install(&self, _: &InstallImage<'_>) -> Result<(), EngineError> {
                Err(EngineError::Storage("no".into()))
            }
            fn journal_update(&self, _: &UpdateDelta<'_>) -> Result<(), EngineError> {
                Err(EngineError::Storage("no".into()))
            }
            fn journal_drop(&self, _: &str, _: u64) -> Result<(), EngineError> {
                Err(EngineError::Storage("no".into()))
            }
            fn journal_prepare(&self, _: &str, _: u64) -> Result<(), EngineError> {
                Err(EngineError::Storage("no".into()))
            }
        }

        let e = Engine::with_backend(
            EngineConfig {
                workers: 1,
                cache_capacity: 8,
                ..EngineConfig::default()
            },
            Arc::new(Veto),
        )
        .unwrap();
        let resp = e.handle(EngineRequest::CreateDb {
            name: "db".into(),
            facts: "R(1,1).".into(),
            constraints: "R(x,y), R(x,z) -> y = z.".into(),
        });
        assert!(matches!(
            resp,
            EngineResponse::Error(EngineError::Storage(_))
        ));
        let resp = e.handle(EngineRequest::Prepare {
            query: "(x) <- exists y: R(x,y)".into(),
        });
        assert!(matches!(
            resp,
            EngineResponse::Error(EngineError::Storage(_))
        ));
        let s = stats_of(&e);
        assert_eq!((s.databases, s.prepared), (0, 0), "vetoed = not applied");
        assert_eq!(s.backend, "veto");
    }

    #[test]
    fn with_backend_restores_versions_plans_and_prepared_handles() {
        use crate::storage::{RecoveredState, RestoredDatabase};
        use ocqa_logic::{parser, ViolationSet};

        // Hand-build the persisted world a disk backend would recover.
        let constraints = "R(x,y), R(x,z) -> y = z.";
        let facts = parser::parse_facts("R(1,10). R(1,20). R(2,30).").unwrap();
        let sigma = parser::parse_constraints(constraints).unwrap();
        let schema = parser::infer_schema(&facts, &sigma).unwrap();
        let db = ocqa_data::Database::from_facts(schema, facts).unwrap();
        let violations = ViolationSet::compute(&sigma, &db);

        struct Fixed(Mutex<Option<RecoveredState>>);
        impl crate::storage::StorageBackend for Fixed {
            fn label(&self) -> &'static str {
                "fixed"
            }
            fn recover(&self) -> Result<RecoveredState, EngineError> {
                Ok(self.0.lock().take().expect("recovered once"))
            }
            fn journal_install(
                &self,
                _: &crate::storage::InstallImage<'_>,
            ) -> Result<(), EngineError> {
                Ok(())
            }
            fn journal_update(
                &self,
                _: &crate::storage::UpdateDelta<'_>,
            ) -> Result<(), EngineError> {
                Ok(())
            }
            fn journal_drop(&self, _: &str, _: u64) -> Result<(), EngineError> {
                Ok(())
            }
            fn journal_prepare(&self, _: &str, _: u64) -> Result<(), EngineError> {
                Ok(())
            }
        }

        let state = RecoveredState {
            databases: vec![RestoredDatabase {
                name: "kv".into(),
                version: 7,
                db,
                constraints: constraints.into(),
                plan: PlanKind::KeyRepair,
                violations,
            }],
            // Non-contiguous handles (q2 was evicted before the kill) and
            // a counter above every live id: both must restore verbatim.
            prepared: vec![
                ("q1".into(), "(x) <- exists y: R(x,y)".into()),
                ("q3".into(), "(y) <- exists x: R(x,y)".into()),
            ],
            prepared_next: 5,
            next_version: 9, // a dropped db once used 8 and 9
        };
        let e = Engine::with_backend(
            EngineConfig {
                workers: 2,
                cache_capacity: 16,
                ..EngineConfig::default()
            },
            Arc::new(Fixed(Mutex::new(Some(state)))),
        )
        .unwrap();

        // The restored database serves at its recorded version and plan.
        let EngineResponse::Answer(a) = e.handle(EngineRequest::Answer {
            db: "kv".into(),
            query: QueryRef::Prepared("q1".into()),
            generator: "uniform".into(),
            eps: 0.2,
            delta: 0.2,
            seed: 4,
            plan: None,
        }) else {
            panic!("restored database must answer");
        };
        assert_eq!(a.db_version, 7);
        assert_eq!(a.plan, PlanKind::KeyRepair);
        // Both prepared handles restored verbatim (non-contiguous ids).
        let EngineResponse::Prepared { id } = e.handle(EngineRequest::Prepare {
            query: "(y) <- exists x: R(x,y)".into(),
        }) else {
            panic!()
        };
        assert_eq!(id, "q3", "re-preparing returns the restored handle");
        // New allocations continue above the restored counter, so an
        // evicted pre-restart handle is never re-minted.
        let EngineResponse::Prepared { id } = e.handle(EngineRequest::Prepare {
            query: "(x) <- R(x, 99)".into(),
        }) else {
            panic!()
        };
        assert_eq!(id, "q6");
        // The version floor covers the dropped incarnations: a new
        // database starts above 9, never aliasing old cache keys.
        let EngineResponse::Created(info) = e.handle(EngineRequest::CreateDb {
            name: "fresh".into(),
            facts: "S(1,1).".into(),
            constraints: "S(x,y), S(x,z) -> y = z.".into(),
        }) else {
            panic!()
        };
        assert_eq!(info.version, 10);
    }

    #[test]
    fn handle_line_roundtrip() {
        let e = engine();
        let out = e.handle_line(r#"{"op":"ping"}"#).to_string();
        assert!(out.contains("\"pong\":true"));
        let out = e.handle_line("not json").to_string();
        assert!(out.contains("\"ok\":false"));
        // ping + bad line + this stats request itself = 3.
        let out = e.handle_line(r#"{"op":"stats"}"#).to_string();
        assert!(out.contains("\"requests\":3"), "{out}");
    }
}
