//! The engine front door: request parsing, routing and fan-out over a
//! set of [`ShardEngine`]s.
//!
//! The serving path is an explicit three-stage architecture:
//!
//! ```text
//!   front door (this type)  →  Router (name → shard)  →  ShardEngine
//! ```
//!
//! The front door owns no catalog, cache or pool of its own. Per-database
//! requests (`create_db`/`drop_db`/`insert`/`delete`/`answer`) are routed
//! to the shard owning the database name — a restored placement when the
//! shard's storage already holds the name, rendezvous hashing
//! ([`Router`]) otherwise — and catalog-wide requests (`list`/`stats`)
//! fan out across all shards, merging per-shard results exactly once.
//! Responses at the protocol layer carry the serving shard in a `shard`
//! field.
//!
//! Prepared-query handles are front-door scope: explicit `prepare`
//! requests are served (and journaled) by **shard 0**, the handle
//! authority, and an `answer` carrying a `prepared` handle destined for
//! another shard is rewritten to its query text before routing. Handles
//! therefore work against every database regardless of placement, and
//! recovery of shard 0 restores them exactly as before sharding.
//!
//! A single-shard engine (`shards: 1`, the default) is behaviorally
//! identical to the historical monolithic engine.

use crate::error::EngineError;
use crate::frontdoor::{parse_request, route_of, FrontDoor, RouteTarget};
use crate::json::Json;
use crate::planner::PlannerMode;
use crate::proto::{EngineRequest, EngineResponse, EngineStatsPayload, QueryRef};
use crate::server::LineService;
use crate::shard::ShardEngine;
use crate::storage::{MemoryBackend, StorageBackend};
use crate::upstream::Upstream;
use ocqa_core::{ChainGenerator, PreferenceGenerator, TrustGenerator, UniformGenerator};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Engine tunables. `workers` and `cache_capacity` are **totals**: the
/// front door divides them across shards (at least 1 each), so raising
/// `shards` re-partitions rather than multiplies the resource budget.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Sampler-pool worker threads, across all shards.
    pub workers: usize,
    /// Answer-cache capacity (entries), across all shards.
    pub cache_capacity: usize,
    /// Largest per-request walk budget the engine accepts. Without a cap
    /// a client-supplied tiny ε/δ would make `sample_size` astronomical
    /// and one request could pin every worker (and the job queue) forever.
    pub max_walks: u64,
    /// How automatic answers pick their plan: the adaptive cost model
    /// (the default), the v1 structural classifier, or pinned to
    /// monolithic. Explicit per-request `plan` overrides bypass the mode
    /// entirely. See [`PlannerMode`].
    pub planner: PlannerMode,
    /// Number of shards the catalog is partitioned over (min 1).
    pub shards: usize,
    /// Per-entry answer-cache time-to-live in milliseconds; `0` disables
    /// time-based expiry (entries then live until a version bump or LRU
    /// eviction). For workloads whose staleness budget is time- rather
    /// than version-bounded.
    pub ttl_ms: u64,
    /// Per-shard admission limit on *concurrent sampling runs* (cache
    /// hits and coalesced followers don't count). Beyond it requests are
    /// rejected with [`EngineError::ShardFull`] instead of queueing
    /// unboundedly on the pool.
    pub max_inflight: usize,
    /// Slow-request trace threshold in milliseconds: requests at or
    /// above it emit one structured NDJSON event on stderr with their
    /// stage breakdown (see [`crate::obs::trace`]). `0` disables tracing.
    pub slow_ms: u64,
    /// Ceiling on live subscriptions per client connection. A
    /// `subscribe` beyond it is rejected with a structured error rather
    /// than letting one session pin unbounded registry and queue memory.
    pub max_subs_per_conn: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            cache_capacity: 1024,
            max_walks: 1_000_000,
            planner: PlannerMode::Cost,
            shards: 1,
            ttl_ms: 0,
            max_inflight: 1024,
            slow_ms: 0,
            max_subs_per_conn: 64,
        }
    }
}

/// Instantiates a generator by its protocol name.
///
/// Besides the fixed names, the Example 5 trust generator is exposed as
/// `trust` (every fact at trust ½) or `trust:<N>/<D>` with an explicit
/// default trust in `(0, 1]` — e.g. `trust:3/4`. Trust weights are
/// relative within each violating pair, and the generator is
/// component-local with its own key-repair group policy, so keyed
/// databases serve it down the group-sampling fast path.
pub fn generator_by_name(name: &str) -> Result<Arc<dyn ChainGenerator>, EngineError> {
    match name {
        "uniform" => Ok(Arc::new(UniformGenerator::new())),
        "uniform-deletions" => Ok(Arc::new(UniformGenerator::deletions_only())),
        "preference" => Ok(Arc::new(PreferenceGenerator::new())),
        "trust" => Ok(Arc::new(TrustGenerator::new(
            [],
            ocqa_num::Rat::ratio(1, 2),
        ))),
        other => match other.strip_prefix("trust:") {
            Some(param) => trust_with_default(param),
            None => Err(EngineError::UnknownGenerator(other.to_string())),
        },
    }
}

/// Parses `trust:<N>/<D>`'s parameter into a default-trust generator.
fn trust_with_default(param: &str) -> Result<Arc<dyn ChainGenerator>, EngineError> {
    let bad = || {
        EngineError::BadRequest(format!(
            "trust generator parameter {param:?}: expected a rational N/D in (0, 1]"
        ))
    };
    let (num, den) = param.split_once('/').ok_or_else(bad)?;
    let num: i64 = num.trim().parse().map_err(|_| bad())?;
    let den: i64 = den.trim().parse().map_err(|_| bad())?;
    if num <= 0 || den <= 0 || num > den {
        return Err(bad());
    }
    Ok(Arc::new(TrustGenerator::new(
        [],
        ocqa_num::Rat::ratio(num, den),
    )))
}

/// A long-lived, concurrent CQA serving engine: the front door over one
/// or more [`ShardEngine`]s.
pub struct Engine {
    shards: Vec<Arc<ShardEngine>>,
    /// Routing policy, placement table, request counter and fan-out
    /// merging — the transport-agnostic half of the front door, shared
    /// verbatim with the multi-process [`crate::RouteProxy`].
    front: FrontDoor,
    /// The `--replicate-to` standby, when attached: every acked
    /// protocol-level mutation is forwarded to it synchronously and in
    /// commit order (see [`Replicator`]). `None` on non-replicated
    /// deployments — zero overhead there.
    replica: RwLock<Option<Arc<Replicator>>>,
}

/// A synchronous op-stream replica: the standby behind `ocqa serve
/// --replicate-to ADDR`. The primary forwards every **acked** mutation
/// line to it verbatim, holding [`Replicator::order`] across
/// apply-and-forward — shard version counters are allocation-order
/// sensitive, so the standby must see mutations in exactly the
/// primary's commit order to stay bit-identical. A standby that refuses
/// or drops a forward is detached permanently (the primary keeps
/// serving and acking; `replication_lag` then counts every mutation the
/// standby missed) — a failover to a detached standby would lose acked
/// writes, so the lag rides the `stats` response, the router's probe
/// records it, and [`RouteProxy::fail_over`] refuses to promote a
/// standby whose primary last reported a non-zero lag.
///
/// [`RouteProxy::fail_over`]: crate::RouteProxy::fail_over
struct Replicator {
    upstream: Upstream,
    /// Mutations the (detached) standby missed.
    lag: AtomicU64,
    /// Set on the first failed forward; never cleared — a standby with a
    /// hole in its op stream can never be trusted again.
    detached: AtomicBool,
    /// Held across apply + forward of each mutation.
    order: Mutex<()>,
}

impl Replicator {
    /// Forwards one acked mutation line; on failure, detaches for good.
    fn forward(&self, line: &str) {
        if self.detached.load(Ordering::Relaxed) {
            self.lag.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let acked = self
            .upstream
            .exchange(line)
            .ok()
            .and_then(|resp| crate::json::parse(&resp).ok())
            .map(|v| v.get("ok").and_then(Json::as_bool) == Some(true))
            .unwrap_or(false);
        if !acked {
            self.detached.store(true, Ordering::Relaxed);
            self.lag.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "{}",
                Json::obj([
                    ("addr", Json::from(self.upstream.addr().to_string())),
                    ("event", Json::from("replica_detached")),
                ])
            );
        }
    }
}

/// Ops forwarded to an attached replica: everything that changes the
/// durable state a standby must mirror to answer bit-identically
/// (including shard-0 prepared-handle registrations, which are
/// journaled).
fn is_replicated(req: &EngineRequest) -> bool {
    matches!(
        req,
        EngineRequest::CreateDb { .. }
            | EngineRequest::DropDb { .. }
            | EngineRequest::Insert { .. }
            | EngineRequest::Delete { .. }
            | EngineRequest::Prepare { .. }
            | EngineRequest::InstallSnapshot { .. }
    )
}

impl Engine {
    /// Builds an in-memory engine with `config.shards` shards (spawns the
    /// sampler pools). Nothing persists across restarts; see
    /// [`Engine::with_backends`] for that.
    pub fn new(config: EngineConfig) -> Arc<Engine> {
        let backends: Vec<Arc<dyn StorageBackend>> = (0..config.shards.max(1))
            .map(|_| Arc::new(MemoryBackend) as Arc<dyn StorageBackend>)
            .collect();
        Engine::with_backends(config, backends)
            .expect("memory backend recovery is empty and infallible")
    }

    /// Builds a single-shard engine on one storage backend — the
    /// historical entry point, unchanged in behavior.
    pub fn with_backend(
        config: EngineConfig,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<Arc<Engine>, EngineError> {
        Engine::with_backends(config, vec![backend])
    }

    /// Builds an engine over one shard per backend (`config.shards` is
    /// ignored in favor of `backends.len()`). Each backend's persisted
    /// state is recovered into its own shard — databases with exact
    /// versions, violation sets and planner classifications, prepared
    /// queries with their original ordinal handles — and every later
    /// mutation is journaled write-through to its shard's backend. A
    /// recovered engine serves bit-identical answers to its pre-restart
    /// self for equal requests (same seed, ε/δ, plan).
    ///
    /// Restored databases keep their restored shard even when the router
    /// would now place them elsewhere; a name recovered on **two** shards
    /// (a resharding gone wrong) is an error, not a silent coin toss.
    pub fn with_backends(
        config: EngineConfig,
        backends: Vec<Arc<dyn StorageBackend>>,
    ) -> Result<Arc<Engine>, EngineError> {
        if backends.is_empty() {
            return Err(EngineError::BadRequest(
                "engine needs at least one shard backend".into(),
            ));
        }
        let n = backends.len();
        let per_shard = EngineConfig {
            workers: (config.workers / n).max(1),
            cache_capacity: (config.cache_capacity / n).max(1),
            ..config
        };
        let mut shards = Vec::with_capacity(n);
        for (k, backend) in backends.into_iter().enumerate() {
            shards.push(ShardEngine::with_backend(per_shard, backend, k as u32)?);
        }
        let front = FrontDoor::new(n);
        for (k, shard) in shards.iter().enumerate() {
            let names = shard.list();
            front.seed(k, names.iter().map(|info| info.name.as_str()))?;
        }
        Ok(Arc::new(Engine {
            shards,
            front,
            replica: RwLock::new(None),
        }))
    }

    /// Number of shards behind this front door.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Attaches the `--replicate-to` standby: from now on every acked
    /// protocol-level mutation is forwarded to `addr` synchronously, in
    /// commit order. Call before serving — a standby attached mid-stream
    /// missed earlier mutations and could never converge. Direct
    /// [`handle`](Engine::handle) calls bypass replication: it is a
    /// protocol-level feature of the served line paths.
    pub fn attach_replica(&self, addr: &str) {
        *self.replica.write() = Some(Arc::new(Replicator {
            upstream: Upstream::new(addr.to_string()),
            lag: AtomicU64::new(0),
            detached: AtomicBool::new(false),
            order: Mutex::new(()),
        }));
    }

    /// Mutations the attached standby has missed (`0` when healthy or
    /// when no replica is attached) — the `replication_lag` metrics
    /// field and the `ocqa_replication_lag_records` gauge.
    pub fn replication_lag(&self) -> u64 {
        self.replica
            .read()
            .as_ref()
            .map(|r| r.lag.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// The shard serving `name`: its restored/created placement if one
    /// exists, the router's deterministic assignment otherwise.
    pub fn shard_of(&self, name: &str) -> usize {
        self.front.shard_of(name)
    }

    /// The configured per-request walk ceiling.
    pub fn max_walks(&self) -> u64 {
        self.shards[0].max_walks()
    }

    /// Handles one request. Safe to call from any number of threads.
    pub fn handle(&self, req: EngineRequest) -> EngineResponse {
        self.handle_routed(req).1
    }

    /// [`handle`](Engine::handle), also reporting which shard served a
    /// per-database request (`None` for front-door and fan-out ops).
    pub fn handle_routed(&self, req: EngineRequest) -> (Option<u32>, EngineResponse) {
        self.front.begin_request();
        let (shard, result) = self.dispatch(req);
        match result {
            Ok(resp) => (shard, resp),
            Err(e) => (shard, EngineResponse::Error(e)),
        }
    }

    /// Handles one raw protocol line (parse → route → handle → render).
    /// Responses to routed requests carry the serving shard as a `shard`
    /// field; `list` entries each carry their database's shard.
    pub fn handle_line(&self, line: &str) -> Json {
        match parse_request(line) {
            Ok((raw, req)) => {
                if let Err(e) = self.front.check_epoch(&raw) {
                    self.front.begin_request();
                    return EngineResponse::Error(e).to_json();
                }
                self.render_replicated(line, req)
            }
            Err(e) => {
                self.front.begin_request();
                EngineResponse::Error(e).to_json()
            }
        }
    }

    /// [`handle_line`](Engine::handle_line) on a duplex session:
    /// `subscribe`/`unsubscribe` are served against `session` (the
    /// connection's push channel), every other op behaves exactly as on
    /// a plain session.
    pub fn handle_open_line(&self, line: &str, session: &crate::subscribe::PushSession) -> Json {
        let (raw, req) = match parse_request(line) {
            Ok(parsed) => parsed,
            Err(e) => {
                self.front.begin_request();
                return EngineResponse::Error(e).to_json();
            }
        };
        if let Err(e) = self.front.check_epoch(&raw) {
            self.front.begin_request();
            return EngineResponse::Error(e).to_json();
        }
        match req {
            EngineRequest::Subscribe {
                db,
                query,
                generator,
                eps,
                delta,
                seed,
                plan,
                window,
            } => {
                self.front.begin_request();
                let k = self.front.shard_of(&db);
                // Prepared handles live on shard 0: rewrite to text
                // before routing, exactly like `answer`.
                let query = match self.rewrite_prepared(k, query) {
                    Ok(query) => query,
                    Err(e) => return self.tag_shard(EngineResponse::Error(e), k),
                };
                let resp = match self.shards[k].subscribe(
                    session, &db, &query, &generator, eps, delta, seed, plan, window,
                ) {
                    Ok(sub) => EngineResponse::Subscribed { db, sub },
                    Err(e) => EngineResponse::Error(e),
                };
                self.tag_shard(resp, k)
            }
            EngineRequest::Unsubscribe { db, sub } => {
                self.front.begin_request();
                let k = self.front.shard_of(&db);
                let resp = match self.shards[k].unsubscribe(session, &db, sub) {
                    Ok(()) => EngineResponse::Unsubscribed { db, sub },
                    Err(e) => EngineResponse::Error(e),
                };
                self.tag_shard(resp, k)
            }
            other => self.render_replicated(line, other),
        }
    }

    /// [`render`](Engine::render), forwarding the verbatim line to the
    /// attached replica when the request is an **acked** mutation. The
    /// replicator's order lock is held across apply + forward so the
    /// standby sees mutations in exactly the primary's commit order —
    /// the invariant that keeps its version counters (and therefore its
    /// answers) bit-identical.
    fn render_replicated(&self, line: &str, req: EngineRequest) -> Json {
        let replica = if is_replicated(&req) {
            self.replica.read().clone()
        } else {
            None
        };
        let Some(replica) = replica else {
            return self.render(req);
        };
        let _order = replica.order.lock();
        let json = self.render(req);
        if json.get("ok").and_then(Json::as_bool) == Some(true) {
            replica.forward(line);
        }
        json
    }

    /// Renders a parsed request: route, handle, tag the serving shard.
    fn render(&self, req: EngineRequest) -> Json {
        let (shard, resp) = self.handle_routed(req);
        let mut json = resp.to_json();
        if let EngineResponse::List(_) = &resp {
            self.front.tag_list_shards(&mut json);
        } else if let Some(k) = shard {
            json.set("shard", Json::from(u64::from(k)));
        }
        json
    }

    /// Rewrites a shard-0 prepared handle to its query text when the
    /// request is bound for another shard.
    fn rewrite_prepared(&self, k: usize, query: QueryRef) -> Result<QueryRef, EngineError> {
        match query {
            QueryRef::Prepared(id) if k != 0 => self.shards[0]
                .prepared_get(&id)
                .map(|p| QueryRef::Text(p.text.clone())),
            other => Ok(other),
        }
    }

    fn tag_shard(&self, resp: EngineResponse, k: usize) -> Json {
        let mut json = resp.to_json();
        json.set("shard", Json::from(k as u64));
        json
    }

    fn dispatch(&self, req: EngineRequest) -> (Option<u32>, Result<EngineResponse, EngineError>) {
        // Resolve the destination through the shared routing policy (the
        // same function the multi-process route proxy uses), then apply
        // the op against the in-process shard it names.
        let routed = match route_of(&req) {
            RouteTarget::Local | RouteTarget::FanOut => None,
            RouteTarget::Authority => Some(0),
            RouteTarget::Database(name) => Some(self.front.shard_of(name)),
        };
        match req {
            EngineRequest::Ping => (None, Ok(EngineResponse::Pong)),
            EngineRequest::CreateDb {
                name,
                facts,
                constraints,
            } => {
                let k = routed.expect("create_db routes by name");
                let result = self.shards[k].create(&name, &facts, &constraints);
                if result.is_ok() {
                    self.front.record_create(&name, k);
                }
                (Some(k as u32), result.map(EngineResponse::Created))
            }
            EngineRequest::DropDb { name } => {
                let k = routed.expect("drop_db routes by name");
                let result = self.shards[k].drop_db(&name);
                if result.is_ok() {
                    self.front.record_drop(&name);
                }
                (
                    Some(k as u32),
                    result.map(|()| EngineResponse::Dropped { name }),
                )
            }
            EngineRequest::Insert { db, facts } => {
                let k = routed.expect("insert routes by name");
                (
                    Some(k as u32),
                    self.shards[k]
                        .update(&db, &facts, "")
                        .map(EngineResponse::Updated),
                )
            }
            EngineRequest::Delete { db, facts } => {
                let k = routed.expect("delete routes by name");
                (
                    Some(k as u32),
                    self.shards[k]
                        .update(&db, "", &facts)
                        .map(EngineResponse::Updated),
                )
            }
            EngineRequest::Prepare { query, generator } => {
                // Pre-flight generator validation: a client can pin the
                // generator it intends to answer with and learn about a
                // typo (or an unsupported parameter) at prepare time
                // instead of on the first answer.
                if let Some(name) = &generator {
                    if let Err(e) = generator_by_name(name) {
                        return (Some(0), Err(e));
                    }
                }
                // Shard 0 is the handle authority (see the module docs).
                (
                    Some(0),
                    self.shards[0]
                        .prepare(&query)
                        .map(|p| EngineResponse::Prepared { id: p.id.clone() }),
                )
            }
            EngineRequest::PreparedGet { id } => (
                Some(0),
                self.shards[0]
                    .prepared_get(&id)
                    .map(|p| EngineResponse::PreparedText {
                        id: p.id.clone(),
                        query: p.text.clone(),
                    }),
            ),
            EngineRequest::Answer {
                db,
                query,
                generator,
                eps,
                delta,
                seed,
                plan,
            } => {
                let k = routed.expect("answer routes by name");
                // Prepared handles live on shard 0: rewrite to the query
                // text before routing elsewhere, so any shard can serve
                // any handle.
                let query = match self.rewrite_prepared(k, query) {
                    Ok(query) => query,
                    Err(e) => return (Some(k as u32), Err(e)),
                };
                (
                    Some(k as u32),
                    self.shards[k]
                        .answer(&db, &query, &generator, eps, delta, seed, plan)
                        .map(EngineResponse::Answer),
                )
            }
            EngineRequest::Explain { db, generator } => {
                let k = routed.expect("explain routes by name");
                (
                    Some(k as u32),
                    self.shards[k]
                        .explain(&db, &generator)
                        .map(EngineResponse::Explain),
                )
            }
            EngineRequest::List => (
                None,
                Ok(EngineResponse::List(FrontDoor::merge_lists(
                    self.shards.iter().map(|s| s.list()),
                ))),
            ),
            EngineRequest::Stats => (None, Ok(EngineResponse::Stats(self.stats()))),
            EngineRequest::Metrics => (
                None,
                Ok(EngineResponse::Metrics(crate::proto::MetricsPayload {
                    per_shard: self.shards.iter().map(|s| s.metrics_snapshot()).collect(),
                    // The in-process topology never changes (growing
                    // means restarting with more --shards), so the epoch
                    // stays at its initial value and no moves happen.
                    topology_epoch: self.front.epoch(),
                    rebalance_moves: 0,
                    replication_lag: self.replication_lag(),
                })),
            ),
            EngineRequest::FetchSnapshot { db } => {
                let k = routed.expect("fetch_snapshot routes by name");
                (
                    Some(k as u32),
                    self.shards[k].export_snapshot(&db).map(|img| {
                        let image = crate::transfer::encode_image(&img);
                        EngineResponse::Snapshot {
                            db,
                            version: img.version,
                            image,
                        }
                    }),
                )
            }
            EngineRequest::InstallSnapshot { db, image } => {
                let k = routed.expect("install_snapshot routes by name");
                let result = crate::transfer::decode_image(&image).and_then(|img| {
                    if img.name != db {
                        return Err(EngineError::BadRequest(format!(
                            "install_snapshot: image is of database {:?}, not {db:?}",
                            img.name
                        )));
                    }
                    self.shards[k].install_snapshot(img)
                });
                if let Ok(info) = &result {
                    self.front.record_create(&info.name, k);
                }
                (Some(k as u32), result.map(EngineResponse::Created))
            }
            EngineRequest::Rebalance { .. } => (
                None,
                Err(EngineError::BadRequest(
                    "rebalance is a router op: an in-process engine grows by restarting \
                     with more --shards; use ocqa route for live growth"
                        .into(),
                )),
            ),
            // Subscriptions need a duplex session to push frames into;
            // on a plain request path (stdio, direct `handle` calls)
            // there is nowhere to deliver them.
            EngineRequest::Subscribe { db, .. } | EngineRequest::Unsubscribe { db, .. } => {
                let k = self.front.shard_of(&db);
                (
                    Some(k as u32),
                    Err(EngineError::BadRequest(
                        "subscribe needs a streaming session: connect over TCP and keep the \
                         connection open for pushed frames"
                            .into(),
                    )),
                )
            }
        }
    }

    /// Engine-wide statistics: the front door's request counter plus
    /// each shard's local counters, summed **exactly once** — the
    /// fan-out reads every shard a single time, and shards themselves
    /// never count requests (only the front door does), so a request
    /// retried after a [`EngineError::ShardFull`] admission rejection
    /// contributes one `requests` tick per attempt and its walks once.
    fn stats(&self) -> EngineStatsPayload {
        let per_shard: Vec<_> = self.shards.iter().map(|s| s.stats()).collect();
        let mut payload = self
            .front
            .sum_stats(self.shards[0].backend_label().to_string(), &per_shard);
        payload.replication_lag = self.replication_lag();
        payload
    }
}

impl LineService for Engine {
    fn serve_line(&self, line: &str) -> String {
        self.handle_line(line).to_string()
    }

    fn serve_open_line(&self, line: &str, session: &crate::subscribe::PushSession) -> String {
        self.handle_open_line(line, session).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::PlanKind;
    use ocqa_core::sample::sample_size;

    fn engine() -> Arc<Engine> {
        Engine::new(EngineConfig {
            workers: 2,
            cache_capacity: 64,
            ..EngineConfig::default()
        })
    }

    fn create_prefs(e: &Engine) {
        let resp = e.handle(EngineRequest::CreateDb {
            name: "prefs".into(),
            facts: "Pref(a,b). Pref(a,c). Pref(a,d). Pref(b,a). Pref(b,d). Pref(c,a).".into(),
            constraints: "Pref(x,y), Pref(y,x) -> false.".into(),
        });
        assert!(matches!(resp, EngineResponse::Created(_)), "{resp:?}");
    }

    fn answer_req(seed: u64) -> EngineRequest {
        EngineRequest::Answer {
            db: "prefs".into(),
            query: QueryRef::Text("(x) <- forall y: (Pref(x,y) | x = y)".into()),
            generator: "preference".into(),
            eps: 0.1,
            delta: 0.1,
            seed,
            plan: None,
        }
    }

    #[test]
    fn answer_estimates_example7() {
        let e = engine();
        create_prefs(&e);
        let EngineResponse::Answer(a) = e.handle(answer_req(7)) else {
            panic!("expected answer");
        };
        assert_eq!(a.walks, 150);
        assert!(!a.cached);
        assert_eq!(a.answers.len(), 1, "only (a) can win every comparison");
        // Exact CP is 9/20 = 0.45; ε = 0.1.
        assert!(
            (a.answers[0].p - 0.45).abs() <= 0.1,
            "p = {}",
            a.answers[0].p
        );
    }

    #[test]
    fn repeat_hits_cache_and_update_invalidates() {
        let e = engine();
        create_prefs(&e);
        let EngineResponse::Answer(first) = e.handle(answer_req(7)) else {
            panic!()
        };
        let EngineResponse::Answer(second) = e.handle(answer_req(7)) else {
            panic!()
        };
        assert!(!first.cached && second.cached);
        assert_eq!(second.cache.hits, 1);
        let rows_eq = first
            .answers
            .iter()
            .zip(&second.answers)
            .all(|(x, y)| x.tuple == y.tuple && x.p == y.p);
        assert!(rows_eq, "cached answer must be byte-identical");

        // Different seed is a different computation.
        let EngineResponse::Answer(third) = e.handle(answer_req(8)) else {
            panic!()
        };
        assert!(!third.cached);

        // An update bumps the version; the same request recomputes.
        let resp = e.handle(EngineRequest::Delete {
            db: "prefs".into(),
            facts: "Pref(c,a).".into(),
        });
        assert!(matches!(resp, EngineResponse::Updated(_)));
        let EngineResponse::Answer(fourth) = e.handle(answer_req(7)) else {
            panic!()
        };
        assert!(!fourth.cached, "update must invalidate");
        assert_eq!(fourth.db_version, 2);
    }

    #[test]
    fn prepared_handles_work() {
        let e = engine();
        create_prefs(&e);
        let EngineResponse::Prepared { id } = e.handle(EngineRequest::Prepare {
            query: "(x) <- exists y: Pref(x,y)".into(),
            generator: None,
        }) else {
            panic!()
        };
        let EngineResponse::Answer(a) = e.handle(EngineRequest::Answer {
            db: "prefs".into(),
            query: QueryRef::Prepared(id),
            generator: "uniform".into(),
            eps: 0.2,
            delta: 0.2,
            seed: 1,
            plan: None,
        }) else {
            panic!()
        };
        assert!(!a.answers.is_empty());
    }

    #[test]
    fn prepare_validates_the_intended_generator() {
        let e = engine();
        let prepare = |generator: Option<&str>| {
            e.handle(EngineRequest::Prepare {
                query: "(x) <- exists y: Pref(x,y)".into(),
                generator: generator.map(str::to_string),
            })
        };
        assert!(matches!(
            prepare(Some("nope")),
            EngineResponse::Error(EngineError::UnknownGenerator(_))
        ));
        assert!(matches!(
            prepare(Some("trust:9/1")),
            EngineResponse::Error(EngineError::BadRequest(_))
        ));
        // Valid generator names pass through to the normal prepare path.
        assert!(matches!(
            prepare(Some("trust")),
            EngineResponse::Prepared { .. }
        ));
        assert!(matches!(prepare(None), EngineResponse::Prepared { .. }));
    }

    #[test]
    fn trust_generator_served_through_the_protocol() {
        // The Example 5 trust model, requested by name over the protocol:
        // on a key-only pairs database its own group policy serves the
        // key-repair fast path, and each fact of a 50/50 pair survives
        // with probability 3/8 (not the uniform chain's 1/3).
        let e = engine();
        let resp = e.handle(EngineRequest::CreateDb {
            name: "pair".into(),
            facts: "R(a,1). R(a,2).".into(),
            constraints: "R(x,y), R(x,z) -> y = z.".into(),
        });
        assert!(matches!(resp, EngineResponse::Created(_)));
        let answer = |generator: &str| {
            e.handle(EngineRequest::Answer {
                db: "pair".into(),
                query: QueryRef::Text("(y) <- R('a', y)".into()),
                generator: generator.into(),
                eps: 0.05,
                delta: 0.05,
                seed: 3,
                plan: None,
            })
        };
        let EngineResponse::Answer(a) = answer("trust") else {
            panic!("trust generator must be served");
        };
        assert_eq!(a.plan, PlanKind::KeyRepair);
        for row in &a.answers {
            assert!(
                (row.p - 0.375).abs() <= 0.06,
                "{:?}: p = {} should be ≈ 3/8",
                row.tuple,
                row.p
            );
        }
        // Equal explicit trust is the same relative-trust distribution.
        let EngineResponse::Answer(a) = answer("trust:3/4") else {
            panic!("parameterized trust must be served");
        };
        assert_eq!(a.plan, PlanKind::KeyRepair);
        // Malformed or out-of-range parameters are rejected up front.
        for bad in [
            "trust:0/1",
            "trust:2/1",
            "trust:-1/2",
            "trust:abc",
            "trust:",
        ] {
            assert!(
                matches!(
                    answer(bad),
                    EngineResponse::Error(EngineError::BadRequest(_))
                ),
                "{bad} must be rejected"
            );
        }
        assert!(matches!(
            answer("nope"),
            EngineResponse::Error(EngineError::UnknownGenerator(_))
        ));
    }

    #[test]
    fn bad_inputs_are_reported_not_panicked() {
        let e = engine();
        assert!(matches!(
            e.handle(EngineRequest::Answer {
                db: "missing".into(),
                query: QueryRef::Text("(x) <- R(x)".into()),
                generator: "uniform".into(),
                eps: 0.1,
                delta: 0.1,
                seed: 0,
                plan: None,
            }),
            EngineResponse::Error(EngineError::UnknownDatabase(_))
        ));
        create_prefs(&e);
        assert!(matches!(
            e.handle(EngineRequest::Answer {
                db: "prefs".into(),
                query: QueryRef::Text("(x) <- exists y: Pref(x,y)".into()),
                generator: "nope".into(),
                eps: 0.1,
                delta: 0.1,
                seed: 0,
                plan: None,
            }),
            EngineResponse::Error(EngineError::UnknownGenerator(_))
        ));
        assert!(matches!(
            e.handle(EngineRequest::Answer {
                db: "prefs".into(),
                query: QueryRef::Text("(x) <- exists y: Pref(x,y)".into()),
                generator: "uniform".into(),
                eps: 0.0,
                delta: 0.1,
                seed: 0,
                plan: None,
            }),
            EngineResponse::Error(EngineError::BadRequest(_))
        ));
        // A tiny ε would need an astronomical walk budget: the request is
        // rejected up front instead of pinning the pool (DoS guard).
        let resp = e.handle(EngineRequest::Answer {
            db: "prefs".into(),
            query: QueryRef::Text("(x) <- exists y: Pref(x,y)".into()),
            generator: "uniform".into(),
            eps: 1e-9,
            delta: 0.1,
            seed: 0,
            plan: None,
        });
        let EngineResponse::Error(EngineError::BadRequest(msg)) = resp else {
            panic!("expected budget rejection, got {resp:?}");
        };
        assert!(msg.contains("engine limit"), "{msg}");
    }

    fn create_kv(e: &Engine) {
        let resp = e.handle(EngineRequest::CreateDb {
            name: "kv".into(),
            facts: "R(1,10). R(1,20). R(2,30). R(2,40). R(3,50).".into(),
            constraints: "R(x,y), R(x,z) -> y = z.".into(),
        });
        assert!(matches!(resp, EngineResponse::Created(_)), "{resp:?}");
    }

    fn stats_of(e: &Engine) -> EngineStatsPayload {
        let EngineResponse::Stats(s) = e.handle(EngineRequest::Stats) else {
            panic!("expected stats");
        };
        s
    }

    #[test]
    fn failed_requests_do_not_inflate_answer_stats() {
        let e = engine();
        // Unknown database, unknown generator, bad ε, over-budget ε: all
        // rejected before (or instead of) sampling — none may count as a
        // served answer or as walks.
        for (db, generator, eps) in [
            ("missing", "uniform", 0.1),
            ("prefs", "nope", 0.1),
            ("prefs", "uniform", 0.0),
            ("prefs", "uniform", 1e-9),
        ] {
            if db == "prefs" && stats_of(&e).databases == 0 {
                create_prefs(&e);
            }
            let resp = e.handle(EngineRequest::Answer {
                db: db.into(),
                query: QueryRef::Text("(x) <- exists y: Pref(x,y)".into()),
                generator: generator.into(),
                eps,
                delta: 0.1,
                seed: 0,
                plan: None,
            });
            assert!(matches!(resp, EngineResponse::Error(_)), "{resp:?}");
        }
        let s = stats_of(&e);
        assert_eq!(s.answers, 0, "failed requests must not count as answers");
        assert_eq!(s.walks, 0);

        // A successful answer counts once, with its walks.
        assert!(matches!(e.handle(answer_req(7)), EngineResponse::Answer(_)));
        let s = stats_of(&e);
        assert_eq!((s.answers, s.walks), (1, 150));
        // A cached answer counts as an answer but adds no walks.
        assert!(matches!(e.handle(answer_req(7)), EngineResponse::Answer(_)));
        let s = stats_of(&e);
        assert_eq!((s.answers, s.walks), (2, 150));
    }

    #[test]
    fn planner_routes_by_shape_and_generator() {
        let e = engine();
        create_kv(&e);
        create_prefs(&e);
        let answer = |db: &str, generator: &str, plan: Option<PlanKind>| {
            e.handle(EngineRequest::Answer {
                db: db.into(),
                query: QueryRef::Text(
                    if db == "kv" {
                        "(x) <- exists y: R(x,y)"
                    } else {
                        "(x) <- exists y: Pref(x,y)"
                    }
                    .into(),
                ),
                generator: generator.into(),
                eps: 0.1,
                delta: 0.1,
                seed: 1,
                plan,
            })
        };
        // Key-only constraints serve key-repair; DC constraints localized.
        let EngineResponse::Answer(a) = answer("kv", "uniform", None) else {
            panic!()
        };
        assert_eq!(a.plan, PlanKind::KeyRepair);
        let EngineResponse::Answer(a) = answer("prefs", "uniform", None) else {
            panic!()
        };
        assert_eq!(a.plan, PlanKind::Localized);
        // Non-component-local generators fall back to monolithic.
        let EngineResponse::Answer(a) = answer("prefs", "preference", None) else {
            panic!()
        };
        assert_eq!(a.plan, PlanKind::Monolithic);
        // Explicit overrides: monolithic always; unsound forces error.
        let EngineResponse::Answer(a) = answer("kv", "uniform", Some(PlanKind::Monolithic)) else {
            panic!()
        };
        assert_eq!(a.plan, PlanKind::Monolithic);
        assert!(matches!(
            answer("prefs", "uniform", Some(PlanKind::KeyRepair)),
            EngineResponse::Error(EngineError::PlanRejected {
                plan: PlanKind::KeyRepair,
                gate: crate::planner::cost::GATE_KEY_COVER,
                ..
            })
        ));
        // The catalog reports the structural classification in `list`.
        let EngineResponse::List(infos) = e.handle(EngineRequest::List) else {
            panic!()
        };
        let by_name: std::collections::HashMap<_, _> =
            infos.iter().map(|i| (i.name.as_str(), i.plan)).collect();
        assert_eq!(by_name["kv"], PlanKind::KeyRepair);
        assert_eq!(by_name["prefs"], PlanKind::Localized);
    }

    #[test]
    fn planner_disabled_pins_automatic_answers_to_monolithic() {
        let e = Engine::new(EngineConfig {
            workers: 2,
            cache_capacity: 64,
            planner: PlannerMode::Off,
            ..EngineConfig::default()
        });
        create_kv(&e);
        let req = |plan: Option<PlanKind>| EngineRequest::Answer {
            db: "kv".into(),
            query: QueryRef::Text("(x) <- exists y: R(x,y)".into()),
            generator: "uniform".into(),
            eps: 0.1,
            delta: 0.1,
            seed: 1,
            plan,
        };
        let EngineResponse::Answer(a) = e.handle(req(None)) else {
            panic!()
        };
        assert_eq!(a.plan, PlanKind::Monolithic);
        // Explicit plan requests still work with the planner off.
        let EngineResponse::Answer(a) = e.handle(req(Some(PlanKind::KeyRepair))) else {
            panic!()
        };
        assert_eq!(a.plan, PlanKind::KeyRepair);
    }

    #[test]
    fn vetoing_backend_blocks_mutations() {
        use crate::storage::{InstallImage, RecoveredState, StorageBackend, UpdateDelta};

        /// Journals nothing and vetoes everything: every mutation must
        /// fail *and leave no trace* — the journal-before-mutate contract.
        struct Veto;
        impl StorageBackend for Veto {
            fn label(&self) -> &'static str {
                "veto"
            }
            fn recover(&self) -> Result<RecoveredState, EngineError> {
                Ok(RecoveredState::empty())
            }
            fn journal_install(&self, _: &InstallImage<'_>) -> Result<(), EngineError> {
                Err(EngineError::Storage("no".into()))
            }
            fn journal_update(&self, _: &UpdateDelta<'_>) -> Result<(), EngineError> {
                Err(EngineError::Storage("no".into()))
            }
            fn journal_drop(&self, _: &str, _: u64) -> Result<(), EngineError> {
                Err(EngineError::Storage("no".into()))
            }
            fn journal_prepare(&self, _: &str, _: u64) -> Result<(), EngineError> {
                Err(EngineError::Storage("no".into()))
            }
        }

        let e = Engine::with_backend(
            EngineConfig {
                workers: 1,
                cache_capacity: 8,
                ..EngineConfig::default()
            },
            Arc::new(Veto),
        )
        .unwrap();
        let resp = e.handle(EngineRequest::CreateDb {
            name: "db".into(),
            facts: "R(1,1).".into(),
            constraints: "R(x,y), R(x,z) -> y = z.".into(),
        });
        assert!(matches!(
            resp,
            EngineResponse::Error(EngineError::Storage(_))
        ));
        let resp = e.handle(EngineRequest::Prepare {
            query: "(x) <- exists y: R(x,y)".into(),
            generator: None,
        });
        assert!(matches!(
            resp,
            EngineResponse::Error(EngineError::Storage(_))
        ));
        let s = stats_of(&e);
        assert_eq!((s.databases, s.prepared), (0, 0), "vetoed = not applied");
        assert_eq!(s.backend, "veto");
    }

    #[test]
    fn with_backend_restores_versions_plans_and_prepared_handles() {
        use crate::storage::{RecoveredState, RestoredDatabase};
        use ocqa_logic::{parser, ViolationSet};
        use parking_lot::Mutex;

        // Hand-build the persisted world a disk backend would recover.
        let constraints = "R(x,y), R(x,z) -> y = z.";
        let facts = parser::parse_facts("R(1,10). R(1,20). R(2,30).").unwrap();
        let sigma = parser::parse_constraints(constraints).unwrap();
        let schema = parser::infer_schema(&facts, &sigma).unwrap();
        let db = ocqa_data::Database::from_facts(schema, facts).unwrap();
        let violations = ViolationSet::compute(&sigma, &db);

        struct Fixed(Mutex<Option<RecoveredState>>);
        impl crate::storage::StorageBackend for Fixed {
            fn label(&self) -> &'static str {
                "fixed"
            }
            fn recover(&self) -> Result<RecoveredState, EngineError> {
                Ok(self.0.lock().take().expect("recovered once"))
            }
            fn journal_install(
                &self,
                _: &crate::storage::InstallImage<'_>,
            ) -> Result<(), EngineError> {
                Ok(())
            }
            fn journal_update(
                &self,
                _: &crate::storage::UpdateDelta<'_>,
            ) -> Result<(), EngineError> {
                Ok(())
            }
            fn journal_drop(&self, _: &str, _: u64) -> Result<(), EngineError> {
                Ok(())
            }
            fn journal_prepare(&self, _: &str, _: u64) -> Result<(), EngineError> {
                Ok(())
            }
        }

        let state = RecoveredState {
            databases: vec![RestoredDatabase {
                name: "kv".into(),
                version: 7,
                db,
                constraints: constraints.into(),
                plan: PlanKind::KeyRepair,
                violations,
            }],
            // Non-contiguous handles (q2 was evicted before the kill) and
            // a counter above every live id: both must restore verbatim.
            prepared: vec![
                ("q1".into(), "(x) <- exists y: R(x,y)".into()),
                ("q3".into(), "(y) <- exists x: R(x,y)".into()),
            ],
            prepared_next: 5,
            next_version: 9, // a dropped db once used 8 and 9
            ..RecoveredState::empty()
        };
        let e = Engine::with_backend(
            EngineConfig {
                workers: 2,
                cache_capacity: 16,
                ..EngineConfig::default()
            },
            Arc::new(Fixed(Mutex::new(Some(state)))),
        )
        .unwrap();

        // The restored database serves at its recorded version and plan.
        let EngineResponse::Answer(a) = e.handle(EngineRequest::Answer {
            db: "kv".into(),
            query: QueryRef::Prepared("q1".into()),
            generator: "uniform".into(),
            eps: 0.2,
            delta: 0.2,
            seed: 4,
            plan: None,
        }) else {
            panic!("restored database must answer");
        };
        assert_eq!(a.db_version, 7);
        assert_eq!(a.plan, PlanKind::KeyRepair);
        // Both prepared handles restored verbatim (non-contiguous ids).
        let EngineResponse::Prepared { id } = e.handle(EngineRequest::Prepare {
            query: "(y) <- exists x: R(x,y)".into(),
            generator: None,
        }) else {
            panic!()
        };
        assert_eq!(id, "q3", "re-preparing returns the restored handle");
        // New allocations continue above the restored counter, so an
        // evicted pre-restart handle is never re-minted.
        let EngineResponse::Prepared { id } = e.handle(EngineRequest::Prepare {
            query: "(x) <- R(x, 99)".into(),
            generator: None,
        }) else {
            panic!()
        };
        assert_eq!(id, "q6");
        // The version floor covers the dropped incarnations: a new
        // database starts above 9, never aliasing old cache keys.
        let EngineResponse::Created(info) = e.handle(EngineRequest::CreateDb {
            name: "fresh".into(),
            facts: "S(1,1).".into(),
            constraints: "S(x,y), S(x,z) -> y = z.".into(),
        }) else {
            panic!()
        };
        assert_eq!(info.version, 10);
    }

    #[test]
    fn handle_line_roundtrip() {
        let e = engine();
        let out = e.handle_line(r#"{"op":"ping"}"#).to_string();
        assert!(out.contains("\"pong\":true"));
        let out = e.handle_line("not json").to_string();
        assert!(out.contains("\"ok\":false"));
        // ping + bad line + this stats request itself = 3.
        let out = e.handle_line(r#"{"op":"stats"}"#).to_string();
        assert!(out.contains("\"requests\":3"), "{out}");
        assert!(out.contains("\"shards\":1"), "{out}");
    }

    #[test]
    fn sharded_engine_routes_merges_and_recreates() {
        let e = Engine::new(EngineConfig {
            workers: 4,
            cache_capacity: 64,
            shards: 3,
            ..EngineConfig::default()
        });
        assert_eq!(e.shards(), 3);
        let names = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot"];
        for name in names {
            let resp = e.handle(EngineRequest::CreateDb {
                name: name.into(),
                facts: "R(1,10). R(1,20). R(2,30).".into(),
                constraints: "R(x,y), R(x,z) -> y = z.".into(),
            });
            assert!(matches!(resp, EngineResponse::Created(_)), "{resp:?}");
            // Routing is deterministic and consistent with the response.
            assert_eq!(e.shard_of(name), e.shard_of(name));
        }
        // Re-creating an existing name routes to its owner and fails.
        let resp = e.handle(EngineRequest::CreateDb {
            name: "alpha".into(),
            facts: "".into(),
            constraints: "".into(),
        });
        assert!(matches!(
            resp,
            EngineResponse::Error(EngineError::DatabaseExists(_))
        ));
        // `list` merges every shard, sorted by name.
        let EngineResponse::List(infos) = e.handle(EngineRequest::List) else {
            panic!()
        };
        let listed: Vec<&str> = infos.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(listed, names, "merged list must be sorted and complete");
        // Every database answers, wherever it landed.
        for (i, name) in names.iter().enumerate() {
            let EngineResponse::Answer(a) = e.handle(EngineRequest::Answer {
                db: (*name).into(),
                query: QueryRef::Text("(x) <- exists y: R(x,y)".into()),
                generator: "uniform".into(),
                eps: 0.1,
                delta: 0.1,
                seed: i as u64,
                plan: None,
            }) else {
                panic!("{name} must answer");
            };
            // Versions are shard-local counters: at least 1, and never
            // larger than the number of creates.
            assert!((1..=names.len() as u64).contains(&a.db_version));
        }
        // Updates route to the owning shard.
        let resp = e.handle(EngineRequest::Insert {
            db: "echo".into(),
            facts: "R(9,90).".into(),
        });
        let EngineResponse::Updated(out) = resp else {
            panic!("{resp:?}")
        };
        assert_eq!(out.inserted, 1);
        // Drop frees the name; a recreate lands on the router's shard.
        assert!(matches!(
            e.handle(EngineRequest::DropDb {
                name: "echo".into()
            }),
            EngineResponse::Dropped { .. }
        ));
        let resp = e.handle(EngineRequest::CreateDb {
            name: "echo".into(),
            facts: "R(1,1).".into(),
            constraints: "R(x,y), R(x,z) -> y = z.".into(),
        });
        assert!(matches!(resp, EngineResponse::Created(_)), "{resp:?}");
        // Stats sum every shard exactly once.
        let s = stats_of(&e);
        assert_eq!(s.shards, 3);
        assert_eq!(s.databases, 6);
        assert_eq!(s.answers, 6);
        assert_eq!(s.walks, 6 * 150);
        // A second stats read is idempotent on the summed counters.
        let s2 = stats_of(&e);
        assert_eq!((s2.answers, s2.walks, s2.databases), (6, 900, 6));
        assert_eq!(s2.requests, s.requests + 1, "only requests advance");
    }

    #[test]
    fn single_flight_coalesces_concurrent_identical_misses() {
        use std::sync::Barrier;

        let e = Engine::new(EngineConfig {
            workers: 4,
            cache_capacity: 64,
            ..EngineConfig::default()
        });
        create_prefs(&e);
        // A budget big enough that the leader is still sampling while
        // the other threads arrive (the barrier lines them up).
        let (eps, delta) = (0.03, 0.05);
        let expected_walks = sample_size(eps, delta);
        const THREADS: usize = 8;
        let barrier = Arc::new(Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let e = e.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    e.handle(EngineRequest::Answer {
                        db: "prefs".into(),
                        query: QueryRef::Text("(x) <- exists y: Pref(x,y)".into()),
                        generator: "uniform".into(),
                        eps,
                        delta,
                        seed: 7,
                        plan: None,
                    })
                })
            })
            .collect();
        let payloads: Vec<_> = handles
            .into_iter()
            .map(|h| match h.join().unwrap() {
                EngineResponse::Answer(a) => a,
                other => panic!("expected answer, got {other:?}"),
            })
            .collect();
        // Exactly one sampling run served all N requests…
        let s = stats_of(&e);
        assert_eq!(
            s.walks, expected_walks,
            "N concurrent identical misses must sample once"
        );
        assert_eq!(s.answers, THREADS as u64);
        // …and the other N−1 were either coalesced onto the leader's
        // flight or (having arrived after it retired) served from cache.
        assert_eq!(
            s.coalesced + s.cache.hits,
            (THREADS - 1) as u64,
            "coalesced {} hits {}",
            s.coalesced,
            s.cache.hits
        );
        // Every caller saw bit-identical estimates.
        for p in &payloads[1..] {
            assert_eq!(p.answers, payloads[0].answers, "divergent answers");
            assert_eq!(p.walks, expected_walks);
        }
        // Coalesced responses are marked as such.
        let coalesced = payloads.iter().filter(|p| p.coalesced).count() as u64;
        assert_eq!(coalesced, s.coalesced);
    }

    #[test]
    fn shard_full_rejection_then_retry_counts_once() {
        // Admission rejection must leave the success counters untouched,
        // so a client retry can never double-count: an engine whose
        // admission limit is 0 rejects every cold answer…
        let full = Engine::new(EngineConfig {
            workers: 1,
            cache_capacity: 8,
            max_inflight: 0,
            ..EngineConfig::default()
        });
        create_prefs(&full);
        for _ in 0..3 {
            // "retries"
            let resp = full.handle(answer_req(7));
            assert!(
                matches!(resp, EngineResponse::Error(EngineError::ShardFull(0))),
                "{resp:?}"
            );
        }
        let s = stats_of(&full);
        assert_eq!((s.answers, s.walks, s.coalesced), (0, 0, 0));
        // create + 3 rejected answers + this stats = 5: every attempt is
        // one request, counted at the front door only.
        assert_eq!(s.requests, 5);
    }

    #[test]
    fn ttl_expires_cached_answers() {
        let e = Engine::new(EngineConfig {
            workers: 2,
            cache_capacity: 64,
            ttl_ms: 30,
            ..EngineConfig::default()
        });
        create_kv(&e);
        let req = || EngineRequest::Answer {
            db: "kv".into(),
            query: QueryRef::Text("(x) <- exists y: R(x,y)".into()),
            generator: "uniform".into(),
            eps: 0.1,
            delta: 0.1,
            seed: 5,
            plan: None,
        };
        let EngineResponse::Answer(cold) = e.handle(req()) else {
            panic!()
        };
        assert!(!cold.cached);
        let EngineResponse::Answer(warm) = e.handle(req()) else {
            panic!()
        };
        assert!(warm.cached, "within the TTL the entry serves");
        std::thread::sleep(std::time::Duration::from_millis(90));
        let EngineResponse::Answer(late) = e.handle(req()) else {
            panic!()
        };
        assert!(!late.cached, "past the TTL the answer is recomputed");
        assert_eq!(late.answers, cold.answers, "recompute is deterministic");
        let s = stats_of(&e);
        assert_eq!(s.cache.expired, 1);
        assert_eq!(s.walks, 300, "two computations, one expiry");
    }

    #[test]
    fn answers_bit_identical_across_worker_counts() {
        // The scheduling contract end to end: every plan's estimate is a
        // pure function of (database, query, seed) — pool size, work
        // stealing and chunk interleaving must never show through.
        // ε/δ = 0.05 needs several chunks, so with 8 workers the chunks
        // genuinely race.
        let answers = |workers: usize| -> Vec<String> {
            let e = Engine::new(EngineConfig {
                workers,
                cache_capacity: 64,
                ..EngineConfig::default()
            });
            create_kv(&e);
            [
                PlanKind::KeyRepair,
                PlanKind::Localized,
                PlanKind::Monolithic,
            ]
            .into_iter()
            .map(|plan| {
                let EngineResponse::Answer(a) = e.handle(EngineRequest::Answer {
                    db: "kv".into(),
                    query: QueryRef::Text("(x) <- exists y: R(x,y)".into()),
                    generator: "uniform".into(),
                    eps: 0.05,
                    delta: 0.05,
                    seed: 11,
                    plan: Some(plan),
                }) else {
                    panic!("expected answer under {plan:?}");
                };
                assert!(!a.cached);
                format!("{:?}", a.answers)
            })
            .collect()
        };
        let reference = answers(1);
        for workers in [2, 8] {
            assert_eq!(
                answers(workers),
                reference,
                "answers drifted at {workers} workers"
            );
        }
    }
}
