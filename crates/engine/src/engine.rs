//! The engine: catalog + prepared queries + sampler pool + answer cache,
//! behind one concurrent [`Engine::handle`] entry point.
//!
//! Locking discipline: the catalog and cache locks are held only to read
//! or mutate metadata — never across sampling. An `answer` request takes
//! a snapshot (`Arc<RepairContext>`) under the catalog lock, releases it,
//! samples on the pool, and re-takes the cache lock to store the result.
//! Concurrent sessions therefore sample in parallel, bounded only by the
//! pool's worker count.

use crate::cache::{AnswerCache, CacheKey, CacheStats};
use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::json::Json;
use crate::pool::SamplerPool;
use crate::prepared::PreparedRegistry;
use crate::proto::{
    AnswerPayload, AnswerRow, EngineRequest, EngineResponse, EngineStatsPayload, QueryRef,
};
use ocqa_core::sample::{sample_size, SampleTally};
use ocqa_core::{ChainGenerator, PreferenceGenerator, UniformGenerator};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Engine tunables.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Sampler-pool worker threads.
    pub workers: usize,
    /// Answer-cache capacity (entries).
    pub cache_capacity: usize,
    /// Largest per-request walk budget the engine accepts. Without a cap
    /// a client-supplied tiny ε/δ would make `sample_size` astronomical
    /// and one request could pin every worker (and the job queue) forever.
    pub max_walks: u64,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            cache_capacity: 1024,
            max_walks: 1_000_000,
        }
    }
}

/// Instantiates a generator by its protocol name.
pub fn generator_by_name(name: &str) -> Result<Arc<dyn ChainGenerator>, EngineError> {
    match name {
        "uniform" => Ok(Arc::new(UniformGenerator::new())),
        "uniform-deletions" => Ok(Arc::new(UniformGenerator::deletions_only())),
        "preference" => Ok(Arc::new(PreferenceGenerator::new())),
        other => Err(EngineError::UnknownGenerator(other.to_string())),
    }
}

/// A long-lived, concurrent CQA serving engine.
pub struct Engine {
    catalog: RwLock<Catalog>,
    cache: Mutex<AnswerCache>,
    prepared: RwLock<PreparedRegistry>,
    pool: SamplerPool,
    max_walks: u64,
    requests: AtomicU64,
    answers: AtomicU64,
    walks: AtomicU64,
}

impl Engine {
    /// Builds an engine (spawns the sampler pool).
    pub fn new(config: EngineConfig) -> Arc<Engine> {
        Arc::new(Engine {
            catalog: RwLock::new(Catalog::new()),
            cache: Mutex::new(AnswerCache::new(config.cache_capacity)),
            prepared: RwLock::new(PreparedRegistry::new()),
            pool: SamplerPool::new(config.workers),
            max_walks: config.max_walks.max(1),
            requests: AtomicU64::new(0),
            answers: AtomicU64::new(0),
            walks: AtomicU64::new(0),
        })
    }

    /// Handles one request. Safe to call from any number of threads.
    pub fn handle(&self, req: EngineRequest) -> EngineResponse {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match self.dispatch(req) {
            Ok(resp) => resp,
            Err(e) => EngineResponse::Error(e),
        }
    }

    /// Handles one raw protocol line (parse → handle → render).
    pub fn handle_line(&self, line: &str) -> Json {
        let req = crate::json::parse(line)
            .map_err(|e| EngineError::BadRequest(e.to_string()))
            .and_then(|v| EngineRequest::from_json(&v));
        match req {
            Ok(req) => self.handle(req).to_json(),
            Err(e) => {
                self.requests.fetch_add(1, Ordering::Relaxed);
                EngineResponse::Error(e).to_json()
            }
        }
    }

    fn dispatch(&self, req: EngineRequest) -> Result<EngineResponse, EngineError> {
        match req {
            EngineRequest::Ping => Ok(EngineResponse::Pong),
            EngineRequest::CreateDb {
                name,
                facts,
                constraints,
            } => {
                // Parse and compute V(D, Σ) before taking the write lock:
                // a big create must not stall concurrent answers.
                let parsed = crate::catalog::ParsedDatabase::parse(&facts, &constraints)?;
                let info = self.catalog.write().install(&name, parsed)?;
                Ok(EngineResponse::Created(info))
            }
            EngineRequest::DropDb { name } => {
                let existed = self.catalog.write().drop_db(&name);
                if !existed {
                    return Err(EngineError::UnknownDatabase(name));
                }
                self.cache.lock().invalidate_db(&name);
                Ok(EngineResponse::Dropped { name })
            }
            EngineRequest::Insert { db, facts } => self.update(&db, &facts, ""),
            EngineRequest::Delete { db, facts } => self.update(&db, "", &facts),
            EngineRequest::Prepare { query } => {
                let prepared = self.prepared.write().prepare(&query)?;
                Ok(EngineResponse::Prepared {
                    id: prepared.id.clone(),
                })
            }
            EngineRequest::Answer {
                db,
                query,
                generator,
                eps,
                delta,
                seed,
            } => self.answer(&db, &query, &generator, eps, delta, seed),
            EngineRequest::List => Ok(EngineResponse::List(self.catalog.read().list())),
            EngineRequest::Stats => Ok(EngineResponse::Stats(self.stats())),
        }
    }

    fn update(&self, db: &str, insert: &str, delete: &str) -> Result<EngineResponse, EngineError> {
        // Parse outside the lock; the locked phase is the incremental
        // violation update, proportional to the delta's neighbourhood.
        let inserts = ocqa_logic::parser::parse_facts(insert)
            .map_err(|e| EngineError::Parse(e.to_string()))?;
        let deletes = ocqa_logic::parser::parse_facts(delete)
            .map_err(|e| EngineError::Parse(e.to_string()))?;
        let outcome = self.catalog.write().update_parsed(db, &inserts, &deletes)?;
        // An effective update bumps the version, so cached entries for
        // the old version can never be served again; purge them eagerly
        // so they don't occupy cache slots until eviction. No-op updates
        // keep the version and the cache — idempotent retries stay cheap.
        if outcome.inserted > 0 || outcome.removed > 0 {
            self.cache.lock().invalidate_db(db);
        }
        Ok(EngineResponse::Updated(outcome))
    }

    fn answer(
        &self,
        db: &str,
        query_ref: &QueryRef,
        generator: &str,
        eps: f64,
        delta: f64,
        seed: u64,
    ) -> Result<EngineResponse, EngineError> {
        if eps <= 0.0 || eps >= 1.0 || delta <= 0.0 || delta >= 1.0 {
            return Err(EngineError::BadRequest(
                "eps and delta must lie in (0,1)".into(),
            ));
        }
        let walks = sample_size(eps, delta);
        if walks > self.max_walks {
            return Err(EngineError::BadRequest(format!(
                "eps/delta require {walks} walks, above the engine limit of {}",
                self.max_walks
            )));
        }
        self.answers.fetch_add(1, Ordering::Relaxed);
        // Inline text is routed through the prepared registry too: the
        // parse/validate cost is paid once per distinct query text.
        let prepared = match query_ref {
            QueryRef::Text(text) => {
                // Fast path under the read lock: hot workloads repeat the
                // same inline text, and a write lock here would serialize
                // every concurrent answer.
                let known = self.prepared.read().lookup_text(text);
                match known {
                    Some(p) => p,
                    None => self.prepared.write().prepare(text)?,
                }
            }
            QueryRef::Prepared(id) => self.prepared.read().get(id)?,
        };
        let gen = generator_by_name(generator)?;
        let (ctx, version) = self.catalog.read().context(db)?;
        let key = CacheKey {
            db: db.to_string(),
            version,
            query: prepared.text.clone(),
            generator: generator.to_string(),
            eps_bits: eps.to_bits(),
            delta_bits: delta.to_bits(),
            seed,
        };
        // One lock acquisition serves both the lookup and the stats
        // snapshot reported alongside the answer.
        let (hit, stats) = {
            let mut cache = self.cache.lock();
            let hit = cache.get(&key);
            let stats = cache.stats();
            (hit, stats)
        };
        if let Some(tally) = hit {
            return Ok(answer_response(&tally, true, version, stats));
        }
        // Cache miss: sample on the pool with no locks held.
        let tally = Arc::new(self.pool.run(&ctx, &gen, &prepared.query, walks, seed)?);
        self.walks.fetch_add(walks, Ordering::Relaxed);
        let stats = {
            let mut cache = self.cache.lock();
            cache.insert(key, tally.clone());
            cache.stats()
        };
        Ok(answer_response(&tally, false, version, stats))
    }

    /// The configured per-request walk ceiling.
    pub fn max_walks(&self) -> u64 {
        self.max_walks
    }

    fn stats(&self) -> EngineStatsPayload {
        EngineStatsPayload {
            requests: self.requests.load(Ordering::Relaxed),
            answers: self.answers.load(Ordering::Relaxed),
            walks: self.walks.load(Ordering::Relaxed),
            workers: self.pool.workers(),
            databases: self.catalog.read().len(),
            prepared: self.prepared.read().len(),
            cache: self.cache.lock().stats(),
        }
    }
}

fn answer_response(
    tally: &SampleTally,
    cached: bool,
    version: u64,
    stats: CacheStats,
) -> EngineResponse {
    let answers = tally
        .frequencies()
        .into_iter()
        .map(|(tuple, p)| AnswerRow { tuple, p })
        .collect();
    EngineResponse::Answer(AnswerPayload {
        answers,
        walks: tally.walks,
        failed_walks: tally.failed_walks,
        cached,
        db_version: version,
        cache: stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Arc<Engine> {
        Engine::new(EngineConfig {
            workers: 2,
            cache_capacity: 64,
            ..EngineConfig::default()
        })
    }

    fn create_prefs(e: &Engine) {
        let resp = e.handle(EngineRequest::CreateDb {
            name: "prefs".into(),
            facts: "Pref(a,b). Pref(a,c). Pref(a,d). Pref(b,a). Pref(b,d). Pref(c,a).".into(),
            constraints: "Pref(x,y), Pref(y,x) -> false.".into(),
        });
        assert!(matches!(resp, EngineResponse::Created(_)), "{resp:?}");
    }

    fn answer_req(seed: u64) -> EngineRequest {
        EngineRequest::Answer {
            db: "prefs".into(),
            query: QueryRef::Text("(x) <- forall y: (Pref(x,y) | x = y)".into()),
            generator: "preference".into(),
            eps: 0.1,
            delta: 0.1,
            seed,
        }
    }

    #[test]
    fn answer_estimates_example7() {
        let e = engine();
        create_prefs(&e);
        let EngineResponse::Answer(a) = e.handle(answer_req(7)) else {
            panic!("expected answer");
        };
        assert_eq!(a.walks, 150);
        assert!(!a.cached);
        assert_eq!(a.answers.len(), 1, "only (a) can win every comparison");
        // Exact CP is 9/20 = 0.45; ε = 0.1.
        assert!(
            (a.answers[0].p - 0.45).abs() <= 0.1,
            "p = {}",
            a.answers[0].p
        );
    }

    #[test]
    fn repeat_hits_cache_and_update_invalidates() {
        let e = engine();
        create_prefs(&e);
        let EngineResponse::Answer(first) = e.handle(answer_req(7)) else {
            panic!()
        };
        let EngineResponse::Answer(second) = e.handle(answer_req(7)) else {
            panic!()
        };
        assert!(!first.cached && second.cached);
        assert_eq!(second.cache.hits, 1);
        let rows_eq = first
            .answers
            .iter()
            .zip(&second.answers)
            .all(|(x, y)| x.tuple == y.tuple && x.p == y.p);
        assert!(rows_eq, "cached answer must be byte-identical");

        // Different seed is a different computation.
        let EngineResponse::Answer(third) = e.handle(answer_req(8)) else {
            panic!()
        };
        assert!(!third.cached);

        // An update bumps the version; the same request recomputes.
        let resp = e.handle(EngineRequest::Delete {
            db: "prefs".into(),
            facts: "Pref(c,a).".into(),
        });
        assert!(matches!(resp, EngineResponse::Updated(_)));
        let EngineResponse::Answer(fourth) = e.handle(answer_req(7)) else {
            panic!()
        };
        assert!(!fourth.cached, "update must invalidate");
        assert_eq!(fourth.db_version, 2);
    }

    #[test]
    fn prepared_handles_work() {
        let e = engine();
        create_prefs(&e);
        let EngineResponse::Prepared { id } = e.handle(EngineRequest::Prepare {
            query: "(x) <- exists y: Pref(x,y)".into(),
        }) else {
            panic!()
        };
        let EngineResponse::Answer(a) = e.handle(EngineRequest::Answer {
            db: "prefs".into(),
            query: QueryRef::Prepared(id),
            generator: "uniform".into(),
            eps: 0.2,
            delta: 0.2,
            seed: 1,
        }) else {
            panic!()
        };
        assert!(!a.answers.is_empty());
    }

    #[test]
    fn bad_inputs_are_reported_not_panicked() {
        let e = engine();
        assert!(matches!(
            e.handle(EngineRequest::Answer {
                db: "missing".into(),
                query: QueryRef::Text("(x) <- R(x)".into()),
                generator: "uniform".into(),
                eps: 0.1,
                delta: 0.1,
                seed: 0,
            }),
            EngineResponse::Error(EngineError::UnknownDatabase(_))
        ));
        create_prefs(&e);
        assert!(matches!(
            e.handle(EngineRequest::Answer {
                db: "prefs".into(),
                query: QueryRef::Text("(x) <- exists y: Pref(x,y)".into()),
                generator: "nope".into(),
                eps: 0.1,
                delta: 0.1,
                seed: 0,
            }),
            EngineResponse::Error(EngineError::UnknownGenerator(_))
        ));
        assert!(matches!(
            e.handle(EngineRequest::Answer {
                db: "prefs".into(),
                query: QueryRef::Text("(x) <- exists y: Pref(x,y)".into()),
                generator: "uniform".into(),
                eps: 0.0,
                delta: 0.1,
                seed: 0,
            }),
            EngineResponse::Error(EngineError::BadRequest(_))
        ));
        // A tiny ε would need an astronomical walk budget: the request is
        // rejected up front instead of pinning the pool (DoS guard).
        let resp = e.handle(EngineRequest::Answer {
            db: "prefs".into(),
            query: QueryRef::Text("(x) <- exists y: Pref(x,y)".into()),
            generator: "uniform".into(),
            eps: 1e-9,
            delta: 0.1,
            seed: 0,
        });
        let EngineResponse::Error(EngineError::BadRequest(msg)) = resp else {
            panic!("expected budget rejection, got {resp:?}");
        };
        assert!(msg.contains("engine limit"), "{msg}");
    }

    #[test]
    fn handle_line_roundtrip() {
        let e = engine();
        let out = e.handle_line(r#"{"op":"ping"}"#).to_string();
        assert!(out.contains("\"pong\":true"));
        let out = e.handle_line("not json").to_string();
        assert!(out.contains("\"ok\":false"));
        // ping + bad line + this stats request itself = 3.
        let out = e.handle_line(r#"{"op":"stats"}"#).to_string();
        assert!(out.contains("\"requests\":3"), "{out}");
    }
}
