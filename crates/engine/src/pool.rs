//! The sampler pool: a fixed set of worker threads executing each
//! request's sample budget as fixed-size chunks, scheduled by work
//! stealing.
//!
//! **Determinism.** Results must be bit-identical for a fixed seed no
//! matter how many workers the pool has or which worker runs which
//! chunk. Two choices make that hold:
//!
//! 1. the budget is split into *fixed-size chunks* (`CHUNK_WALKS`),
//!    independent of the worker count, and chunk `i` always samples with
//!    the RNG `derive_seed(seed, i)` — so the multiset of walks performed
//!    is a function of `(seed, budget)` alone;
//! 2. chunk results are [`SampleTally`]s — pure sums — whose merge is
//!    commutative and associative, so the scheduling order in which
//!    workers finish cannot influence the final tally.
//!
//! **Scheduling.** A request submits one [`Batch`] descriptor, not one
//! message per chunk: workers claim chunk indices from the batch's
//! atomic cursor, so a 400-chunk monolithic run costs a handful of queue
//! operations instead of 400 channel sends and `Arc` clones. Handles to
//! an in-flight batch live in a shared [`Injector`] plus per-worker
//! [`Worker`] deques; a worker joining a batch re-advertises it on its
//! own deque, so idle siblings can steal into it mid-run while the
//! owner never touches the shared injector again. Single-chunk budgets
//! bypass the pool entirely and sample on the calling thread.

use crate::error::EngineError;
use crate::planner::SampleTask;
use crossbeam::channel::SyncSender;
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use ocqa_core::sample::{self, SampleTally};
use ocqa_core::{ChainGenerator, RepairContext};
use ocqa_logic::Query;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Walks per dispatched chunk. Fixed: changing this changes sampled
/// streams, so it is part of the engine's reproducibility contract.
pub const CHUNK_WALKS: u64 = 64;

/// One submitted sampling request. Participating workers claim chunk
/// indices through `cursor`; each claimed chunk sends exactly one result
/// on `reply`, which is pre-sized to `chunks` so sends never block.
struct Batch {
    task: SampleTask,
    query: Arc<Query>,
    walks: u64,
    chunks: u64,
    seed: u64,
    cursor: AtomicU64,
    reply: SyncSender<Result<SampleTally, String>>,
}

impl Batch {
    /// Claims and runs chunks until the cursor is exhausted.
    fn work(&self) {
        loop {
            let chunk = self.cursor.fetch_add(1, Ordering::Relaxed);
            if chunk >= self.chunks {
                return;
            }
            let quota = CHUNK_WALKS.min(self.walks - chunk * CHUNK_WALKS);
            let result = run_chunk_guarded(&self.task, &self.query, quota, self.seed, chunk);
            // The requester may have bailed (fail-fast on an earlier
            // chunk error): nothing to do.
            let _ = self.reply.send(result);
        }
    }

    /// Whether unclaimed chunks remain (racy, advisory only).
    fn has_spare_chunks(&self) -> bool {
        self.cursor.load(Ordering::Relaxed) < self.chunks
    }
}

struct PoolState {
    shutdown: bool,
    /// Bumped on every submission; workers re-scan the queues whenever it
    /// moves, which closes the sleep/submit race without spinning.
    submissions: u64,
}

struct PoolShared {
    injector: Injector<Arc<Batch>>,
    stealers: Vec<Stealer<Arc<Batch>>>,
    state: Mutex<PoolState>,
    wake: Condvar,
}

/// A fixed worker-thread pool executing sample-walk chunks with work
/// stealing.
pub struct SamplerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl SamplerPool {
    /// Spawns `workers` threads; `0` auto-sizes from the detected core
    /// count (the same default `EngineConfig` applies when `--workers`
    /// is unset).
    pub fn new(workers: usize) -> SamplerPool {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            workers
        };
        let locals: Vec<Worker<Arc<Batch>>> = (0..workers).map(|_| Worker::new_fifo()).collect();
        let shared = Arc::new(PoolShared {
            injector: Injector::new(),
            stealers: locals.iter().map(Worker::stealer).collect(),
            state: Mutex::new(PoolState {
                shutdown: false,
                submissions: 0,
            }),
            wake: Condvar::new(),
        });
        let handles = locals
            .into_iter()
            .enumerate()
            .map(|(i, local)| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("ocqa-sampler-{i}"))
                    .spawn(move || worker_loop(&shared, &local, i))
                    .expect("spawn sampler worker")
            })
            .collect();
        SamplerPool {
            shared,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs `walks` sample walks of `query` split across the pool,
    /// merging the per-chunk tallies. Deterministic in `(seed, walks)`
    /// and the task's plan: every [`SampleTask`] chunk is a pure function
    /// of `(derive_seed(seed, chunk), quota)`.
    pub fn run(
        &self,
        task: &SampleTask,
        query: &Arc<Query>,
        walks: u64,
        seed: u64,
    ) -> Result<SampleTally, EngineError> {
        let chunks = walks.div_ceil(CHUNK_WALKS);
        if chunks <= 1 {
            // Single-chunk budgets skip the queues and reply channel
            // entirely: chunk 0 still seeds from derive_seed(seed, 0), so
            // the tally is bit-identical to the pooled path.
            return run_chunk_guarded(task, query, walks, seed, 0).map_err(EngineError::Sampling);
        }
        self.run_batched(task, query, walks, seed, chunks)
    }

    /// The pooled path: submits one batch descriptor and drains exactly
    /// `chunks` replies. Kept separate from [`run`](Self::run) so tests
    /// can pin the single-chunk bypass against it.
    fn run_batched(
        &self,
        task: &SampleTask,
        query: &Arc<Query>,
        walks: u64,
        seed: u64,
        chunks: u64,
    ) -> Result<SampleTally, EngineError> {
        // Pre-sized to the chunk count: every chunk sends exactly once,
        // so sends never block and the request never allocates an
        // unbounded queue.
        let (reply_tx, reply_rx) = crossbeam::channel::bounded(chunks as usize);
        let batch = Arc::new(Batch {
            task: task.clone(),
            query: query.clone(),
            walks,
            chunks,
            seed,
            cursor: AtomicU64::new(0),
            reply: reply_tx,
        });
        // One injected handle per worker that could usefully join (capped
        // by the chunk count): whichever workers are idle right now all
        // find a handle on wake-up, and leftovers drain as cheap no-ops.
        let handles = (self.workers.len() as u64).min(chunks);
        for _ in 0..handles {
            self.shared.injector.push(batch.clone());
        }
        drop(batch);
        {
            let mut state = lock(&self.shared.state);
            state.submissions += 1;
        }
        self.shared.wake.notify_all();
        let mut tally = SampleTally::default();
        for _ in 0..chunks {
            match reply_rx.recv() {
                Ok(Ok(chunk_tally)) => tally.merge(chunk_tally),
                // Fail fast: dropping the receiver makes the remaining
                // chunks' sends no-ops.
                Ok(Err(e)) => return Err(EngineError::Sampling(e)),
                Err(_) => break, // every batch handle died before replying
            }
        }
        if tally.walks != walks {
            // A worker died mid-chunk (panic): report rather than return a
            // silently short estimate.
            return Err(EngineError::Sampling(format!(
                "pool returned {} of {} requested walks",
                tally.walks, walks
            )));
        }
        Ok(tally)
    }

    /// [`run`](Self::run) with a monolithic chain-walk task — the pre-
    /// planner entry point, kept for callers that sample one context
    /// directly.
    pub fn run_monolithic(
        &self,
        ctx: &Arc<RepairContext>,
        gen: &Arc<dyn ChainGenerator>,
        query: &Arc<Query>,
        walks: u64,
        seed: u64,
    ) -> Result<SampleTally, EngineError> {
        self.run(&SampleTask::monolithic(ctx, gen), query, walks, seed)
    }
}

impl Drop for SamplerPool {
    fn drop(&mut self) {
        {
            let mut state = lock(&self.shared.state);
            state.shutdown = true;
        }
        self.shared.wake.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn lock(state: &Mutex<PoolState>) -> std::sync::MutexGuard<'_, PoolState> {
    state
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn worker_loop(shared: &PoolShared, local: &Worker<Arc<Batch>>, me: usize) {
    while let Some(batch) = next_batch(shared, local, me) {
        // Re-advertise the batch on the local deque before working it:
        // the handle stays stealable by idle siblings for the whole run,
        // and the owner pops it back (and drops it, exhausted) afterward.
        if batch.has_spare_chunks() {
            local.push(batch.clone());
        }
        batch.work();
    }
}

/// Blocks until a batch handle is available (local deque first, then the
/// injector, then sibling deques) or the pool shuts down with every
/// queue drained.
fn next_batch(shared: &PoolShared, local: &Worker<Arc<Batch>>, me: usize) -> Option<Arc<Batch>> {
    loop {
        if let Some(batch) = local.pop() {
            if batch.has_spare_chunks() {
                return Some(batch);
            }
            continue; // exhausted advertisement
        }
        // Read the submission counter *before* scanning the shared
        // queues: a submission after this point bumps it, so the wait
        // below cannot miss it.
        let (seen, shutdown) = {
            let state = lock(&shared.state);
            (state.submissions, state.shutdown)
        };
        if let Steal::Success(batch) = shared.injector.steal() {
            return Some(batch);
        }
        for (i, stealer) in shared.stealers.iter().enumerate() {
            if i == me {
                continue;
            }
            if let Steal::Success(batch) = stealer.steal() {
                return Some(batch);
            }
        }
        if shutdown {
            return None; // queues drained after the shutdown flag: done
        }
        let mut state = lock(&shared.state);
        while !state.shutdown && state.submissions == seen {
            state = shared
                .wake
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// Runs one chunk with panic isolation: a panicking chunk (e.g. a
/// pathological constraint set tripping an assert deep in the repair
/// machinery) must fail *that request*, not kill a worker — a dead
/// worker would eventually brick the pool for every later request.
/// `AssertUnwindSafe` is sound here: the closure only touches the
/// task's `Arc`s (immutable) and chunk-local RNG state.
fn run_chunk_guarded(
    task: &SampleTask,
    query: &Query,
    quota: u64,
    seed: u64,
    chunk: u64,
) -> Result<SampleTally, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        task.run_chunk(query, quota, derive_seed(seed, chunk))
    }))
    .unwrap_or_else(|payload| Err(panic_text(payload.as_ref())))
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload");
    format!("sampling panicked: {msg}")
}

/// Per-chunk seed derivation: one SplitMix64 round over `seed ⊕ f(chunk)`.
/// Chunk streams must be decorrelated but *stable* — this function is part
/// of the reproducibility contract along with [`CHUNK_WALKS`]. The
/// implementation lives in `ocqa_core::sample` (localized sampling derives
/// its per-component streams with the same function); this re-export keeps
/// the engine's historical entry point.
pub fn derive_seed(seed: u64, chunk: u64) -> u64 {
    sample::derive_seed(seed, chunk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::DbPlan;
    use ocqa_core::UniformGenerator;
    use ocqa_data::Database;
    use ocqa_logic::parser;

    fn setup() -> (Arc<RepairContext>, Arc<dyn ChainGenerator>, Arc<Query>) {
        let facts = parser::parse_facts("R(a,b). R(a,c). R(b,b). R(b,c).").unwrap();
        let sigma = parser::parse_constraints("R(x,y), R(x,z) -> y = z.").unwrap();
        let schema = parser::infer_schema(&facts, &sigma).unwrap();
        let db = Database::from_facts(schema, facts).unwrap();
        let ctx = RepairContext::new(db, sigma);
        let gen: Arc<dyn ChainGenerator> = Arc::new(UniformGenerator::new());
        let query = Arc::new(parser::parse_query("(y) <- exists x: R(x, y)").unwrap());
        (ctx, gen, query)
    }

    #[test]
    fn identical_tallies_across_pool_sizes() {
        // Every plan's task must be bit-identical regardless of how many
        // workers split its chunks — the planner must not weaken the
        // engine's reproducibility contract.
        let (ctx, gen, query) = setup();
        let plan = DbPlan::build(&ctx);
        for route in [
            crate::planner::PlanKind::Monolithic,
            crate::planner::PlanKind::Localized,
            crate::planner::PlanKind::KeyRepair,
        ] {
            let task = plan.task(route, gen.clone()).unwrap();
            let reference = SamplerPool::new(1).run(&task, &query, 300, 42).unwrap();
            for workers in [2, 3, 8] {
                let pool = SamplerPool::new(workers);
                let tally = pool.run(&task, &query, 300, 42).unwrap();
                assert_eq!(tally.counts, reference.counts, "{route}, {workers} workers");
                assert_eq!(tally.walks, 300);
            }
        }
    }

    #[test]
    fn single_chunk_bypass_matches_pooled_path() {
        // Budgets that fit in one chunk run on the calling thread; the
        // tally must be bit-identical to what the queues would produce.
        let (ctx, gen, query) = setup();
        let plan = DbPlan::build(&ctx);
        let pool = SamplerPool::new(3);
        for route in [
            crate::planner::PlanKind::Monolithic,
            crate::planner::PlanKind::Localized,
            crate::planner::PlanKind::KeyRepair,
        ] {
            let task = plan.task(route, gen.clone()).unwrap();
            for walks in [1, CHUNK_WALKS - 1, CHUNK_WALKS] {
                let bypass = pool.run(&task, &query, walks, 9).unwrap();
                let pooled = pool.run_batched(&task, &query, walks, 9, 1).unwrap();
                assert_eq!(bypass.counts, pooled.counts, "{route}, {walks} walks");
                assert_eq!(bypass.walks, pooled.walks);
                assert_eq!(bypass.failed_walks, pooled.failed_walks);
            }
        }
    }

    #[test]
    fn concurrent_batches_steal_without_cross_talk() {
        // Several requests in flight at once: work stealing may interleave
        // their chunks arbitrarily across workers, but each request's
        // tally must equal its single-threaded reference.
        let (ctx, gen, query) = setup();
        let pool = Arc::new(SamplerPool::new(4));
        let reference: Vec<SampleTally> = (0..6)
            .map(|seed| {
                SamplerPool::new(1)
                    .run_monolithic(&ctx, &gen, &query, 260, seed)
                    .unwrap()
            })
            .collect();
        let handles: Vec<_> = (0..6u64)
            .map(|seed| {
                let (pool, ctx, gen, query) =
                    (pool.clone(), ctx.clone(), gen.clone(), query.clone());
                std::thread::spawn(move || pool.run_monolithic(&ctx, &gen, &query, 260, seed))
            })
            .collect();
        for (seed, h) in handles.into_iter().enumerate() {
            let tally = h.join().unwrap().unwrap();
            assert_eq!(tally.counts, reference[seed].counts, "seed {seed}");
            assert_eq!(tally.walks, 260);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (ctx, gen, query) = setup();
        let pool = SamplerPool::new(2);
        let a = pool.run_monolithic(&ctx, &gen, &query, 300, 1).unwrap();
        let b = pool.run_monolithic(&ctx, &gen, &query, 300, 2).unwrap();
        assert_ne!(a.counts, b.counts, "seed must matter");
    }

    #[test]
    fn partial_final_chunk_counts_exactly() {
        let (ctx, gen, query) = setup();
        let pool = SamplerPool::new(4);
        let tally = pool
            .run_monolithic(&ctx, &gen, &query, CHUNK_WALKS + 7, 5)
            .unwrap();
        assert_eq!(tally.walks, CHUNK_WALKS + 7);
        assert_eq!(tally.failed_walks, 0, "key repairs never fail (Prop. 8)");
    }

    #[test]
    fn panicking_chunk_fails_request_but_pool_survives() {
        let (ctx, gen, query) = setup();
        let pool = SamplerPool::new(2);
        let bomb: Arc<dyn ChainGenerator> =
            Arc::new(ocqa_core::WeightFnGenerator::new("bomb", |_, _| {
                panic!("boom in generator")
            }));
        let err = pool
            .run_monolithic(&ctx, &bomb, &query, 200, 1)
            .unwrap_err();
        assert!(
            err.to_string().contains("panicked"),
            "panic surfaced as request error: {err}"
        );
        // Workers survived the panic; normal requests keep working.
        let tally = pool.run_monolithic(&ctx, &gen, &query, 100, 2).unwrap();
        assert_eq!(tally.walks, 100);
    }

    #[test]
    fn panicking_single_chunk_fails_without_poisoning_the_caller() {
        // The bypass path runs on the calling thread: its panics must be
        // contained the same way the pooled path contains worker panics.
        let (ctx, _, query) = setup();
        let pool = SamplerPool::new(2);
        let bomb: Arc<dyn ChainGenerator> =
            Arc::new(ocqa_core::WeightFnGenerator::new("bomb", |_, _| {
                panic!("boom in generator")
            }));
        let err = pool.run_monolithic(&ctx, &bomb, &query, 10, 1).unwrap_err();
        assert!(err.to_string().contains("panicked"), "{err}");
    }

    #[test]
    fn derive_seed_decorrelates() {
        let a = derive_seed(7, 0);
        let b = derive_seed(7, 1);
        let c = derive_seed(8, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(derive_seed(7, 1), b, "stable");
    }
}
