//! The sampler pool: a fixed set of worker threads fanning each request's
//! sample budget out as chunks.
//!
//! **Determinism.** Results must be bit-identical for a fixed seed no
//! matter how many workers the pool has. Two choices make that hold:
//!
//! 1. the budget is split into *fixed-size chunks* (`CHUNK_WALKS`),
//!    independent of the worker count, and chunk `i` always samples with
//!    the RNG `derive_seed(seed, i)` — so the multiset of walks performed
//!    is a function of `(seed, budget)` alone;
//! 2. chunk results are [`SampleTally`]s — pure sums — whose merge is
//!    commutative and associative, so the scheduling order in which
//!    workers finish cannot influence the final tally.
//!
//! Workers never touch shared mutable state: they receive a job carrying
//! `Arc`s of the context/generator/query, sample, and send the tally back
//! over the job's reply channel.

use crate::error::EngineError;
use crate::planner::SampleTask;
use crossbeam::channel::{Receiver, Sender};
use ocqa_core::sample::{self, SampleTally};
use ocqa_core::{ChainGenerator, RepairContext};
use ocqa_logic::Query;
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Walks per dispatched chunk. Fixed: changing this changes sampled
/// streams, so it is part of the engine's reproducibility contract.
pub const CHUNK_WALKS: u64 = 64;

struct Job {
    task: SampleTask,
    query: Arc<Query>,
    chunk: u64,
    walks: u64,
    seed: u64,
    reply: Sender<Result<SampleTally, String>>,
}

/// A fixed worker-thread pool executing sample-walk chunks.
pub struct SamplerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl SamplerPool {
    /// Spawns `workers` threads (at least 1).
    pub fn new(workers: usize) -> SamplerPool {
        let workers = workers.max(1);
        let (tx, rx) = crossbeam::channel::unbounded::<Job>();
        // The vendored `crossbeam` shim re-exports std::sync::mpsc, whose
        // receiver is single-consumer — share it behind a mutex so any
        // idle worker can take the next chunk. (Upstream crossbeam's
        // receiver is Clone; if the shim is ever swapped for the real
        // crate, clone per worker and drop this mutex.)
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("ocqa-sampler-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn sampler worker")
            })
            .collect();
        SamplerPool {
            tx: Some(tx),
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs `walks` sample walks of `query` split across the pool,
    /// merging the per-chunk tallies. Deterministic in `(seed, walks)`
    /// and the task's plan: every [`SampleTask`] chunk is a pure function
    /// of `(derive_seed(seed, chunk), quota)`.
    pub fn run(
        &self,
        task: &SampleTask,
        query: &Arc<Query>,
        walks: u64,
        seed: u64,
    ) -> Result<SampleTally, EngineError> {
        let (reply_tx, reply_rx) = crossbeam::channel::unbounded();
        let chunks = walks.div_ceil(CHUNK_WALKS);
        for chunk in 0..chunks {
            let quota = CHUNK_WALKS.min(walks - chunk * CHUNK_WALKS);
            let job = Job {
                task: task.clone(),
                query: query.clone(),
                chunk,
                walks: quota,
                seed,
                reply: reply_tx.clone(),
            };
            self.tx
                .as_ref()
                .expect("pool alive")
                .send(job)
                .map_err(|_| EngineError::Sampling("sampler pool shut down".into()))?;
        }
        drop(reply_tx);
        let mut tally = SampleTally::default();
        for msg in reply_rx {
            match msg {
                Ok(chunk_tally) => tally.merge(chunk_tally),
                Err(e) => return Err(EngineError::Sampling(e)),
            }
        }
        if tally.walks != walks {
            // A worker died mid-chunk (panic): report rather than return a
            // silently short estimate.
            return Err(EngineError::Sampling(format!(
                "pool returned {} of {} requested walks",
                tally.walks, walks
            )));
        }
        Ok(tally)
    }

    /// [`run`](Self::run) with a monolithic chain-walk task — the pre-
    /// planner entry point, kept for callers that sample one context
    /// directly.
    pub fn run_monolithic(
        &self,
        ctx: &Arc<RepairContext>,
        gen: &Arc<dyn ChainGenerator>,
        query: &Arc<Query>,
        walks: u64,
        seed: u64,
    ) -> Result<SampleTally, EngineError> {
        self.run(&SampleTask::monolithic(ctx, gen), query, walks, seed)
    }
}

impl Drop for SamplerPool {
    fn drop(&mut self) {
        self.tx.take(); // closes the channel; workers drain and exit
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        // The guard is held across the blocking recv (idle waiting) but
        // released before sampling, so at most one worker is parked in
        // recv while the rest either sample or wait on the mutex.
        let job = match rx.lock().recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        // Panic isolation: a panicking chunk (e.g. a pathological
        // constraint set tripping an assert deep in the repair machinery)
        // must fail *that request*, not kill the worker — a dead worker
        // would eventually brick the pool for every later request.
        // AssertUnwindSafe is sound here: the closure only touches the
        // job's Arcs (immutable) and task-local RNG state.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            job.task
                .run_chunk(&job.query, job.walks, derive_seed(job.seed, job.chunk))
        }))
        .unwrap_or_else(|payload| Err(panic_text(payload.as_ref())));
        // The requester may have bailed (send error): nothing to do.
        let _ = job.reply.send(result);
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload");
    format!("sampling panicked: {msg}")
}

/// Per-chunk seed derivation: one SplitMix64 round over `seed ⊕ f(chunk)`.
/// Chunk streams must be decorrelated but *stable* — this function is part
/// of the reproducibility contract along with [`CHUNK_WALKS`]. The
/// implementation lives in `ocqa_core::sample` (localized sampling derives
/// its per-component streams with the same function); this re-export keeps
/// the engine's historical entry point.
pub fn derive_seed(seed: u64, chunk: u64) -> u64 {
    sample::derive_seed(seed, chunk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::DbPlan;
    use ocqa_core::UniformGenerator;
    use ocqa_data::Database;
    use ocqa_logic::parser;

    fn setup() -> (Arc<RepairContext>, Arc<dyn ChainGenerator>, Arc<Query>) {
        let facts = parser::parse_facts("R(a,b). R(a,c). R(b,b). R(b,c).").unwrap();
        let sigma = parser::parse_constraints("R(x,y), R(x,z) -> y = z.").unwrap();
        let schema = parser::infer_schema(&facts, &sigma).unwrap();
        let db = Database::from_facts(schema, facts).unwrap();
        let ctx = RepairContext::new(db, sigma);
        let gen: Arc<dyn ChainGenerator> = Arc::new(UniformGenerator::new());
        let query = Arc::new(parser::parse_query("(y) <- exists x: R(x, y)").unwrap());
        (ctx, gen, query)
    }

    #[test]
    fn identical_tallies_across_pool_sizes() {
        // Every plan's task must be bit-identical regardless of how many
        // workers split its chunks — the planner must not weaken the
        // engine's reproducibility contract.
        let (ctx, gen, query) = setup();
        let plan = DbPlan::build(&ctx);
        for route in [
            crate::planner::PlanKind::Monolithic,
            crate::planner::PlanKind::Localized,
            crate::planner::PlanKind::KeyRepair,
        ] {
            let task = plan.task(route, gen.clone()).unwrap();
            let reference = SamplerPool::new(1).run(&task, &query, 300, 42).unwrap();
            for workers in [2, 3, 8] {
                let pool = SamplerPool::new(workers);
                let tally = pool.run(&task, &query, 300, 42).unwrap();
                assert_eq!(tally.counts, reference.counts, "{route}, {workers} workers");
                assert_eq!(tally.walks, 300);
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (ctx, gen, query) = setup();
        let pool = SamplerPool::new(2);
        let a = pool.run_monolithic(&ctx, &gen, &query, 300, 1).unwrap();
        let b = pool.run_monolithic(&ctx, &gen, &query, 300, 2).unwrap();
        assert_ne!(a.counts, b.counts, "seed must matter");
    }

    #[test]
    fn partial_final_chunk_counts_exactly() {
        let (ctx, gen, query) = setup();
        let pool = SamplerPool::new(4);
        let tally = pool
            .run_monolithic(&ctx, &gen, &query, CHUNK_WALKS + 7, 5)
            .unwrap();
        assert_eq!(tally.walks, CHUNK_WALKS + 7);
        assert_eq!(tally.failed_walks, 0, "key repairs never fail (Prop. 8)");
    }

    #[test]
    fn panicking_chunk_fails_request_but_pool_survives() {
        let (ctx, gen, query) = setup();
        let pool = SamplerPool::new(2);
        let bomb: Arc<dyn ChainGenerator> =
            Arc::new(ocqa_core::WeightFnGenerator::new("bomb", |_, _| {
                panic!("boom in generator")
            }));
        let err = pool
            .run_monolithic(&ctx, &bomb, &query, 200, 1)
            .unwrap_err();
        assert!(
            err.to_string().contains("panicked"),
            "panic surfaced as request error: {err}"
        );
        // Workers survived the panic; normal requests keep working.
        let tally = pool.run_monolithic(&ctx, &gen, &query, 100, 2).unwrap();
        assert_eq!(tally.walks, 100);
    }

    #[test]
    fn derive_seed_decorrelates() {
        let a = derive_seed(7, 0);
        let b = derive_seed(7, 1);
        let c = derive_seed(8, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(derive_seed(7, 1), b, "stable");
    }
}
