//! The snapshot **transfer image**: one database's full durable state as
//! a self-contained, checksummed, base64-encoded blob — the payload of
//! the `fetch_snapshot` / `install_snapshot` protocol legs the
//! rebalancer ships between shards.
//!
//! The binary layout mirrors the `ocqa-store` snapshot wire format
//! (`magic | u16 format-version | u32 crc32 | payload`, payload built
//! from the `ocqa_data::codec` primitives) but under its own magic
//! (`OCQT`): a transfer image travels *inside a JSON protocol line*, not
//! as a file, and must never be mistaken for an on-disk snapshot a store
//! would open. Base64 keeps the blob JSON-string-safe; the CRC rejects
//! any corruption the transport let through before a single byte reaches
//! the receiving catalog.
//!
//! Everything an exact re-install needs is carried: name, catalog
//! **version** (so answer-cache keys and reported `db_version`s match
//! the pre-move shard bit-for-bit), constraint source text, planner
//! classification, the codec-encoded database and the maintained
//! violation set (so the receiving shard never pays the
//! `O(|D|^{|body|})` recomputation).

use crate::error::EngineError;
use crate::planner::PlanKind;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use ocqa_data::{codec, Database};
use ocqa_logic::{Bindings, Var, Violation, ViolationSet};

/// Transfer-image frame magic (distinct from the store's `OCQS`).
const MAGIC: &[u8; 4] = b"OCQT";
/// Transfer format version.
const FORMAT_VERSION: u16 = 1;

/// CRC-32 (IEEE 802.3) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One database's full transferable state — what `fetch_snapshot`
/// exports and `install_snapshot` re-installs verbatim.
#[derive(Debug)]
pub struct TransferImage {
    /// Catalog name.
    pub name: String,
    /// Catalog version at export time, preserved exactly on install.
    pub version: u64,
    /// Recorded planner classification.
    pub plan: PlanKind,
    /// Constraint source text.
    pub constraints: String,
    /// The database (schema + facts).
    pub db: Database,
    /// The maintained violation set at `version`.
    pub violations: ViolationSet,
}

fn plan_tag(plan: PlanKind) -> u8 {
    match plan {
        PlanKind::KeyRepair => 0,
        PlanKind::Localized => 1,
        PlanKind::Monolithic => 2,
    }
}

fn plan_from_tag(tag: u8) -> Result<PlanKind, EngineError> {
    match tag {
        0 => Ok(PlanKind::KeyRepair),
        1 => Ok(PlanKind::Localized),
        2 => Ok(PlanKind::Monolithic),
        other => Err(corrupt(format!("unknown plan tag {other:#x}"))),
    }
}

fn corrupt(msg: String) -> EngineError {
    EngineError::BadRequest(format!("transfer image: {msg}"))
}

fn put_violations(buf: &mut BytesMut, violations: &ViolationSet) {
    codec::put_varint(buf, violations.len() as u64);
    for v in violations.iter() {
        codec::put_varint(buf, u64::from(v.constraint));
        let hom: Vec<_> = v.hom.iter().collect();
        codec::put_varint(buf, hom.len() as u64);
        for (var, c) in hom {
            codec::put_name(buf, var.name().as_str());
            codec::put_constant(buf, c);
        }
    }
}

fn get_violations(buf: &mut Bytes) -> Result<ViolationSet, EngineError> {
    let count = codec::get_varint(buf).map_err(|e| corrupt(e.to_string()))?;
    let mut set = ViolationSet::empty();
    for _ in 0..count {
        let constraint = codec::get_varint(buf).map_err(|e| corrupt(e.to_string()))? as u32;
        let nbind = codec::get_varint(buf).map_err(|e| corrupt(e.to_string()))?;
        let mut pairs = Vec::with_capacity(nbind as usize);
        for _ in 0..nbind {
            let var = Var::named(&codec::get_name(buf).map_err(|e| corrupt(e.to_string()))?);
            let c = codec::get_constant(buf).map_err(|e| corrupt(e.to_string()))?;
            pairs.push((var, c));
        }
        set.insert(Violation {
            constraint,
            hom: Bindings::from_pairs(pairs),
        });
    }
    Ok(set)
}

/// Encodes a transfer image as a base64 string, ready to embed in a
/// `fetch_snapshot` response or `install_snapshot` request.
pub fn encode_image(img: &TransferImage) -> String {
    let mut buf = BytesMut::new();
    codec::put_name(&mut buf, &img.name);
    codec::put_varint(&mut buf, img.version);
    buf.put_u8(plan_tag(img.plan));
    codec::put_name(&mut buf, &img.constraints);
    let db_bytes = codec::encode_database(&img.db);
    codec::put_varint(&mut buf, db_bytes.len() as u64);
    buf.put_slice(&db_bytes);
    put_violations(&mut buf, &img.violations);
    let payload = buf.freeze();
    let mut framed = Vec::with_capacity(payload.len() + 10);
    framed.extend_from_slice(MAGIC);
    framed.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    framed.extend_from_slice(&crc32(&payload).to_le_bytes());
    framed.extend_from_slice(&payload);
    base64_encode(&framed)
}

/// Decodes a base64 transfer image, rejecting any frame, checksum or
/// payload corruption whole.
pub fn decode_image(text: &str) -> Result<TransferImage, EngineError> {
    let data = base64_decode(text)?;
    if data.len() < 10 || &data[..4] != MAGIC {
        return Err(corrupt("bad magic".into()));
    }
    let version = u16::from_le_bytes([data[4], data[5]]);
    if version != FORMAT_VERSION {
        return Err(corrupt(format!("unsupported format version {version}")));
    }
    let crc = u32::from_le_bytes([data[6], data[7], data[8], data[9]]);
    let payload = &data[10..];
    if crc32(payload) != crc {
        return Err(corrupt("checksum mismatch".into()));
    }
    let mut buf = Bytes::copy_from_slice(payload);
    let name = codec::get_name(&mut buf).map_err(|e| corrupt(e.to_string()))?;
    let db_version = codec::get_varint(&mut buf).map_err(|e| corrupt(e.to_string()))?;
    if !buf.has_remaining() {
        return Err(corrupt("truncated before plan tag".into()));
    }
    let plan = plan_from_tag(buf.get_u8())?;
    let constraints = codec::get_name(&mut buf).map_err(|e| corrupt(e.to_string()))?;
    let db_len = codec::get_varint(&mut buf).map_err(|e| corrupt(e.to_string()))? as usize;
    if buf.remaining() < db_len {
        return Err(corrupt("truncated database payload".into()));
    }
    let db_bytes = buf.copy_to_bytes(db_len);
    let db = codec::decode_database(&db_bytes).map_err(|e| corrupt(e.to_string()))?;
    let violations = get_violations(&mut buf)?;
    if buf.has_remaining() {
        return Err(corrupt(format!("{} trailing bytes", buf.remaining())));
    }
    Ok(TransferImage {
        name,
        version: db_version,
        plan,
        constraints,
        db,
        violations,
    })
}

const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard base64 with padding (RFC 4648), hand-rolled — the transfer
/// image is the only base64 user in the workspace and a vendored codec
/// dependency is not worth it.
fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ];
        let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        out.push(B64[(n >> 18) as usize & 63] as char);
        out.push(B64[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            B64[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

fn base64_decode(text: &str) -> Result<Vec<u8>, EngineError> {
    fn val(c: u8) -> Result<u32, EngineError> {
        match c {
            b'A'..=b'Z' => Ok(u32::from(c - b'A')),
            b'a'..=b'z' => Ok(u32::from(c - b'a') + 26),
            b'0'..=b'9' => Ok(u32::from(c - b'0') + 52),
            b'+' => Ok(62),
            b'/' => Ok(63),
            other => Err(EngineError::BadRequest(format!(
                "transfer image: invalid base64 byte {other:#x}"
            ))),
        }
    }
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(EngineError::BadRequest(
            "transfer image: base64 length not a multiple of 4".into(),
        ));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, chunk) in bytes.chunks(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let pad = if last {
            chunk.iter().rev().take_while(|&&c| c == b'=').count()
        } else {
            0
        };
        if pad > 2 {
            return Err(EngineError::BadRequest(
                "transfer image: malformed base64 padding".into(),
            ));
        }
        let mut n = 0u32;
        for (j, &c) in chunk.iter().enumerate() {
            let v = if j >= 4 - pad { 0 } else { val(c)? };
            n = (n << 6) | v;
        }
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocqa_logic::parser;

    fn sample(name: &str, version: u64) -> TransferImage {
        let constraints = "R(x,y), R(x,z) -> y = z.";
        let facts = parser::parse_facts("R(1,10). R(1,20). R(2,30).").unwrap();
        let sigma = parser::parse_constraints(constraints).unwrap();
        let schema = parser::infer_schema(&facts, &sigma).unwrap();
        let db = Database::from_facts(schema, facts).unwrap();
        let violations = ViolationSet::compute(&sigma, &db);
        TransferImage {
            name: name.into(),
            version,
            plan: PlanKind::KeyRepair,
            constraints: constraints.into(),
            db,
            violations,
        }
    }

    #[test]
    fn base64_roundtrips_all_tail_lengths() {
        for len in 0..32usize {
            let data: Vec<u8> = (0..len as u8).map(|b| b.wrapping_mul(37)).collect();
            let enc = base64_encode(&data);
            assert_eq!(base64_decode(&enc).unwrap(), data, "len {len}: {enc}");
        }
        // Known vector.
        assert_eq!(base64_encode(b"foob"), "Zm9vYg==");
        assert!(base64_decode("Zm9v YQ==").is_err(), "whitespace rejected");
        assert!(base64_decode("Zm9").is_err(), "ragged length rejected");
    }

    #[test]
    fn image_roundtrip_preserves_everything() {
        let img = sample("kv", 9);
        let decoded = decode_image(&encode_image(&img)).unwrap();
        assert_eq!(decoded.name, "kv");
        assert_eq!(decoded.version, 9);
        assert_eq!(decoded.plan, PlanKind::KeyRepair);
        assert_eq!(decoded.constraints, img.constraints);
        assert!(decoded.db.same_facts(&img.db));
        assert_eq!(decoded.violations, img.violations);
    }

    #[test]
    fn image_corruption_rejected() {
        let enc = encode_image(&sample("kv", 9));
        // Flip one payload character (staying in the base64 alphabet).
        let mid = enc.len() / 2;
        let mut chars: Vec<char> = enc.chars().collect();
        chars[mid] = if chars[mid] == 'A' { 'B' } else { 'A' };
        let tampered: String = chars.into_iter().collect();
        assert!(decode_image(&tampered).is_err());
        assert!(decode_image("QUJD").is_err(), "bad magic rejected");
        assert!(decode_image("").is_err());
    }
}
