//! The catalog: named, versioned databases with incremental violation
//! maintenance.
//!
//! Each entry owns a [`Database`], its constraint set, and the current
//! violation set `V(D, Σ)` — maintained through
//! [`ocqa_logic::incremental::update_violations`] on every insert/delete
//! batch instead of recomputed from scratch (the catalog is long-lived;
//! recomputation would make every small update `O(|D|^{|body|})`).
//!
//! Every successful update bumps the entry's **version**. Snapshots for
//! sampling ([`Catalog::context`]) are memoized per version and built via
//! [`RepairContext::with_violations`], handing the maintained violation
//! set over to the repair machinery, so preparing a walk after an update
//! costs one base-domain rebuild — never a full violation recomputation.

use crate::error::EngineError;
use crate::planner::{classify, DbPlan, DbStats, PlanKind};
use crate::storage::{InstallImage, RestoredDatabase, UpdateDelta};
use ocqa_core::RepairContext;
use ocqa_data::{Database, Fact};
use ocqa_logic::{incremental, parser, ConstraintSet, ViolationSet};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// One named database under management.
struct CatalogEntry {
    db: Database,
    sigma: ConstraintSet,
    violations: ViolationSet,
    version: u64,
    /// The original constraint source text, retained verbatim so the
    /// entry can be exported as a snapshot transfer image (the parsed
    /// `ConstraintSet` has no guaranteed round-trippable rendering).
    constraints_src: String,
    /// Structural answer-plan classification — a function of `sigma`
    /// alone, computed once at install time.
    plan_kind: PlanKind,
    /// Conflict-structure statistics of the current version, maintained
    /// here on install/update/restore (derived from the incrementally
    /// maintained violation set, so keeping it current costs `O(|V|·α)`
    /// per effective update — never a per-request recomputation).
    stats: DbStats,
    /// Memoized sampling snapshot for `version`. Interior mutability so
    /// [`Catalog::context`] works under the catalog's *read* lock —
    /// concurrent answers must not serialize on the write lock.
    snapshot: Mutex<Option<Arc<RepairContext>>>,
    /// Memoized answer plan for `version` (conflict components, violating
    /// key groups). Invalidated together with the snapshot by every
    /// effective update, rebuilt lazily by [`Catalog::snapshot`].
    plan: Mutex<Option<Arc<DbPlan>>>,
}

/// Summary of an entry, for list/status responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatabaseInfo {
    /// Entry name.
    pub name: String,
    /// Current version: drawn from a catalog-global monotonic counter,
    /// bumped by every *effective* update and never reused — so a
    /// drop + recreate cycle can never alias an old version in answer
    /// cache keys.
    pub version: u64,
    /// Number of facts.
    pub facts: usize,
    /// Number of current violations.
    pub violations: usize,
    /// The structural answer-plan classification of the constraint set.
    pub plan: PlanKind,
}

/// Result of an update batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Facts actually inserted (absent before, present now).
    pub inserted: usize,
    /// Facts actually removed (present before, absent now).
    pub removed: usize,
    /// The entry's version after the update.
    pub version: u64,
    /// Violations after the update.
    pub violations: usize,
}

/// Named, versioned databases (wrap in a lock for concurrent use; the
/// engine holds it behind a `parking_lot::RwLock`).
#[derive(Default)]
pub struct Catalog {
    entries: HashMap<String, CatalogEntry>,
    /// Catalog-lifetime version counter; see [`DatabaseInfo::version`].
    next_version: u64,
}

/// A database parsed and validated *outside* any catalog lock: the
/// expensive work of `create_db` (parsing and the initial
/// `ViolationSet::compute`) happens here, so the engine only takes the
/// catalog write lock for the cheap [`Catalog::install`] step.
pub struct ParsedDatabase {
    db: Database,
    sigma: ConstraintSet,
    violations: ViolationSet,
    /// The original constraint source text, retained verbatim so storage
    /// backends can journal it re-parseably (the parsed `ConstraintSet`
    /// has no guaranteed round-trippable rendering).
    constraints_src: String,
}

impl ParsedDatabase {
    /// Parses fact and constraint source text and computes `V(D, Σ)`.
    /// The schema is inferred from both, exactly as the one-shot CLI does.
    pub fn parse(facts_src: &str, constraints_src: &str) -> Result<ParsedDatabase, EngineError> {
        let facts =
            parser::parse_facts(facts_src).map_err(|e| EngineError::Parse(e.to_string()))?;
        let sigma = parser::parse_constraints(constraints_src)
            .map_err(|e| EngineError::Parse(e.to_string()))?;
        let schema =
            parser::infer_schema(&facts, &sigma).map_err(|e| EngineError::Parse(e.to_string()))?;
        let db =
            Database::from_facts(schema, facts).map_err(|e| EngineError::Schema(e.to_string()))?;
        let violations = ViolationSet::compute(&sigma, &db);
        Ok(ParsedDatabase {
            db,
            sigma,
            violations,
            constraints_src: constraints_src.to_string(),
        })
    }
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Creates a database from fact and constraint source text
    /// (convenience wrapper: [`ParsedDatabase::parse`] + [`install`]).
    ///
    /// [`install`]: Catalog::install
    pub fn create(
        &mut self,
        name: &str,
        facts_src: &str,
        constraints_src: &str,
    ) -> Result<DatabaseInfo, EngineError> {
        let parsed = ParsedDatabase::parse(facts_src, constraints_src)?;
        self.install(name, parsed)
    }

    /// Installs an already-parsed database under `name` (cheap; safe to
    /// call under the engine's write lock).
    pub fn install(
        &mut self,
        name: &str,
        parsed: ParsedDatabase,
    ) -> Result<DatabaseInfo, EngineError> {
        self.install_with(name, parsed, |_| Ok(()))
    }

    /// [`install`](Catalog::install) with a journaling hook: `journal` is
    /// called with the full install image — name, committed version, the
    /// database, constraint text, plan classification and violation set —
    /// after validation but **before** the catalog mutates, so a failing
    /// journal vetoes the install and the durable log never lags the
    /// in-memory state.
    pub fn install_with(
        &mut self,
        name: &str,
        parsed: ParsedDatabase,
        journal: impl FnOnce(&InstallImage<'_>) -> Result<(), EngineError>,
    ) -> Result<DatabaseInfo, EngineError> {
        if self.entries.contains_key(name) {
            return Err(EngineError::DatabaseExists(name.to_string()));
        }
        let version = self.next_version + 1;
        let plan_kind = classify(&parsed.sigma);
        journal(&InstallImage {
            name,
            version,
            db: &parsed.db,
            constraints: &parsed.constraints_src,
            plan: plan_kind,
            violations: &parsed.violations,
        })?;
        self.next_version = version;
        let stats = DbStats::compute(&parsed.db, &parsed.sigma, &parsed.violations);
        let entry = CatalogEntry {
            plan_kind,
            stats,
            db: parsed.db,
            sigma: parsed.sigma,
            violations: parsed.violations,
            version,
            constraints_src: parsed.constraints_src,
            snapshot: Mutex::new(None),
            plan: Mutex::new(None),
        };
        let info = entry.info(name);
        self.entries.insert(name.to_string(), entry);
        Ok(info)
    }

    /// Reinstalls a database recovered by a storage backend: the version,
    /// plan classification and violation set are restored verbatim —
    /// nothing is recomputed beyond parsing the constraint text. The
    /// global version counter is raised to cover the restored version.
    pub fn restore(&mut self, restored: RestoredDatabase) -> Result<DatabaseInfo, EngineError> {
        if self.entries.contains_key(&restored.name) {
            return Err(EngineError::Storage(format!(
                "recovered database {:?} twice",
                restored.name
            )));
        }
        let sigma = parser::parse_constraints(&restored.constraints)
            .map_err(|e| EngineError::Storage(format!("recovered constraints: {e}")))?;
        debug_assert_eq!(
            classify(&sigma),
            restored.plan,
            "recorded plan classification drifted from classify()"
        );
        self.next_version = self.next_version.max(restored.version);
        let stats = DbStats::compute(&restored.db, &sigma, &restored.violations);
        let entry = CatalogEntry {
            plan_kind: restored.plan,
            stats,
            db: restored.db,
            sigma,
            violations: restored.violations,
            version: restored.version,
            constraints_src: restored.constraints,
            snapshot: Mutex::new(None),
            plan: Mutex::new(None),
        };
        let info = entry.info(&restored.name);
        self.entries.insert(restored.name, entry);
        Ok(info)
    }

    /// Raises the global version counter to at least `floor`. Recovery
    /// calls this with the highest version the journal ever issued —
    /// including dropped databases, whose versions no live entry carries —
    /// so post-restart installs can never alias a pre-restart version.
    pub fn raise_version_floor(&mut self, floor: u64) {
        self.next_version = self.next_version.max(floor);
    }

    /// Drops a database; returns the dropped entry's version (`None` if
    /// it did not exist). Callers use the version to floor the answer
    /// cache: the global counter guarantees any recreated incarnation
    /// starts strictly higher.
    pub fn drop_db(&mut self, name: &str) -> Option<u64> {
        self.entries.remove(name).map(|e| e.version)
    }

    /// Applies an insert/delete batch of facts (given as fact-list source
    /// text), maintaining the violation index incrementally and bumping
    /// the version. No-op facts (inserting a present fact, deleting an
    /// absent one) are skipped and don't appear in the outcome counts.
    pub fn update(
        &mut self,
        name: &str,
        insert_src: &str,
        delete_src: &str,
    ) -> Result<UpdateOutcome, EngineError> {
        let inserts =
            parser::parse_facts(insert_src).map_err(|e| EngineError::Parse(e.to_string()))?;
        let deletes =
            parser::parse_facts(delete_src).map_err(|e| EngineError::Parse(e.to_string()))?;
        self.update_parsed(name, &inserts, &deletes)
    }

    /// [`update`](Catalog::update) with the fact lists already parsed
    /// (the engine parses outside the catalog lock). The remaining work
    /// under the lock is proportional to the update's neighbourhood
    /// (semi-naive incremental maintenance), not the database size.
    pub fn update_parsed(
        &mut self,
        name: &str,
        inserts: &[Fact],
        deletes: &[Fact],
    ) -> Result<UpdateOutcome, EngineError> {
        self.update_parsed_with(name, inserts, deletes, |_| Ok(()))
            .map(|(outcome, _)| outcome)
    }

    /// [`update_parsed`](Catalog::update_parsed) with a journaling hook:
    /// for **effective** updates, `journal` receives the netted delta and
    /// the version the update will commit at, after validation but before
    /// the entry mutates; a failing journal vetoes the update. No-op
    /// updates never journal (nothing changed, nothing to replay).
    ///
    /// Alongside the outcome this returns the **touched relations** of
    /// the delta ([`crate::subscribe::touched_relations`], diffed while
    /// both the pre- and post-violation sets are in hand): the dirty set
    /// the shard's push path fans subscriber re-estimates out against.
    /// Empty for clean-region-only (and no-op) updates.
    pub fn update_parsed_with(
        &mut self,
        name: &str,
        inserts: &[Fact],
        deletes: &[Fact],
        journal: impl FnOnce(&UpdateDelta<'_>) -> Result<(), EngineError>,
    ) -> Result<(UpdateOutcome, Vec<String>), EngineError> {
        let next_version = self.next_version + 1;
        let entry = self
            .entries
            .get_mut(name)
            .ok_or_else(|| EngineError::UnknownDatabase(name.to_string()))?;

        // Apply on a scratch copy first so a schema error midway leaves
        // the entry untouched.
        let mut db = entry.db.clone();
        let mut added: Vec<Fact> = Vec::new();
        let mut removed: Vec<Fact> = Vec::new();
        for f in inserts {
            if db
                .insert(f)
                .map_err(|e| EngineError::Schema(e.to_string()))?
            {
                added.push(f.clone());
            }
        }
        for f in deletes {
            if db.remove(f) {
                removed.push(f.clone());
            }
        }
        // `update_violations` requires `added ⊆ db`, `removed ∩ db = ∅`,
        // the two lists disjoint, and both expressed relative to the
        // pre-state. A fact appearing in both batches (inserted here,
        // then deleted again) would break that; keep only the *net*
        // effect between the pre-state (`entry.db`) and the post-state.
        added.retain(|f| db.contains(f) && !entry.db.contains(f));
        removed.retain(|f| !db.contains(f) && entry.db.contains(f));
        if added.is_empty() && removed.is_empty() {
            // Nothing actually changed: keep the version (and with it the
            // memoized snapshot and every cached answer) — idempotent
            // retries must not flush the caches.
            return Ok((
                UpdateOutcome {
                    inserted: 0,
                    removed: 0,
                    version: entry.version,
                    violations: entry.violations.len(),
                },
                Vec::new(),
            ));
        }
        journal(&UpdateDelta {
            db: name,
            version: next_version,
            inserted: &added,
            removed: &removed,
        })?;
        let violations =
            incremental::update_violations(&entry.sigma, &db, &entry.violations, &added, &removed);
        let touched = crate::subscribe::touched_relations(
            &entry.sigma,
            &entry.violations,
            &violations,
            &added,
            &removed,
        );
        self.next_version = next_version;
        entry.stats = DbStats::compute(&db, &entry.sigma, &violations);
        entry.db = db;
        entry.violations = violations;
        entry.version = next_version;
        *entry.snapshot.get_mut() = None;
        *entry.plan.get_mut() = None;
        Ok((
            UpdateOutcome {
                inserted: added.len(),
                removed: removed.len(),
                version: entry.version,
                violations: entry.violations.len(),
            },
            touched,
        ))
    }

    /// The sampling snapshot for a database: an `Arc<RepairContext>` built
    /// from the maintained violation set, memoized until the next update.
    /// Also returns the entry's current version (the cache key component).
    ///
    /// Takes `&self`: the engine calls this under the catalog's shared
    /// read lock, so concurrent answers never serialize on each other; a
    /// cold rebuild after an update only briefly holds the per-entry
    /// snapshot mutex.
    pub fn context(&self, name: &str) -> Result<(Arc<RepairContext>, u64), EngineError> {
        let (ctx, version, _) = self.snapshot(name)?;
        Ok((ctx, version))
    }

    /// [`context`](Catalog::context) plus the memoized [`DbPlan`] for the
    /// same version — the planner's entry point. The plan's data-dependent
    /// artifacts (conflict components, violating key groups) are rebuilt
    /// here after an update, under the same per-entry mutex discipline as
    /// the snapshot.
    pub fn snapshot(
        &self,
        name: &str,
    ) -> Result<(Arc<RepairContext>, u64, Arc<DbPlan>), EngineError> {
        let entry = self
            .entries
            .get(name)
            .ok_or_else(|| EngineError::UnknownDatabase(name.to_string()))?;
        let mut snapshot = entry.snapshot.lock();
        if snapshot.is_none() {
            *snapshot = Some(RepairContext::with_violations(
                entry.db.clone(),
                entry.sigma.clone(),
                entry.violations.clone(),
            ));
        }
        let ctx = snapshot.as_ref().expect("just memoized").clone();
        drop(snapshot);
        let mut plan = entry.plan.lock();
        if plan.is_none() {
            *plan = Some(Arc::new(DbPlan::build_with_stats(&ctx, entry.stats)));
        }
        Ok((
            ctx,
            entry.version,
            plan.as_ref().expect("just memoized").clone(),
        ))
    }

    /// The structural plan classification of a database.
    pub fn plan_kind(&self, name: &str) -> Result<PlanKind, EngineError> {
        self.entries
            .get(name)
            .map(|e| e.plan_kind)
            .ok_or_else(|| EngineError::UnknownDatabase(name.to_string()))
    }

    /// The maintained conflict-structure statistics of a database (the
    /// cost model's stats feed; current as of the entry's version).
    pub fn stats(&self, name: &str) -> Result<DbStats, EngineError> {
        self.entries
            .get(name)
            .map(|e| e.stats)
            .ok_or_else(|| EngineError::UnknownDatabase(name.to_string()))
    }

    /// Number of databases under management.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Info for one entry.
    pub fn info(&self, name: &str) -> Result<DatabaseInfo, EngineError> {
        self.entries
            .get(name)
            .map(|e| e.info(name))
            .ok_or_else(|| EngineError::UnknownDatabase(name.to_string()))
    }

    /// Exports one entry as a snapshot [`TransferImage`]: the database,
    /// constraint source text, plan classification, maintained violation
    /// set and — crucially — the exact catalog **version**, so the shard
    /// that installs the image reports the same `db_version`s and builds
    /// the same answer-cache keys as the exporting shard (byte-identical
    /// answers across a rebalance).
    ///
    /// [`TransferImage`]: crate::transfer::TransferImage
    pub fn export(&self, name: &str) -> Result<crate::transfer::TransferImage, EngineError> {
        let entry = self
            .entries
            .get(name)
            .ok_or_else(|| EngineError::UnknownDatabase(name.to_string()))?;
        Ok(crate::transfer::TransferImage {
            name: name.to_string(),
            version: entry.version,
            plan: entry.plan_kind,
            constraints: entry.constraints_src.clone(),
            db: entry.db.clone(),
            violations: entry.violations.clone(),
        })
    }

    /// Info for every entry, sorted by name.
    pub fn list(&self) -> Vec<DatabaseInfo> {
        let mut out: Vec<DatabaseInfo> =
            self.entries.iter().map(|(name, e)| e.info(name)).collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

impl CatalogEntry {
    fn info(&self, name: &str) -> DatabaseInfo {
        DatabaseInfo {
            name: name.to_string(),
            version: self.version,
            facts: self.db.len(),
            violations: self.violations.len(),
            plan: self.plan_kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocqa_logic::ViolationSet;

    #[test]
    fn create_update_drop_lifecycle() {
        let mut cat = Catalog::new();
        let info = cat
            .create("prefs", "R(a,b). R(a,c).", "R(x,y), R(x,z) -> y = z.")
            .unwrap();
        assert_eq!((info.version, info.facts, info.violations), (1, 2, 2));
        assert!(matches!(
            cat.create("prefs", "", ""),
            Err(EngineError::DatabaseExists(_))
        ));

        let out = cat.update("prefs", "R(b,b).", "R(a,c).").unwrap();
        assert_eq!((out.inserted, out.removed, out.version), (1, 1, 2));
        assert_eq!(out.violations, 0, "conflict resolved by the delete");

        assert!(cat.drop_db("prefs").is_some());
        assert!(cat.drop_db("prefs").is_none());
        assert!(matches!(
            cat.update("prefs", "", ""),
            Err(EngineError::UnknownDatabase(_))
        ));
    }

    #[test]
    fn incremental_violations_match_recompute() {
        let mut cat = Catalog::new();
        cat.create(
            "db",
            "T(a,b). R(a,b). R(a,c).",
            "T(x,y) -> R(x,y). R(x,y), R(x,z) -> y = z.",
        )
        .unwrap();
        cat.update("db", "T(q,r). R(b,b).", "R(a,b).").unwrap();
        cat.update("db", "", "T(a,b).").unwrap();
        let (ctx, version) = cat.context("db").unwrap();
        assert_eq!(version, 3);
        assert_eq!(
            ctx.initial_violations(),
            &ViolationSet::compute(ctx.sigma(), ctx.d0()),
            "maintained set must equal recomputation"
        );
    }

    #[test]
    fn snapshot_memoized_per_version() {
        let mut cat = Catalog::new();
        cat.create("db", "R(a,b). R(a,c).", "R(x,y), R(x,z) -> y = z.")
            .unwrap();
        let (c1, v1) = cat.context("db").unwrap();
        let (c2, v2) = cat.context("db").unwrap();
        assert!(Arc::ptr_eq(&c1, &c2), "same version shares the snapshot");
        assert_eq!(v1, v2);
        cat.update("db", "S(z).", "").unwrap_err(); // unknown relation: schema error
        let (c3, v3) = cat.context("db").unwrap();
        assert!(Arc::ptr_eq(&c1, &c3), "failed update must not invalidate");
        assert_eq!(v3, v1);
        cat.update("db", "", "R(a,b).").unwrap();
        let (c4, v4) = cat.context("db").unwrap();
        assert!(!Arc::ptr_eq(&c1, &c4));
        assert_eq!(v4, v1 + 1);
    }

    #[test]
    fn plan_memoized_per_version_and_refreshed_by_updates() {
        let mut cat = Catalog::new();
        cat.create("db", "R(a,1). R(a,2). R(b,9).", "R(x,y), R(x,z) -> y = z.")
            .unwrap();
        assert_eq!(cat.plan_kind("db").unwrap(), PlanKind::KeyRepair);
        let (_, v1, p1) = cat.snapshot("db").unwrap();
        let (_, _, p2) = cat.snapshot("db").unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "same version shares the plan");
        // A no-op update keeps the memoized plan.
        cat.update("db", "R(b,9).", "").unwrap();
        let (_, _, p3) = cat.snapshot("db").unwrap();
        assert!(Arc::ptr_eq(&p1, &p3), "no-op update must not rebuild");
        // An effective update rebuilds the plan artifacts for the new
        // version (classification itself is structural and unchanged).
        cat.update("db", "R(b,10).", "").unwrap();
        let (_, v2, p4) = cat.snapshot("db").unwrap();
        assert!(v2 > v1);
        assert!(!Arc::ptr_eq(&p1, &p4), "update must refresh the plan");
        assert_eq!(p4.kind(), PlanKind::KeyRepair);
    }

    #[test]
    fn same_fact_in_both_batches_keeps_index_exact() {
        // Insert-then-delete of the same fact within one batch must leave
        // the incrementally maintained violation set equal to a full
        // recomputation (the `update_violations` precondition fix).
        let mut cat = Catalog::new();
        cat.create("db", "Pref(b,a).", "Pref(x,y), Pref(y,x) -> false.")
            .unwrap();
        let out = cat.update("db", "Pref(a,b).", "Pref(a,b).").unwrap();
        assert_eq!((out.inserted, out.removed), (0, 0), "net no-op");
        assert_eq!(out.violations, 0);
        let (ctx, _) = cat.context("db").unwrap();
        assert_eq!(
            ctx.initial_violations(),
            &ViolationSet::compute(ctx.sigma(), ctx.d0())
        );
        // And when the fact *was* present, the delete wins.
        let out = cat.update("db", "Pref(b,a).", "Pref(b,a).").unwrap();
        assert_eq!((out.inserted, out.removed), (0, 1));
        let (ctx, _) = cat.context("db").unwrap();
        assert!(ctx.d0().is_empty());
    }

    #[test]
    fn recreated_database_never_reuses_versions() {
        // A drop + recreate cycle must not produce a version an earlier
        // incarnation already used: answer-cache keys embed (name,
        // version), and an aliased pair would serve answers computed
        // against the dropped database's facts.
        let mut cat = Catalog::new();
        let v1 = cat
            .create("a", "R(1,1).", "R(x,y), R(x,z) -> y = z.")
            .unwrap()
            .version;
        assert!(cat.drop_db("a").is_some());
        let v2 = cat
            .create("a", "R(2,2).", "R(x,y), R(x,z) -> y = z.")
            .unwrap()
            .version;
        assert!(v2 > v1, "recreate got stale version {v2} <= {v1}");
    }

    #[test]
    fn noop_update_keeps_version_and_snapshot() {
        let mut cat = Catalog::new();
        cat.create("db", "R(1,1).", "R(x,y), R(x,z) -> y = z.")
            .unwrap();
        let (snap1, v1) = cat.context("db").unwrap();
        // Inserting a present fact and deleting an absent one: no-op.
        let out = cat.update("db", "R(1,1).", "R(9,9).").unwrap();
        assert_eq!((out.inserted, out.removed, out.version), (0, 0, v1));
        let (snap2, v2) = cat.context("db").unwrap();
        assert_eq!(v2, v1);
        assert!(Arc::ptr_eq(&snap1, &snap2), "snapshot must survive no-ops");
    }

    #[test]
    fn update_reports_touched_relations() {
        let mut cat = Catalog::new();
        cat.create("db", "R(1,10). S(5).", "R(x,y), R(x,z) -> y = z.")
            .unwrap();
        // Appending to the unconstrained relation S is clean-region-only.
        let inserts = parser::parse_facts("S(6).").unwrap();
        let (out, touched) = cat
            .update_parsed_with("db", &inserts, &[], |_| Ok(()))
            .unwrap();
        assert_eq!(out.inserted, 1);
        assert!(
            touched.is_empty(),
            "clean-region append touched {touched:?}"
        );
        // A key conflict on R dirties R's component.
        let inserts = parser::parse_facts("R(1,20).").unwrap();
        let (_, touched) = cat
            .update_parsed_with("db", &inserts, &[], |_| Ok(()))
            .unwrap();
        assert_eq!(touched, vec!["R".to_string()]);
    }

    #[test]
    fn failed_update_leaves_entry_untouched() {
        let mut cat = Catalog::new();
        cat.create("db", "R(a,b).", "R(x,y), R(x,z) -> y = z.")
            .unwrap();
        // Second fact has a bad arity: the whole batch must roll back.
        let err = cat.update("db", "R(b,c). R(d).", "").unwrap_err();
        assert!(matches!(err, EngineError::Schema(_)));
        let info = cat.info("db").unwrap();
        assert_eq!((info.version, info.facts), (1, 1));
    }
}
