//! A minimal JSON value type, parser and writer.
//!
//! The serving protocol is newline-delimited JSON. The build environment
//! has no `serde`, and the protocol surface is small, so this module
//! implements exactly what's needed: a dynamic [`Json`] value with a
//! recursive-descent parser (depth-capped; see [`MAX_DEPTH`]) and a
//! writer with full string escaping. Integer literals keep exact `i64`
//! precision ([`Json::Int`]); other numbers are `f64`.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer that must survive exactly (database constants can be
    /// any `i64`; `f64` corrupts values above 2⁵³). The parser produces
    /// this variant for undecorated integer literals that fit.
    Int(i64),
    /// Any other JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps serialized output deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Mutable member lookup on objects.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Json> {
        match self {
            Json::Obj(m) => m.get_mut(key),
            _ => None,
        }
    }

    /// Sets a member on an object (no-op on non-objects). The serving
    /// layer uses this to decorate rendered responses — e.g. the front
    /// door tagging each routed response with its serving `shard`.
    pub fn set(&mut self, key: &str, value: Json) {
        if let Json::Obj(m) = self {
            m.insert(key.to_string(), value);
        }
    }

    /// Removes a member from an object (no-op on non-objects). The route
    /// proxy uses this when rewriting a `prepared` answer to its inline
    /// query text before forwarding.
    pub fn remove(&mut self, key: &str) {
        if let Json::Obj(m) = self {
            m.remove(key);
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The numeric payload as an exact unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => u64::try_from(*v).ok(),
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        match i64::try_from(n) {
            Ok(v) => Json::Int(v),
            Err(_) => Json::Num(n as f64),
        }
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(v) => write!(f, "{v}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting the parser accepts. Recursive descent uses
/// the thread's stack, so an unbounded depth would let one crafted line
/// (`[[[[…`) abort the whole server with a stack overflow.
pub const MAX_DEPTH: u32 = 128;

/// Parses one JSON document, rejecting trailing garbage.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after value"));
    }
    Ok(value)
}

fn err(at: usize, msg: impl Into<String>) -> JsonError {
    JsonError {
        at,
        msg: msg.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: u32) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return Err(err(*pos, format!("nesting deeper than {MAX_DEPTH}")));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_obj(bytes, pos, depth),
        Some(b'[') => parse_arr(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected {lit:?}")))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    // Undecorated integers keep exact i64 precision; everything else
    // (fractions, exponents, out-of-range) falls back to f64.
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::Int(v));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, format!("invalid number {text:?}")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = read_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        if (0xD800..=0xDBFF).contains(&code) {
                            // High surrogate: combine with the following
                            // \uDC00–\uDFFF escape (standard serializers
                            // ASCII-escape non-BMP text this way).
                            if bytes.get(*pos + 1..*pos + 3) == Some(b"\\u") {
                                let low = read_hex4(bytes, *pos + 3)?;
                                if (0xDC00..=0xDFFF).contains(&low) {
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    out.push(char::from_u32(combined).unwrap_or('\u{FFFD}'));
                                    *pos += 6;
                                } else {
                                    out.push('\u{FFFD}'); // unpaired high
                                }
                            } else {
                                out.push('\u{FFFD}'); // unpaired high
                            }
                        } else {
                            // Lone low surrogates map to the replacement
                            // character rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte aware).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn read_hex4(bytes: &[u8], at: usize) -> Result<u32, JsonError> {
    let hex = bytes
        .get(at..at + 4)
        .ok_or_else(|| err(at, "truncated \\u escape"))?;
    u32::from_str_radix(
        std::str::from_utf8(hex).map_err(|_| err(at, "bad \\u escape"))?,
        16,
    )
    .map_err(|_| err(at, "bad \\u escape"))
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: u32) -> Result<Json, JsonError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: u32) -> Result<Json, JsonError> {
    *pos += 1; // '{'
    let mut members = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected string key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':' after key"));
        }
        *pos += 1;
        members.insert(key, parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(err(*pos, "expected ',' or '}' in object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let src = r#"{"op":"answer","eps":0.05,"tuple":["a",-3,true,null],"nested":{"k":"v"}}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("answer"));
        assert_eq!(v.get("eps").and_then(Json::as_f64), Some(0.05));
        let reparsed = parse(&v.to_string()).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::Str("line\n\"quoted\"\tαβ".into());
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs_decode_to_non_bmp() {
        // Python json.dumps("😀") with default ensure_ascii emits the
        // surrogate-pair escape form.
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Json::Str("😀".into()));
        // Raw UTF-8 non-BMP text also survives.
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        // Unpaired surrogates degrade to U+FFFD, not an error.
        assert_eq!(
            parse(r#""\ud83dX""#).unwrap(),
            Json::Str("\u{FFFD}X".into())
        );
        assert_eq!(parse(r#""\ude00""#).unwrap(), Json::Str("\u{FFFD}".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
        assert!(parse("{\"a\":1}x").is_err());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(150.0).to_string(), "150");
        assert_eq!(Json::Num(0.45).to_string(), "0.45");
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn nesting_bomb_rejected_not_crashed() {
        let bomb = "[".repeat(100_000);
        let e = parse(&bomb).unwrap_err();
        assert!(e.msg.contains("nesting"), "{e}");
        // Depths at the limit still parse.
        let ok = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn large_integers_survive_exactly() {
        for v in [i64::MAX, i64::MIN, (1i64 << 53) + 1, -((1i64 << 53) + 3)] {
            let rendered = Json::Int(v).to_string();
            assert_eq!(rendered, v.to_string());
            assert_eq!(parse(&rendered).unwrap(), Json::Int(v), "{v}");
        }
        // Out-of-range integer literals degrade to f64 rather than error.
        assert!(matches!(
            parse("99999999999999999999999").unwrap(),
            Json::Num(_)
        ));
    }

    #[test]
    fn u64_bounds() {
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(0.5).as_u64(), None);
    }
}
