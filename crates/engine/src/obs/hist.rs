//! Fixed log2-bucket latency histograms with lock-free recording.
//!
//! The serving hot path cannot afford locks or allocation to observe
//! itself, so the histogram is a fixed array of relaxed atomic counters:
//! recording a sample is one bucket increment plus the count/sum
//! updates — a handful of nanoseconds against a microsecond-scale cached
//! answer. Buckets are powers of two in **microseconds**: bucket 0 holds
//! exact zeros, bucket `i ≥ 1` holds `[2^(i-1), 2^i)` µs, and the last
//! bucket absorbs everything above the range (≈ 36 minutes), so
//! assignment is a `leading_zeros` and never a search.
//!
//! Snapshots ([`HistSnapshot`]) are plain structs that merge bucket-wise
//! — merging is associative and commutative, which is what lets the
//! multi-process router aggregate per-upstream snapshots into exactly
//! the document an in-process multi-shard engine renders.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 buckets. Bucket `BUCKETS - 1` covers everything from
/// `2^(BUCKETS-2)` µs (≈ 18 min) upward.
pub const BUCKETS: usize = 32;

/// Bucket index for a latency of `us` microseconds.
pub fn bucket_of(us: u64) -> usize {
    if us == 0 {
        return 0;
    }
    (64 - us.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` in microseconds, `None` for the
/// unbounded last bucket.
pub fn bucket_bound(i: usize) -> Option<u64> {
    if i + 1 >= BUCKETS {
        return None;
    }
    Some((1u64 << i) - 1)
}

/// A live latency histogram: lock-free, fixed-size, microsecond buckets.
#[derive(Debug, Default)]
pub struct Histogram {
    count: AtomicU64,
    sum_us: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one latency observation.
    pub fn record(&self, elapsed: Duration) {
        self.record_value(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one raw observation in the same log2 buckets. For
    /// unitless series (the WAL's records-per-fsync batch sizes) the
    /// bucket bounds read as plain powers of two rather than
    /// microseconds.
    pub fn record_value(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters. Relaxed reads: the snapshot
    /// is statistically consistent, not a linearization point.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// An immutable histogram snapshot: what the `metrics` op reports and
/// the route proxy merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed latencies, microseconds.
    pub sum_us: u64,
    /// Per-bucket observation counts (see [`bucket_of`]).
    pub buckets: [u64; BUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> HistSnapshot {
        HistSnapshot {
            count: 0,
            sum_us: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistSnapshot {
    /// Bucket-wise merge (associative and commutative — aggregation
    /// order can never change the merged document).
    pub fn merge(&mut self, other: &HistSnapshot) {
        self.count += other.count;
        self.sum_us += other.sum_us;
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Renders as JSON: `{"buckets":[[i,n],…],"count":…,"sum_us":…}`.
    /// Buckets are sparse (zero buckets omitted) and index-ordered, so
    /// equal snapshots render byte-identically.
    pub fn to_json(&self) -> Json {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| Json::Arr(vec![Json::from(i as u64), Json::from(*n)]))
            .collect();
        Json::obj([
            ("buckets", Json::Arr(buckets)),
            ("count", Json::from(self.count)),
            ("sum_us", Json::from(self.sum_us)),
        ])
    }

    /// Parses the [`to_json`](HistSnapshot::to_json) form.
    pub fn from_json(v: &Json) -> Result<HistSnapshot, String> {
        let num = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("histogram missing {key:?}"))
        };
        let mut out = HistSnapshot {
            count: num("count")?,
            sum_us: num("sum_us")?,
            buckets: [0; BUCKETS],
        };
        let Some(Json::Arr(pairs)) = v.get("buckets") else {
            return Err("histogram missing \"buckets\"".into());
        };
        for pair in pairs {
            let Json::Arr(kv) = pair else {
                return Err("histogram bucket must be [index, count]".into());
            };
            let (Some(i), Some(n)) = (
                kv.first().and_then(Json::as_u64),
                kv.get(1).and_then(Json::as_u64),
            ) else {
                return Err("histogram bucket must be [index, count]".into());
            };
            let i = i as usize;
            if kv.len() != 2 || i >= BUCKETS {
                return Err(format!("histogram bucket index {i} out of range"));
            }
            out.buckets[i] += n;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_log2() {
        // Bucket 0 is exactly zero; bucket i ≥ 1 covers [2^(i-1), 2^i).
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        for i in 1..BUCKETS - 1 {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(bucket_of(lo), i, "lower edge of bucket {i}");
            assert_eq!(bucket_of(hi), i, "upper edge of bucket {i}");
            assert_eq!(bucket_bound(i), Some(hi));
        }
        // Everything past the range lands in the last bucket.
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_of(1u64 << 62), BUCKETS - 1);
        assert_eq!(bucket_bound(BUCKETS - 1), None);
    }

    #[test]
    fn record_fills_count_sum_and_bucket() {
        let h = Histogram::new();
        h.record(Duration::from_micros(0));
        h.record(Duration::from_micros(5));
        h.record(Duration::from_micros(5));
        h.record(Duration::from_millis(3)); // 3000 µs → bucket 12
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum_us, 3010);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[bucket_of(5)], 2);
        assert_eq!(s.buckets[bucket_of(3000)], 1);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4);
    }

    fn synthetic(seed: u64) -> HistSnapshot {
        let mut s = HistSnapshot::default();
        for k in 0..10u64 {
            let us = (seed + 1) * k * k;
            s.buckets[bucket_of(us)] += 1;
            s.count += 1;
            s.sum_us += us;
        }
        s
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let (a, b, c) = (synthetic(3), synthetic(17), synthetic(40));
        // (a ⊕ b) ⊕ c
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right, "merge must be associative");
        // b ⊕ a == a ⊕ b
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(left.count, 30);
        // Byte-identical rendering of equal snapshots.
        assert_eq!(left.to_json().to_string(), right.to_json().to_string());
    }

    #[test]
    fn json_roundtrip_preserves_sparse_buckets() {
        let s = synthetic(9);
        let rendered = s.to_json().to_string();
        let parsed = HistSnapshot::from_json(&crate::json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(parsed, s);
        assert_eq!(parsed.to_json().to_string(), rendered);
        // The empty histogram renders and parses too.
        let empty = HistSnapshot::default();
        let rendered = empty.to_json().to_string();
        assert_eq!(rendered, r#"{"buckets":[],"count":0,"sum_us":0}"#);
        let parsed = HistSnapshot::from_json(&crate::json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(parsed, empty);
    }

    #[test]
    fn from_json_rejects_malformed_buckets() {
        for bad in [
            r#"{"buckets":[[99,1]],"count":1,"sum_us":0}"#, // index ≥ BUCKETS
            r#"{"buckets":[[1]],"count":1,"sum_us":0}"#,    // not a pair
            r#"{"buckets":[1],"count":1,"sum_us":0}"#,      // not an array
            r#"{"count":1,"sum_us":0}"#,                    // missing buckets
            r#"{"buckets":[],"sum_us":0}"#,                 // missing count
        ] {
            let v = crate::json::parse(bad).unwrap();
            assert!(HistSnapshot::from_json(&v).is_err(), "{bad}");
        }
    }
}
