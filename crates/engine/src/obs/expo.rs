//! Prometheus text exposition for the serving engine — no dependencies,
//! hand-rolled HTTP.
//!
//! The `--metrics-addr` listener renders the engine's own `stats` and
//! `metrics` protocol responses as Prometheus text format 0.0.4, so a
//! dashboard can scrape a live `ocqa serve` *or* `ocqa route` process:
//! the renderer is built on [`LineService`], the same abstraction both
//! deployments serve the NDJSON protocol through, and therefore needs no
//! knowledge of which one it is observing.
//!
//! Counters keep their protocol names under an `ocqa_` prefix
//! (`ocqa_answers_total`, `ocqa_cache_hits_total`, …); histograms become
//! conventional `_bucket`/`_sum`/`_count` series labeled by shard and by
//! op/plan/stage (`ocqa_op_latency_us_bucket{op="answer",shard="0",
//! le="63"}`). Bucket `le` bounds are the inclusive upper edges of the
//! log2 buckets ([`bucket_bound`]); zero-delta buckets are elided (legal
//! in the exposition format — `+Inf` is always present), keeping scrapes
//! small.

use super::hist::{bucket_bound, HistSnapshot, BUCKETS};
use super::{MetricsSnapshot, Op, Stage, PLANS};
use crate::json::Json;
use crate::server::LineService;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// How long one scrape connection may take to send its request head and
/// drain the response. A stuck scraper must not wedge the listener.
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(5);

/// Upper bound on the HTTP request head we bother reading.
const MAX_REQUEST_HEAD: u64 = 16 * 1024;

/// Renders the full Prometheus exposition document for a serving
/// process, by asking it for `stats` and `metrics` over its own protocol.
pub fn render_prometheus<S: LineService + ?Sized>(service: &S) -> String {
    let mut out = String::new();
    let stats = crate::json::parse(&service.serve_line(r#"{"op":"stats"}"#)).ok();
    let metrics = crate::json::parse(&service.serve_line(r#"{"op":"metrics"}"#)).ok();
    if let Some(stats) = stats.filter(is_ok) {
        render_stats(&mut out, &stats);
    } else {
        out.push_str("# stats unavailable\n");
    }
    match metrics.filter(is_ok) {
        Some(metrics) => render_metrics(&mut out, &metrics),
        None => out.push_str("# metrics unavailable\n"),
    }
    out
}

fn is_ok(v: &Json) -> bool {
    v.get("ok").and_then(Json::as_bool) == Some(true)
}

/// The flat `stats` counters, exported under their protocol names.
fn render_stats(out: &mut String, stats: &Json) {
    if let Some(build) = stats.get("build").and_then(Json::as_str) {
        let _ = writeln!(out, "# TYPE ocqa_build_info gauge");
        let _ = writeln!(out, "ocqa_build_info{{version={build:?}}} 1");
    }
    let gauges = [
        "uptime_ms",
        "workers",
        "databases",
        "prepared",
        "shards",
        "subscriptions",
    ];
    for key in gauges {
        if let Some(v) = stats.get(key).and_then(Json::as_u64) {
            let _ = writeln!(out, "# TYPE ocqa_{key} gauge");
            let _ = writeln!(out, "ocqa_{key} {v}");
        }
    }
    let counters = [
        "requests",
        "answers",
        "walks",
        "coalesced",
        "cache_hits",
        "cache_misses",
        "cache_dominated_hits",
        "cache_invalidated",
        "cache_evicted",
        "cache_stale_drops",
        "cache_expired",
    ];
    for key in counters {
        if let Some(v) = stats.get(key).and_then(Json::as_u64) {
            let _ = writeln!(out, "# TYPE ocqa_{key}_total counter");
            let _ = writeln!(out, "ocqa_{key}_total {v}");
        }
    }
    // Router deployments: per-upstream health, labeled by shard/address.
    if let Some(Json::Arr(ups)) = stats.get("upstreams") {
        let _ = writeln!(out, "# TYPE ocqa_upstream_healthy gauge");
        let _ = writeln!(out, "# TYPE ocqa_upstream_reconnects_total counter");
        for (k, up) in ups.iter().enumerate() {
            let addr = up.get("addr").and_then(Json::as_str).unwrap_or("?");
            let healthy = up.get("healthy").and_then(Json::as_bool) == Some(true);
            let reconnects = up.get("reconnects").and_then(Json::as_u64).unwrap_or(0);
            let _ = writeln!(
                out,
                "ocqa_upstream_healthy{{addr={addr:?},shard=\"{k}\"}} {}",
                u8::from(healthy)
            );
            let _ = writeln!(
                out,
                "ocqa_upstream_reconnects_total{{addr={addr:?},shard=\"{k}\"}} {reconnects}"
            );
        }
    }
}

/// The per-shard latency histograms from a `metrics` response, plus the
/// elastic-cluster gauges carried at the response's top level.
fn render_metrics(out: &mut String, metrics: &Json) {
    // Topology epoch and rebalance moves are gauges of the serving
    // deployment as a whole; replication lag is the count of mutations a
    // detached standby has missed (summed across upstreams by the
    // router's fan-out) — nonzero means failover would lose writes.
    let elastic = [
        ("topology_epoch", "ocqa_topology_epoch", "gauge"),
        ("rebalance_moves", "ocqa_rebalance_moves_total", "counter"),
        ("replication_lag", "ocqa_replication_lag_records", "gauge"),
    ];
    for (key, name, kind) in elastic {
        if let Some(v) = metrics.get(key).and_then(Json::as_u64) {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name} {v}");
        }
    }
    let Some(Json::Arr(shards)) = metrics.get("per_shard") else {
        out.push_str("# metrics malformed: no per_shard\n");
        return;
    };
    let _ = writeln!(out, "# TYPE ocqa_op_latency_us histogram");
    let _ = writeln!(out, "# TYPE ocqa_plan_latency_us histogram");
    let _ = writeln!(out, "# TYPE ocqa_stage_latency_us histogram");
    let _ = writeln!(out, "# TYPE ocqa_push_latency_us histogram");
    let _ = writeln!(out, "# TYPE ocqa_subs_shed_total counter");
    let _ = writeln!(out, "# TYPE ocqa_shard_subscriptions gauge");
    let _ = writeln!(out, "# TYPE ocqa_wal_batch_records histogram");
    let _ = writeln!(out, "# TYPE ocqa_wal_fsync_latency_us histogram");
    for entry in shards {
        let shard = entry.get("shard").and_then(Json::as_u64).unwrap_or(0);
        let Ok(snap) = MetricsSnapshot::from_json(entry) else {
            let _ = writeln!(out, "# shard {shard}: malformed snapshot");
            continue;
        };
        for (op, h) in Op::ALL.iter().zip(&snap.ops) {
            render_hist(out, "ocqa_op_latency_us", "op", op.as_str(), shard, h);
        }
        for (plan, h) in PLANS.iter().zip(&snap.plans) {
            render_hist(out, "ocqa_plan_latency_us", "plan", plan.as_str(), shard, h);
        }
        for (stage, h) in Stage::ALL.iter().zip(&snap.stages) {
            render_hist(
                out,
                "ocqa_stage_latency_us",
                "stage",
                stage.as_str(),
                shard,
                h,
            );
        }
        render_hist(
            out,
            "ocqa_push_latency_us",
            "kind",
            "estimate",
            shard,
            &snap.push,
        );
        let _ = writeln!(
            out,
            "ocqa_subs_shed_total{{shard=\"{shard}\"}} {}",
            snap.shed
        );
        let _ = writeln!(
            out,
            "ocqa_shard_subscriptions{{shard=\"{shard}\"}} {}",
            snap.subscriptions
        );
        // WAL group commit: batch sizes are raw record counts in the
        // same log2 buckets, fsync latency is µs like every other
        // latency series.
        render_hist(
            out,
            "ocqa_wal_batch_records",
            "log",
            "wal",
            shard,
            &snap.wal_batch,
        );
        render_hist(
            out,
            "ocqa_wal_fsync_latency_us",
            "log",
            "wal",
            shard,
            &snap.wal_fsync_us,
        );
    }
}

fn render_hist(
    out: &mut String,
    name: &str,
    label: &str,
    value: &str,
    shard: u64,
    h: &HistSnapshot,
) {
    let mut cumulative = 0u64;
    for (i, n) in h.buckets.iter().enumerate().take(BUCKETS - 1) {
        if *n == 0 {
            continue; // elided: the next emitted bucket carries the sum
        }
        cumulative += n;
        let le = bucket_bound(i).expect("bounded bucket");
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"{le}\",{label}=\"{value}\",shard=\"{shard}\"}} {cumulative}"
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{{le=\"+Inf\",{label}=\"{value}\",shard=\"{shard}\"}} {}",
        h.count
    );
    let _ = writeln!(
        out,
        "{name}_sum{{{label}=\"{value}\",shard=\"{shard}\"}} {}",
        h.sum_us
    );
    let _ = writeln!(
        out,
        "{name}_count{{{label}=\"{value}\",shard=\"{shard}\"}} {}",
        h.count
    );
}

/// Serves one scrape connection: reads and discards the HTTP request
/// head, then writes the full exposition document. Any request line
/// (`GET /metrics`, `GET /`, a health checker's `HEAD`) gets the same
/// document — the listener exposes nothing else.
pub fn serve_scrape<S: LineService + ?Sized>(
    service: &S,
    stream: &mut TcpStream,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(SCRAPE_TIMEOUT))?;
    stream.set_write_timeout(Some(SCRAPE_TIMEOUT))?;
    // Drain the request head (request line + headers) up to a blank
    // line, bounded so a garbage-spewing client cannot pin the thread.
    let mut head = BufReader::new(stream.try_clone()?).take(MAX_REQUEST_HEAD);
    let mut line = String::new();
    loop {
        line.clear();
        let n = head.read_line(&mut line)?;
        if n == 0 || line.trim_end_matches(['\r', '\n']).is_empty() {
            break;
        }
    }
    let body = render_prometheus(service);
    let _ = write!(
        stream,
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.flush()
}

/// Spawns the `--metrics-addr` scrape listener on its own thread.
/// Scrapes are served sequentially — one dashboard polling every few
/// seconds, not a request path — and a failed accept ends the listener
/// without touching the serving process.
pub fn spawn_exposition_listener<S: LineService + 'static>(service: Arc<S>, listener: TcpListener) {
    let run = move || {
        for conn in listener.incoming() {
            let Ok(mut stream) = conn else { continue };
            let _ = serve_scrape(&*service, &mut stream);
        }
    };
    if let Err(e) = std::thread::Builder::new()
        .name("ocqa-metrics".into())
        .spawn(run)
    {
        eprintln!("ocqa: metrics listener thread failed to start: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};

    fn engine() -> Arc<Engine> {
        Engine::new(EngineConfig {
            workers: 2,
            cache_capacity: 64,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn renders_counters_and_histograms() {
        let e = engine();
        assert!(e
            .handle_line(
                r#"{"op":"create_db","name":"kv","facts":"R(1,10). R(1,20).","constraints":"R(x,y), R(x,z) -> y = z."}"#
            )
            .to_string()
            .contains("\"ok\":true"));
        for seed in [1, 1] {
            let line = format!(
                r#"{{"op":"answer","db":"kv","query":"(x) <- exists y: R(x,y)","eps":0.1,"delta":0.1,"seed":{seed}}}"#
            );
            assert!(e.handle_line(&line).to_string().contains("\"answers\""));
        }
        let text = render_prometheus(&*e);
        assert!(text.contains("ocqa_build_info{version="), "{text}");
        assert!(text.contains("ocqa_answers_total 2"), "{text}");
        assert!(text.contains("ocqa_cache_hits_total 1"), "{text}");
        assert!(text.contains("ocqa_uptime_ms"), "{text}");
        assert!(
            text.contains("ocqa_op_latency_us_count{op=\"answer\",shard=\"0\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("ocqa_op_latency_us_count{op=\"install\",shard=\"0\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("ocqa_plan_latency_us_count{plan=\"key-repair\",shard=\"0\"} 2"),
            "{text}"
        );
        // 3 lookups: the cold answer's miss + its leader re-check, and
        // the cached answer's hit.
        assert!(
            text.contains("ocqa_stage_latency_us_count{stage=\"cache_lookup\",shard=\"0\"} 3"),
            "{text}"
        );
        // Cumulative bucket lines end at +Inf with the total count.
        assert!(
            text.contains("ocqa_op_latency_us_bucket{le=\"+Inf\",op=\"answer\",shard=\"0\"} 2"),
            "{text}"
        );
        // Elastic-cluster gauges: an in-process engine sits at epoch 1
        // with no moves and no standby to lag.
        assert!(text.contains("ocqa_topology_epoch 1"), "{text}");
        assert!(text.contains("ocqa_rebalance_moves_total 0"), "{text}");
        assert!(text.contains("ocqa_replication_lag_records 0"), "{text}");
        // Streaming series are present even with no subscribers.
        assert!(text.contains("ocqa_subscriptions 0"), "{text}");
        assert!(
            text.contains("ocqa_push_latency_us_count{kind=\"estimate\",shard=\"0\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("ocqa_subs_shed_total{shard=\"0\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("ocqa_shard_subscriptions{shard=\"0\"} 0"),
            "{text}"
        );
        // WAL group-commit series render even on a memory backend
        // (empty histograms, fixed schema).
        assert!(
            text.contains("ocqa_wal_batch_records_count{log=\"wal\",shard=\"0\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("ocqa_wal_fsync_latency_us_count{log=\"wal\",shard=\"0\"} 0"),
            "{text}"
        );
    }

    #[test]
    fn scrape_listener_answers_http() {
        let e = engine();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        spawn_exposition_listener(e, listener);
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.0 200 OK\r\n"), "{resp}");
        assert!(resp.contains("text/plain; version=0.0.4"), "{resp}");
        assert!(resp.contains("ocqa_requests_total"), "{resp}");
        // Content-Length matches the body exactly.
        let (head, body) = resp.split_once("\r\n\r\n").unwrap();
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(body.len(), len);
    }
}
