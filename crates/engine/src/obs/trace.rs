//! Slow-request trace events: structured NDJSON on stderr.
//!
//! With `--slow-ms N`, every request whose total service time reaches
//! `N` milliseconds emits one JSON object on stderr — machine-parseable
//! (stderr already carries only diagnostics; stdout stays pure
//! protocol). Shard-level events carry the stage breakdown and chosen
//! plan; the route proxy emits transport-level events without stages
//! (the breakdown lives in the upstream's own log).
//!
//! ```json
//! {"cached":false,"db":"kv","elapsed_ms":712,"event":"slow_request",
//!  "op":"answer","plan":"monolithic","shard":0,
//!  "stages":{"cache_lookup_us":2,"flight_wait_us":0,"sample_us":711833}}
//! ```

use crate::json::Json;
use std::time::Duration;

/// A slow-request log: an optional threshold plus the stderr emitter.
/// Cost when disabled (or when a request is fast): one branch.
#[derive(Debug, Clone, Copy, Default)]
pub struct SlowLog {
    threshold: Option<Duration>,
}

impl SlowLog {
    /// A log firing at `slow_ms` milliseconds; `0` disables tracing.
    pub fn new(slow_ms: u64) -> SlowLog {
        SlowLog {
            threshold: (slow_ms > 0).then(|| Duration::from_millis(slow_ms)),
        }
    }

    /// Whether a request taking `elapsed` should emit an event.
    pub fn is_slow(&self, elapsed: Duration) -> bool {
        self.threshold.is_some_and(|t| elapsed >= t)
    }

    /// Emits one trace event line on stderr. Callers build the event
    /// only after [`is_slow`](SlowLog::is_slow) — the fast path never
    /// allocates. `eprintln!` locks stderr per call, so concurrent
    /// events interleave line-atomically.
    pub fn emit(&self, mut event: Json) {
        event.set("event", Json::from("slow_request"));
        eprintln!("{event}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_gates_events() {
        let off = SlowLog::new(0);
        assert!(!off.is_slow(Duration::from_secs(3600)));
        let on = SlowLog::new(250);
        assert!(!on.is_slow(Duration::from_millis(249)));
        assert!(on.is_slow(Duration::from_millis(250)));
        assert!(on.is_slow(Duration::from_secs(2)));
    }
}
