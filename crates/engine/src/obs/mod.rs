//! `ocqa-obs`: engine-wide observability — metrics registry, latency
//! histograms, slow-request traces and Prometheus exposition.
//!
//! The serving stack (front door → router → shard, PRs 3–5) emitted
//! only a flat counter blob through `stats`. This module family adds the
//! runtime-feedback feed the cost-based planner v2 needs and operators
//! ask for first:
//!
//! * [`hist`] — lock-free log2-bucket latency [`Histogram`]s whose
//!   snapshots merge bucket-wise (associatively, so aggregation order
//!   never changes the merged document);
//! * [`ShardMetrics`] — the per-shard registry: one histogram per
//!   protocol operation, per answer plan, and per hot-path stage
//!   (cache lookup, single-flight wait, sampling walk, WAL append);
//! * [`trace`] — `--slow-ms` structured NDJSON trace events on stderr,
//!   one per slow request, with the stage breakdown and chosen plan;
//! * [`expo`] — the `--metrics-addr` plain-text Prometheus exposition
//!   listener (no dependencies, hand-rolled HTTP).
//!
//! # Where metrics are recorded
//!
//! Only **shards** record latency metrics; front doors (in-process or
//! the `ocqa route` proxy) record none of their own. That asymmetry is
//! deliberate: it makes the `metrics` fan-out of `ocqa serve --shards N`
//! and of `ocqa route` over N single-shard upstreams the *same*
//! aggregation of the same per-shard snapshots, rendered by the same
//! code — so the two deployments answer `metrics` byte-identically
//! (the router's extra `upstreams` health array aside), extending the
//! determinism contract to observability.

pub mod expo;
pub mod hist;
pub mod trace;

pub use hist::{bucket_bound, bucket_of, HistSnapshot, Histogram, BUCKETS};
pub use trace::SlowLog;

use crate::json::Json;
use crate::planner::PlanKind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Protocol operations a shard serves (front-door-only ops like `ping`,
/// `list` and `stats` are not timed — they never touch shard state that
/// planner v2 or an operator would tune).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `answer` — the sampling hot path.
    Answer,
    /// `create_db` — parse, violation index, journaled install.
    Install,
    /// `insert`/`delete` — incremental violation update + WAL.
    Update,
    /// `drop_db`.
    Drop,
    /// `prepare` (explicit or first-seen inline text).
    Prepare,
    /// `prepared_get` — the handle-authority lookup.
    PreparedGet,
}

impl Op {
    /// Every operation, in fixed registry order.
    pub const ALL: [Op; 6] = [
        Op::Answer,
        Op::Install,
        Op::Update,
        Op::Drop,
        Op::Prepare,
        Op::PreparedGet,
    ];

    /// The protocol-facing label.
    pub fn as_str(self) -> &'static str {
        match self {
            Op::Answer => "answer",
            Op::Install => "install",
            Op::Update => "update",
            Op::Drop => "drop",
            Op::Prepare => "prepare",
            Op::PreparedGet => "prepared_get",
        }
    }
}

/// Hot-path stages of an `answer` (plus the WAL append every journaled
/// mutation pays). Stage timings do not sum to the op timing — they are
/// the interesting *parts* of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Answer-cache lock + lookup.
    CacheLookup,
    /// Blocking on another request's in-flight sampling run.
    FlightWait,
    /// The sampling walk itself (pool run, leader only).
    Sample,
    /// Storage-backend journaling (WAL append + fsync on disk stores).
    WalAppend,
}

impl Stage {
    /// Every stage, in fixed registry order.
    pub const ALL: [Stage; 4] = [
        Stage::CacheLookup,
        Stage::FlightWait,
        Stage::Sample,
        Stage::WalAppend,
    ];

    /// The protocol-facing label.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::CacheLookup => "cache_lookup",
            Stage::FlightWait => "flight_wait",
            Stage::Sample => "sample",
            Stage::WalAppend => "wal_append",
        }
    }
}

/// Answer plans, in fixed registry order (mirrors [`PlanKind`]).
pub const PLANS: [PlanKind; 3] = [
    PlanKind::KeyRepair,
    PlanKind::Localized,
    PlanKind::Monolithic,
];

fn plan_index(plan: PlanKind) -> usize {
    match plan {
        PlanKind::KeyRepair => 0,
        PlanKind::Localized => 1,
        PlanKind::Monolithic => 2,
    }
}

/// The per-shard metrics registry: fixed histogram arrays, recorded
/// lock-free on the serving paths.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    ops: [Histogram; Op::ALL.len()],
    plans: [Histogram; PLANS.len()],
    stages: [Histogram; Stage::ALL.len()],
    /// Streaming push path: update commit → estimate frame enqueued
    /// (includes the re-estimate's sampling or cache hit).
    push: Histogram,
    /// Estimate frames shed from slow consumers' bounded session queues.
    shed: AtomicU64,
}

impl ShardMetrics {
    /// An empty registry.
    pub fn new() -> ShardMetrics {
        ShardMetrics::default()
    }

    /// Records one operation's total latency.
    pub fn record_op(&self, op: Op, elapsed: Duration) {
        self.ops[op as usize].record(elapsed);
    }

    /// Records an `answer`'s latency under its serving plan.
    pub fn record_plan(&self, plan: PlanKind, elapsed: Duration) {
        self.plans[plan_index(plan)].record(elapsed);
    }

    /// Records one hot-path stage timing.
    pub fn record_stage(&self, stage: Stage, elapsed: Duration) {
        self.stages[stage as usize].record(elapsed);
    }

    /// Records one subscriber push's latency (update commit → frame
    /// enqueued).
    pub fn record_push(&self, elapsed: Duration) {
        self.push.record(elapsed);
    }

    /// Counts one estimate frame shed from a slow consumer's queue.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time snapshot of every histogram. The `subscriptions`
    /// gauge is zero here — the shard stamps its live registry size in
    /// after snapshotting (the registry belongs to the shard, not the
    /// metrics recorder).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            ops: std::array::from_fn(|i| self.ops[i].snapshot()),
            plans: std::array::from_fn(|i| self.plans[i].snapshot()),
            stages: std::array::from_fn(|i| self.stages[i].snapshot()),
            push: self.push.snapshot(),
            shed: self.shed.load(Ordering::Relaxed),
            subscriptions: 0,
            wal_batch: HistSnapshot::default(),
            wal_fsync_us: HistSnapshot::default(),
        }
    }
}

/// One shard's metrics at a point in time — the unit the `metrics`
/// protocol op reports per shard and the route proxy merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Per-operation latency, indexed like [`Op::ALL`].
    pub ops: [HistSnapshot; Op::ALL.len()],
    /// Per-plan `answer` latency, indexed like [`PLANS`].
    pub plans: [HistSnapshot; PLANS.len()],
    /// Per-stage hot-path latency, indexed like [`Stage::ALL`].
    pub stages: [HistSnapshot; Stage::ALL.len()],
    /// Streaming push latency (update commit → estimate frame enqueued).
    pub push: HistSnapshot,
    /// Estimate frames shed from slow consumers' session queues.
    pub shed: u64,
    /// Live subscriptions on the shard at snapshot time. Merging sums,
    /// so a router's `total` counts each shard's gauge exactly once.
    pub subscriptions: u64,
    /// WAL group commit: records covered per batch fsync (raw counts,
    /// not µs). Stamped by the shard from its storage backend; empty on
    /// memory backends and with group commit off.
    pub wal_batch: HistSnapshot,
    /// WAL group commit: batch `sync_data` latency, µs.
    pub wal_fsync_us: HistSnapshot,
}

impl MetricsSnapshot {
    /// Bucket-wise merge of every histogram (associative, commutative).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (a, b) in self.ops.iter_mut().zip(&other.ops) {
            a.merge(b);
        }
        for (a, b) in self.plans.iter_mut().zip(&other.plans) {
            a.merge(b);
        }
        for (a, b) in self.stages.iter_mut().zip(&other.stages) {
            a.merge(b);
        }
        self.push.merge(&other.push);
        self.shed += other.shed;
        self.subscriptions += other.subscriptions;
        self.wal_batch.merge(&other.wal_batch);
        self.wal_fsync_us.merge(&other.wal_fsync_us);
    }

    /// Renders the snapshot's three histogram families. Every op, plan
    /// and stage key is always present (empty histograms included), so
    /// equal snapshots render byte-identically and scrapers see a fixed
    /// schema.
    pub fn to_json(&self) -> Json {
        let family = |labels: &[&'static str], hists: &[HistSnapshot]| {
            Json::Obj(
                labels
                    .iter()
                    .zip(hists)
                    .map(|(label, h)| (label.to_string(), h.to_json()))
                    .collect(),
            )
        };
        let op_labels: Vec<&'static str> = Op::ALL.iter().map(|o| o.as_str()).collect();
        let plan_labels: Vec<&'static str> = PLANS.iter().map(|p| p.as_str()).collect();
        let stage_labels: Vec<&'static str> = Stage::ALL.iter().map(|s| s.as_str()).collect();
        Json::obj([
            ("ops", family(&op_labels, &self.ops)),
            ("plans", family(&plan_labels, &self.plans)),
            ("push", self.push.to_json()),
            ("shed", Json::from(self.shed)),
            ("stages", family(&stage_labels, &self.stages)),
            ("subscriptions", Json::from(self.subscriptions)),
            ("wal_batch", self.wal_batch.to_json()),
            ("wal_fsync_us", self.wal_fsync_us.to_json()),
        ])
    }

    /// Parses the [`to_json`](MetricsSnapshot::to_json) form (strict:
    /// every known op/plan/stage key must be present).
    pub fn from_json(v: &Json) -> Result<MetricsSnapshot, String> {
        fn parse_family<const N: usize>(
            v: &Json,
            family: &str,
            labels: [&'static str; N],
        ) -> Result<[HistSnapshot; N], String> {
            let obj = v
                .get(family)
                .ok_or_else(|| format!("metrics missing {family:?}"))?;
            let mut out = [HistSnapshot::default(); N];
            for (slot, label) in out.iter_mut().zip(labels) {
                let h = obj
                    .get(label)
                    .ok_or_else(|| format!("metrics {family:?} missing {label:?}"))?;
                *slot = HistSnapshot::from_json(h).map_err(|e| format!("{family}.{label}: {e}"))?;
            }
            Ok(out)
        }
        let counter = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("metrics missing {key:?}"))
        };
        let hist = |key: &'static str| -> Result<HistSnapshot, String> {
            HistSnapshot::from_json(
                v.get(key)
                    .ok_or_else(|| format!("metrics missing {key:?}"))?,
            )
            .map_err(|e| format!("{key}: {e}"))
        };
        Ok(MetricsSnapshot {
            ops: parse_family(v, "ops", Op::ALL.map(|o| o.as_str()))?,
            plans: parse_family(v, "plans", PLANS.map(|p| p.as_str()))?,
            stages: parse_family(v, "stages", Stage::ALL.map(|s| s.as_str()))?,
            push: hist("push")?,
            shed: counter("shed")?,
            subscriptions: counter("subscriptions")?,
            wal_batch: hist("wal_batch")?,
            wal_fsync_us: hist("wal_fsync_us")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(seed: u64) -> MetricsSnapshot {
        let m = ShardMetrics::new();
        for k in 0..6u64 {
            let d = Duration::from_micros((seed + 1) * k * 3);
            m.record_op(Op::ALL[(k as usize) % Op::ALL.len()], d);
            m.record_plan(PLANS[(k as usize) % PLANS.len()], d);
            m.record_stage(Stage::ALL[(k as usize) % Stage::ALL.len()], d);
            m.record_push(d);
        }
        m.record_shed();
        let mut snap = m.snapshot();
        snap.subscriptions = seed % 3;
        // Stamp WAL commit stats the way a shard does from its backend.
        let wal = Histogram::new();
        wal.record_value(seed + 4);
        snap.wal_batch = wal.snapshot();
        wal.record(Duration::from_micros(seed * 90));
        snap.wal_fsync_us = wal.snapshot();
        snap
    }

    #[test]
    fn registry_records_into_the_right_families() {
        let m = ShardMetrics::new();
        m.record_op(Op::Answer, Duration::from_micros(10));
        m.record_op(Op::Install, Duration::from_micros(900));
        m.record_plan(PlanKind::KeyRepair, Duration::from_micros(10));
        m.record_stage(Stage::WalAppend, Duration::from_micros(700));
        let s = m.snapshot();
        assert_eq!(s.ops[Op::Answer as usize].count, 1);
        assert_eq!(s.ops[Op::Install as usize].sum_us, 900);
        assert_eq!(s.ops[Op::Drop as usize].count, 0);
        assert_eq!(s.plans[plan_index(PlanKind::KeyRepair)].count, 1);
        assert_eq!(s.plans[plan_index(PlanKind::Monolithic)].count, 0);
        assert_eq!(s.stages[Stage::WalAppend as usize].sum_us, 700);
    }

    #[test]
    fn snapshot_merge_is_associative() {
        let (a, b, c) = (synthetic(2), synthetic(11), synthetic(29));
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);
        assert_eq!(left.to_json().to_string(), right.to_json().to_string());
    }

    #[test]
    fn json_roundtrip_is_exact_and_schema_fixed() {
        let s = synthetic(5);
        let rendered = s.to_json().to_string();
        let parsed = MetricsSnapshot::from_json(&crate::json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(parsed, s);
        assert_eq!(parsed.to_json().to_string(), rendered);
        // Every family key is present even on an empty registry.
        let empty = ShardMetrics::new().snapshot().to_json().to_string();
        for label in [
            "\"answer\"",
            "\"install\"",
            "\"key-repair\"",
            "\"wal_append\"",
            "\"push\"",
            "\"shed\"",
            "\"subscriptions\"",
            "\"wal_batch\"",
            "\"wal_fsync_us\"",
        ] {
            assert!(empty.contains(label), "{label} missing from {empty}");
        }
        // A snapshot with a family key missing is rejected.
        let mut v = crate::json::parse(&rendered).unwrap();
        if let Some(ops) = v.get_mut("ops") {
            ops.remove("answer");
        }
        assert!(MetricsSnapshot::from_json(&v).is_err());
        // Same for the streaming keys.
        let mut v = crate::json::parse(&rendered).unwrap();
        v.remove("shed");
        assert!(MetricsSnapshot::from_json(&v).is_err());
        // And for the WAL group-commit histograms.
        let mut v = crate::json::parse(&rendered).unwrap();
        v.remove("wal_fsync_us");
        assert!(MetricsSnapshot::from_json(&v).is_err());
    }
}
