//! Per-database statistics for the cost-based planner.
//!
//! [`DbStats`] summarizes the conflict structure of one catalog entry —
//! fact count, conflict-component count and size distribution, violating
//! group count, clean-region size — cheaply enough to recompute on every
//! install/update/drop. The [`crate::catalog::Catalog`] keeps a stats
//! value current per entry (it changes exactly when the version bumps),
//! so the cost model never recomputes statistics per request and never
//! needs a sampling snapshot ([`ocqa_core::RepairContext`]) to score a
//! plan: the component structure is derived directly from the maintained
//! violation set with a local union-find over violation body images,
//! mirroring `ocqa_core::localize::conflict_components` without the
//! base-domain construction that a full snapshot pays.

use ocqa_data::{Database, Fact};
use ocqa_logic::{ConstraintSet, ViolationSet};
use std::collections::HashMap;

/// Conflict-structure statistics of one database at one version.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Total fact count `|D|`.
    pub facts: u64,
    /// Facts appearing in at least one violation (the conflict region).
    pub conflict_facts: u64,
    /// Facts in no violation (`facts - conflict_facts`): the clean
    /// region, shared by every repair and never cloned on the localized
    /// path.
    pub clean_facts: u64,
    /// Number of conflict components (violations chained by shared
    /// facts).
    pub components: u64,
    /// Size (in facts) of the largest conflict component.
    pub largest_component: u64,
    /// `Σ size(c)²` over the components — the quadratic mass the
    /// localized plan's per-component walks scale with.
    pub sum_sq_component: u64,
    /// Nearest-rank 95th percentile of the component-size distribution
    /// (0 when there are no components). Together with
    /// [`largest_component`](Self::largest_component) this exposes the
    /// distribution's *tail* to the cost model: the localized plan's
    /// wall-clock is gated by its straggler components, which a
    /// sum-of-squares aggregate hides when one giant component sits
    /// among many small ones.
    pub p95_component: u64,
    /// Number of violations (violating homomorphisms) in `V(D, Σ)`.
    pub violations: u64,
}

impl DbStats {
    /// Computes the statistics for one database state. Cost is
    /// `O(|V| · |body| · α)` — proportional to the violation set, not
    /// the database — plus the `O(1)` fact count.
    pub fn compute(db: &Database, sigma: &ConstraintSet, violations: &ViolationSet) -> DbStats {
        // Union-find over the facts that appear in violations: facts in
        // one violation share a component; components chain through
        // shared facts.
        let mut index: HashMap<Fact, usize> = HashMap::new();
        let mut parent: Vec<usize> = Vec::new();
        let mut size: Vec<u64> = Vec::new();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]]; // path halving
                x = parent[x];
            }
            x
        }
        for violation in violations.iter() {
            let mut prev: Option<usize> = None;
            for fact in violation.body_image(sigma) {
                let next = parent.len();
                let id = *index.entry(fact).or_insert_with(|| {
                    parent.push(next);
                    size.push(1);
                    next
                });
                let root = find(&mut parent, id);
                if let Some(p) = prev {
                    let p_root = find(&mut parent, p);
                    if p_root != root {
                        // Union by size.
                        let (big, small) = if size[p_root] >= size[root] {
                            (p_root, root)
                        } else {
                            (root, p_root)
                        };
                        parent[small] = big;
                        size[big] += size[small];
                        prev = Some(big);
                        continue;
                    }
                }
                prev = Some(root);
            }
        }
        let conflict_facts = index.len() as u64;
        let mut sizes: Vec<u64> = Vec::new();
        let mut largest = 0u64;
        let mut sum_sq = 0u64;
        for x in 0..parent.len() {
            if parent[x] == x {
                largest = largest.max(size[x]);
                sum_sq = sum_sq.saturating_add(size[x].saturating_mul(size[x]));
                sizes.push(size[x]);
            }
        }
        sizes.sort_unstable();
        // Nearest-rank percentile: the ⌈0.95·n⌉-th smallest size.
        let p95 = if sizes.is_empty() {
            0
        } else {
            let rank = (sizes.len() * 95).div_ceil(100);
            sizes[rank - 1]
        };
        let facts = db.len() as u64;
        DbStats {
            facts,
            conflict_facts,
            clean_facts: facts.saturating_sub(conflict_facts),
            components: sizes.len() as u64,
            largest_component: largest,
            sum_sq_component: sum_sq,
            p95_component: p95,
            violations: violations.len() as u64,
        }
    }

    /// The static planner's localization guard, computed from stats
    /// instead of a snapshot: localization is worthwhile unless the
    /// conflict graph is a single component with no clean region (the
    /// component then *is* the database, and the localized path only
    /// adds overlay bookkeeping to the same walk).
    pub fn localize_worthwhile(&self) -> bool {
        self.components != 1 || self.clean_facts > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocqa_logic::parser;

    fn stats(facts: &str, constraints: &str) -> DbStats {
        let facts = parser::parse_facts(facts).unwrap();
        let sigma = parser::parse_constraints(constraints).unwrap();
        let schema = parser::infer_schema(&facts, &sigma).unwrap();
        let db = Database::from_facts(schema, facts).unwrap();
        let violations = ViolationSet::compute(&sigma, &db);
        DbStats::compute(&db, &sigma, &violations)
    }

    #[test]
    fn counts_components_and_clean_region() {
        // Two 2-cycles plus one clean fact under a symmetric DC.
        let s = stats(
            "Pref(a,b). Pref(b,a). Pref(c,d). Pref(d,c). Pref(e,f).",
            "Pref(x,y), Pref(y,x) -> false.",
        );
        assert_eq!(s.facts, 5);
        assert_eq!(s.conflict_facts, 4);
        assert_eq!(s.clean_facts, 1);
        assert_eq!(s.components, 2);
        assert_eq!(s.largest_component, 2);
        assert_eq!(s.sum_sq_component, 8);
        assert_eq!(s.p95_component, 2);
        assert!(s.violations >= 2);
        assert!(s.localize_worthwhile());
    }

    #[test]
    fn giant_component_with_no_clean_region() {
        // The 2-path DC over a 3-cycle chains every fact together.
        let s = stats(
            "Pref(a,b). Pref(b,c). Pref(c,a).",
            "Pref(x,y), Pref(y,z) -> false.",
        );
        assert_eq!(s.components, 1);
        assert_eq!(s.largest_component, 3);
        assert_eq!(s.clean_facts, 0);
        assert!(!s.localize_worthwhile());
        // One clean fact flips the guard.
        let s = stats(
            "Pref(a,b). Pref(b,c). Pref(c,a). Pref(q,r).",
            "Pref(x,y), Pref(y,z) -> false.",
        );
        assert_eq!(s.components, 1);
        assert_eq!(s.clean_facts, 1);
        assert!(s.localize_worthwhile());
    }

    #[test]
    fn consistent_database_has_no_conflict_mass() {
        let s = stats("R(1,10). R(2,20).", "R(x,y), R(x,z) -> y = z.");
        assert_eq!(s.violations, 0);
        assert_eq!(s.components, 0);
        assert_eq!(s.conflict_facts, 0);
        assert_eq!(s.clean_facts, 2);
        assert_eq!(s.sum_sq_component, 0);
        assert_eq!(s.p95_component, 0);
    }

    #[test]
    fn key_groups_form_per_group_components() {
        // Key groups R(1,*) (2 facts) and R(2,*) (3 facts) conflict
        // independently.
        let s = stats(
            "R(1,10). R(1,20). R(2,30). R(2,40). R(2,50). R(3,60).",
            "R(x,y), R(x,z) -> y = z.",
        );
        assert_eq!(s.components, 2);
        assert_eq!(s.largest_component, 3);
        assert_eq!(s.sum_sq_component, 4 + 9);
        assert_eq!(s.p95_component, 3);
        assert_eq!(s.clean_facts, 1);
    }

    #[test]
    fn p95_tracks_the_distribution_tail_not_the_mean() {
        // A single 6-fact straggler among 2-fact groups: whether p95
        // sees it depends on how deep into the tail it sits.
        let mut facts = String::new();
        for k in 0..19 {
            facts.push_str(&format!("R({k},1). R({k},2). "));
        }
        for v in 0..6 {
            facts.push_str(&format!("R(99,{v}). "));
        }
        let s = stats(&facts, "R(x,y), R(x,z) -> y = z.");
        assert_eq!(s.components, 20);
        assert_eq!(s.largest_component, 6);
        // ⌈0.95·20⌉ = 19 → the 19th smallest of [2×19, 6] is 2.
        assert_eq!(s.p95_component, 2);
        // With 10 groups the straggler *is* the p95: ⌈0.95·10⌉ = 10.
        let mut facts = String::new();
        for k in 0..9 {
            facts.push_str(&format!("R({k},1). R({k},2). "));
        }
        for v in 0..6 {
            facts.push_str(&format!("R(99,{v}). "));
        }
        let s = stats(&facts, "R(x,y), R(x,z) -> y = z.");
        assert_eq!(s.components, 10);
        assert_eq!(s.p95_component, 6);
    }

    #[test]
    fn matches_localize_conflict_components() {
        // The stats union-find must agree with the sampler's component
        // computation on component count and sizes.
        for (facts, sigma) in [
            (
                "Pref(a,b). Pref(b,c). Pref(c,a). Pref(d,e). Pref(e,f). Pref(f,d). Pref(q,r).",
                "Pref(x,y), Pref(y,z) -> false.",
            ),
            (
                "R(1,10). R(1,20). R(2,30). R(2,40). R(2,50). R(3,60).",
                "R(x,y), R(x,z) -> y = z.",
            ),
        ] {
            let parsed_facts = parser::parse_facts(facts).unwrap();
            let parsed_sigma = parser::parse_constraints(sigma).unwrap();
            let schema = parser::infer_schema(&parsed_facts, &parsed_sigma).unwrap();
            let db = Database::from_facts(schema, parsed_facts).unwrap();
            let ctx = ocqa_core::RepairContext::new(db.clone(), parsed_sigma.clone());
            let parts = ocqa_core::localize::conflict_components(&ctx);
            let violations = ViolationSet::compute(&parsed_sigma, &db);
            let s = DbStats::compute(&db, &parsed_sigma, &violations);
            assert_eq!(s.components as usize, parts.components.len(), "{facts}");
            assert_eq!(s.clean_facts as usize, parts.clean.len(), "{facts}");
            let mut sizes: Vec<u64> = parts.components.iter().map(|c| c.len() as u64).collect();
            sizes.sort_unstable();
            assert_eq!(
                s.sum_sq_component,
                sizes.iter().map(|n| n * n).sum::<u64>(),
                "{facts}"
            );
            assert_eq!(s.largest_component, sizes.last().copied().unwrap_or(0));
        }
    }
}
