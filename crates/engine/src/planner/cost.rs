//! The cost model behind planner v2: score every *sound* plan for a
//! request and pick the cheapest.
//!
//! Structural soundness (key cover, denial fragment, component-local
//! generators) stays a hard **feasibility gate** — the model only ranks
//! plans whose answers are interchangeable, so whatever it picks, the
//! served estimates stay exactly as correct as v1's. Ranking uses three
//! signal tiers, best available first:
//!
//! 1. **learned** — exponentially decayed per-(database, plan) sampling
//!    cost (µs of the `sample` stage), recorded post-hoc by the shard
//!    after every leader run and journaled into the store so restarts
//!    resume them;
//! 2. **metrics** — the shard's global per-plan latency histograms
//!    ([`crate::obs::ShardMetrics`], the PR 6 feed — no new counters),
//!    used when this database has no learned estimate for the plan;
//! 3. **prior** — analytic step counts from the catalog-maintained
//!    [`DbStats`], calibrated into µs by the best learned estimate when
//!    one exists (calibration is order-preserving, so priors never flip
//!    under wall-clock noise alone).
//!
//! The answer-cache hit/dominance rate adds switch hysteresis: when the
//! cache is hot, non-incumbent plans pay a small penalty (a plan switch
//! re-keys every cached answer), so near-ties don't thrash the cache.
//!
//! Decisions are memoized per (database version × feasibility set): the
//! model re-evaluates exactly when the catalog version bumps, never
//! mid-version — cached answers for a version always share one plan.

use super::stats::DbStats;
use super::{DbPlan, PlanKind};
use crate::obs::HistSnapshot;
use ocqa_core::ChainGenerator;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// How the engine resolves automatic (non-overridden) answer plans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PlannerMode {
    /// Pin every automatic answer to the monolithic walk.
    Off,
    /// The v1 structural classifier (install-time shape + the
    /// single-giant-component guard). Kept reachable for A/B.
    Static,
    /// The cost model (the default).
    #[default]
    Cost,
}

impl PlannerMode {
    /// The CLI / protocol label.
    pub fn as_str(self) -> &'static str {
        match self {
            PlannerMode::Off => "off",
            PlannerMode::Static => "static",
            PlannerMode::Cost => "cost",
        }
    }

    /// Parses a mode name. `"on"` is accepted as an alias for `"cost"`
    /// (the pre-v2 `--planner on` spelling).
    pub fn parse(s: &str) -> Option<PlannerMode> {
        match s {
            "off" => Some(PlannerMode::Off),
            "static" => Some(PlannerMode::Static),
            "cost" | "on" => Some(PlannerMode::Cost),
            _ => None,
        }
    }
}

/// One exponentially decayed per-(database, plan) cost estimate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Estimate {
    /// Decayed mean of the observed `sample`-stage cost, µs (0 = none).
    pub ewma_us: u64,
    /// Observations folded in (the decay makes old ones fade; this
    /// counts them all).
    pub samples: u64,
}

/// Where a candidate's cost number came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostSource {
    /// Analytic steps from [`DbStats`] (possibly µs-calibrated).
    Prior,
    /// The shard's global per-plan latency histogram mean.
    Metrics,
    /// This database's decayed per-plan estimate.
    Learned,
}

impl CostSource {
    /// The protocol label.
    pub fn as_str(self) -> &'static str {
        match self {
            CostSource::Prior => "prior",
            CostSource::Metrics => "metrics",
            CostSource::Learned => "learned",
        }
    }
}

/// One plan's verdict in an `explain` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The plan under consideration.
    pub plan: PlanKind,
    /// Whether the structural gates admit it for this database ×
    /// generator.
    pub feasible: bool,
    /// The gate that rejected it (`None` when feasible).
    pub gate: Option<&'static str>,
    /// The model's cost estimate (abstract units or µs, comparable
    /// within one response).
    pub cost: u64,
    /// Which signal tier produced `cost`.
    pub source: CostSource,
}

/// Plans in registry order (mirrors [`crate::obs::PLANS`]).
const ORDER: [PlanKind; 3] = [
    PlanKind::KeyRepair,
    PlanKind::Localized,
    PlanKind::Monolithic,
];

fn idx(plan: PlanKind) -> usize {
    match plan {
        PlanKind::KeyRepair => 0,
        PlanKind::Localized => 1,
        PlanKind::Monolithic => 2,
    }
}

/// The structural feasibility gate for one plan, shared by the cost
/// model, the `explain` op, and [`DbPlan::route`]'s override validation.
/// Returns the gate label that rejects the plan, if any.
pub fn feasibility_gate(
    plan: PlanKind,
    db_plan: &DbPlan,
    gen: &dyn ChainGenerator,
) -> Option<&'static str> {
    match plan {
        PlanKind::Monolithic => None,
        PlanKind::Localized => {
            if !gen.component_local() {
                Some(GATE_COMPONENT_LOCAL)
            } else if !db_plan.admits_localized() {
                Some(GATE_DENIAL_FRAGMENT)
            } else {
                None
            }
        }
        PlanKind::KeyRepair => {
            if !gen.component_local() {
                Some(GATE_COMPONENT_LOCAL)
            } else if gen.key_repair_policy().is_none() {
                Some(GATE_GROUP_POLICY)
            } else if !db_plan.admits_key_repair() {
                Some(GATE_KEY_COVER)
            } else {
                None
            }
        }
    }
}

/// Gate label: the generator is not component-local.
pub const GATE_COMPONENT_LOCAL: &str = "component-local";
/// Gate label: the generator has no key-repair group policy.
pub const GATE_GROUP_POLICY: &str = "group-policy";
/// Gate label: the constraints are not primary-key-only.
pub const GATE_KEY_COVER: &str = "key-cover";
/// Gate label: the constraints are not in the denial fragment.
pub const GATE_DENIAL_FRAGMENT: &str = "denial-fragment";

/// Analytic per-request step counts `[key-repair, localized,
/// monolithic]` from the catalog-maintained statistics. Integer-only so
/// the priors — and with them zero-feedback `explain` responses — are
/// bit-deterministic across deployments.
///
/// * monolithic walks a `(violations+1)`-step chain cloning the whole
///   database per step: `(V+1)·|D|`;
/// * localized walks each component in its own Σ-sized space
///   (`Σ V·s²/|conflict|` ≈ per-component chains) plus a **straggler
///   term** from the component-size distribution's tail
///   (`V·max·p95/|conflict|`, halved): per-component walks finish when
///   the *largest* components do, and the sum-of-squares mass alone
///   cannot tell a flat distribution from one giant among many small —
///   plus the overlay compose over the conflict region, all times a 9/8
///   bookkeeping factor. The tail term is what tips a skewed
///   distribution (and a fortiori a single giant component) back to
///   monolithic even when a clean region keeps the static guard away;
/// * key-repair draws one outcome per violating group: `V+1`.
fn analytic_steps(stats: &DbStats) -> [u64; 3] {
    let v = stats.violations;
    let key_repair = v.saturating_add(1);
    let monolithic = v.saturating_add(1).saturating_mul(stats.facts.max(1));
    let conflict = stats.conflict_facts.max(1);
    let per_component = v.saturating_mul(stats.sum_sq_component) / conflict;
    let straggler =
        v.saturating_mul(stats.largest_component.saturating_mul(stats.p95_component)) / conflict;
    let localized = per_component
        .saturating_add(straggler / 2)
        .saturating_add(stats.conflict_facts)
        .saturating_add(2)
        .saturating_mul(9)
        / 8;
    [key_repair.max(1), localized.max(1), monolithic.max(1)]
}

/// Cache hit rate (hits + dominance hits, permille) above which the
/// switch-hysteresis penalty applies.
const HYSTERESIS_PERMILLE: u64 = 250;

/// Journal cadence: the shard persists the model every this many leader
/// observations.
pub const FEEDBACK_JOURNAL_EVERY: u64 = 8;

#[derive(Debug, Clone, Copy)]
struct Decision {
    version: u64,
    /// Feasibility bitmask (bit `idx(plan)`): a generator change that
    /// alters the feasible set re-decides even within a version.
    mask: u8,
    choice: PlanKind,
}

/// The per-shard cost model: learned estimates plus memoized decisions.
#[derive(Debug, Default)]
pub struct CostModel {
    learned: Mutex<HashMap<String, [Estimate; 3]>>,
    decisions: Mutex<HashMap<String, Decision>>,
    observations: AtomicU64,
}

impl CostModel {
    /// An empty model (cold priors).
    pub fn new() -> CostModel {
        CostModel::default()
    }

    /// Seeds learned estimates recovered from the store, so a restarted
    /// shard resumes where it left off instead of re-learning.
    pub fn restore(&self, estimates: impl IntoIterator<Item = (String, [Estimate; 3])>) {
        let mut learned = self.learned.lock();
        for (db, ests) in estimates {
            learned.insert(db, ests);
        }
    }

    /// Folds one post-hoc observation (the leader's `sample`-stage µs
    /// for `plan` on `db`) into the decayed estimate (α = 0.3). Returns
    /// the model's total observation count — the shard journals the
    /// model every [`FEEDBACK_JOURNAL_EVERY`] of these.
    pub fn observe(&self, db: &str, plan: PlanKind, sample_us: u64) -> u64 {
        let mut learned = self.learned.lock();
        let est = &mut learned.entry(db.to_string()).or_default()[idx(plan)];
        est.ewma_us = if est.samples == 0 {
            sample_us
        } else {
            (sample_us.saturating_mul(3)).saturating_add(est.ewma_us.saturating_mul(7)) / 10
        }
        .max(1);
        est.samples = est.samples.saturating_add(1);
        drop(learned);
        self.observations.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// This database's learned estimates (zeros when none).
    pub fn estimates(&self, db: &str) -> [Estimate; 3] {
        self.learned.lock().get(db).copied().unwrap_or_default()
    }

    /// The plan the model last decided for `db`, if any.
    pub fn incumbent(&self, db: &str) -> Option<PlanKind> {
        self.decisions.lock().get(db).map(|d| d.choice)
    }

    /// Drops everything learned about `db` (a dropped database's
    /// estimates must not leak onto a future namesake holding different
    /// data).
    pub fn forget_db(&self, db: &str) {
        self.learned.lock().remove(db);
        self.decisions.lock().remove(db);
    }

    /// The full learned state, sorted by database name (the journaled
    /// feedback image — sorting keeps the on-disk bytes deterministic).
    pub fn export(&self) -> Vec<(String, [Estimate; 3])> {
        let mut out: Vec<(String, [Estimate; 3])> = self
            .learned
            .lock()
            .iter()
            .map(|(db, e)| (db.clone(), *e))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Scores all three plans for one request. `plan_hists` is the
    /// shard's per-plan latency snapshot in registry order;
    /// `hit_rate_permille` the answer-cache hit+dominance rate feeding
    /// the hysteresis penalty.
    #[allow(clippy::too_many_arguments)]
    pub fn candidates(
        &self,
        db: &str,
        db_plan: &DbPlan,
        gen: &dyn ChainGenerator,
        stats: &DbStats,
        plan_hists: &[HistSnapshot; 3],
        incumbent: Option<PlanKind>,
        hit_rate_permille: u64,
    ) -> [Candidate; 3] {
        let steps = analytic_steps(stats);
        let learned = self.estimates(db);
        // µs-per-step calibration for prior-tier candidates: the most
        // sampled learned estimate wins, falling back to the busiest
        // global plan histogram. A pure ratio, so calibrating never
        // reorders priors among themselves.
        let calibration: Option<(u64, u64)> = ORDER
            .iter()
            .filter(|p| learned[idx(**p)].samples > 0)
            .max_by_key(|p| learned[idx(**p)].samples)
            .map(|p| (learned[idx(*p)].ewma_us, steps[idx(*p)]))
            .or_else(|| {
                ORDER
                    .iter()
                    .filter(|p| plan_hists[idx(**p)].count > 0)
                    .max_by_key(|p| plan_hists[idx(**p)].count)
                    .map(|p| {
                        let h = &plan_hists[idx(*p)];
                        ((h.sum_us / h.count).max(1), steps[idx(*p)])
                    })
            });
        ORDER.map(|plan| {
            let i = idx(plan);
            let gate = feasibility_gate(plan, db_plan, gen);
            let hist_mean = plan_hists[i].sum_us.checked_div(plan_hists[i].count);
            let (cost, source) = if learned[i].samples > 0 {
                (learned[i].ewma_us, CostSource::Learned)
            } else if let Some(mean) = hist_mean {
                (mean.max(1), CostSource::Metrics)
            } else {
                let cost = match calibration {
                    Some((us, ref_steps)) => steps[i].saturating_mul(us) / ref_steps.max(1),
                    None => steps[i],
                };
                (cost.max(1), CostSource::Prior)
            };
            // Switch hysteresis: with a hot cache, leaving the incumbent
            // re-keys every cached answer — make challengers beat it by
            // a margin, not a hair.
            let cost = match incumbent {
                Some(inc) if plan != inc && hit_rate_permille >= HYSTERESIS_PERMILLE => {
                    cost.saturating_add(cost / 16)
                }
                _ => cost,
            };
            Candidate {
                plan,
                feasible: gate.is_none(),
                gate,
                cost,
                source,
            }
        })
    }

    /// Resolves the plan for one automatic answer: cheapest feasible
    /// candidate, memoized per (version, feasibility set) — the choice
    /// is re-evaluated exactly when the catalog version bumps (or the
    /// generator's capabilities change the feasible set), so every
    /// cached answer for a version shares one plan. `inputs` supplies
    /// the runtime signals (per-plan histograms, cache hit rate) and is
    /// only called on a re-decision.
    pub fn choose(
        &self,
        db: &str,
        version: u64,
        db_plan: &DbPlan,
        gen: &dyn ChainGenerator,
        stats: &DbStats,
        inputs: impl FnOnce() -> ([HistSnapshot; 3], u64),
    ) -> PlanKind {
        let mut mask = 0u8;
        for plan in ORDER {
            if feasibility_gate(plan, db_plan, gen).is_none() {
                mask |= 1 << idx(plan);
            }
        }
        let incumbent = {
            let decisions = self.decisions.lock();
            match decisions.get(db) {
                Some(d) if d.version == version && d.mask == mask => return d.choice,
                Some(d) => Some(d.choice),
                None => None,
            }
        };
        let (plan_hists, hit_rate) = inputs();
        let candidates = self.candidates(db, db_plan, gen, stats, &plan_hists, incumbent, hit_rate);
        let mut choice = PlanKind::Monolithic;
        let mut best = u64::MAX;
        for c in candidates {
            if c.feasible && c.cost < best {
                best = c.cost;
                choice = c.plan;
            }
        }
        self.decisions.lock().insert(
            db.to_string(),
            Decision {
                version,
                mask,
                choice,
            },
        );
        choice
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocqa_core::RepairContext;
    use ocqa_data::Database;
    use ocqa_logic::parser;
    use std::sync::Arc;

    fn db_plan(facts: &str, constraints: &str) -> (DbPlan, DbStats) {
        let facts = parser::parse_facts(facts).unwrap();
        let sigma = parser::parse_constraints(constraints).unwrap();
        let schema = parser::infer_schema(&facts, &sigma).unwrap();
        let db = Database::from_facts(schema, facts).unwrap();
        let ctx = RepairContext::new(db, sigma);
        let plan = DbPlan::build(&ctx);
        let stats = plan.stats();
        (plan, stats)
    }

    fn uniform() -> Arc<dyn ChainGenerator> {
        crate::engine::generator_by_name("uniform").unwrap()
    }

    fn empty_hists() -> [HistSnapshot; 3] {
        [HistSnapshot::default(); 3]
    }

    #[test]
    fn mode_names_round_trip() {
        for mode in [PlannerMode::Off, PlannerMode::Static, PlannerMode::Cost] {
            assert_eq!(PlannerMode::parse(mode.as_str()), Some(mode));
        }
        assert_eq!(PlannerMode::parse("on"), Some(PlannerMode::Cost));
        assert_eq!(PlannerMode::parse("turbo"), None);
        assert_eq!(PlannerMode::default(), PlannerMode::Cost);
    }

    #[test]
    fn cold_priors_reproduce_static_choices() {
        let model = CostModel::new();
        let gen = uniform();
        // Key-only database: key-repair wins.
        let (plan, stats) = db_plan(
            "R(1,10). R(1,20). R(2,30). R(2,40). R(3,50).",
            "R(x,y), R(x,z) -> y = z.",
        );
        assert_eq!(
            model.choose("kv", 1, &plan, gen.as_ref(), &stats, || (empty_hists(), 0)),
            PlanKind::KeyRepair
        );
        // Multi-component DC: localized wins.
        let (plan, stats) = db_plan(
            "Pref(a,b). Pref(b,a). Pref(c,d). Pref(d,c). Pref(e,f).",
            "Pref(x,y), Pref(y,x) -> false.",
        );
        assert_eq!(
            model.choose("prefs", 1, &plan, gen.as_ref(), &stats, || (
                empty_hists(),
                0
            )),
            PlanKind::Localized
        );
        // Single giant component, no clean region: monolithic (the
        // static guard case, reproduced by the priors).
        let (plan, stats) = db_plan(
            "Pref(a,b). Pref(b,c). Pref(c,a).",
            "Pref(x,y), Pref(y,z) -> false.",
        );
        assert_eq!(
            model.choose("giant", 1, &plan, gen.as_ref(), &stats, || (
                empty_hists(),
                0
            )),
            PlanKind::Monolithic
        );
        // Non-component-local generator: only monolithic is feasible.
        let (plan, stats) = db_plan(
            "Pref(a,b). Pref(b,a). Pref(c,d). Pref(d,c).",
            "Pref(x,y), Pref(y,x) -> false.",
        );
        let pref = crate::engine::generator_by_name("preference").unwrap();
        assert_eq!(
            model.choose("p2", 1, &plan, pref.as_ref(), &stats, || (empty_hists(), 0)),
            PlanKind::Monolithic
        );
    }

    #[test]
    fn giant_component_with_clean_region_flips_only_under_cost() {
        // A 12-cycle under the 2-path DC plus one clean fact: the static
        // guard keeps localizing (clean region non-empty), but the
        // priors see one giant component ≈ the whole database and flip
        // to monolithic — the drift case the classifier cannot make.
        let cycle: String = (0..12)
            .map(|i| format!("Pref(n{},n{}). ", i, (i + 1) % 12))
            .collect::<String>()
            + "Pref(q,r).";
        let (plan, stats) = db_plan(&cycle, "Pref(x,y), Pref(y,z) -> false.");
        assert!(
            stats.localize_worthwhile(),
            "static guard would keep localized"
        );
        assert_eq!(
            plan.route(uniform().as_ref(), None).unwrap(),
            PlanKind::Localized,
            "static routing stays localized"
        );
        let model = CostModel::new();
        assert_eq!(
            model.choose("drift", 2, &plan, uniform().as_ref(), &stats, || (
                empty_hists(),
                0
            )),
            PlanKind::Monolithic,
            "cost model flips to monolithic"
        );
    }

    #[test]
    fn skewed_component_distribution_shifts_localized_vs_monolithic() {
        // Two fabricated stats with identical totals and identical
        // quadratic mass — only the distribution tail (largest / p95)
        // differs — to isolate the straggler term: the heavy tail must
        // price localized above monolithic, the flat one below.
        let flat = DbStats {
            facts: 18,
            conflict_facts: 16,
            clean_facts: 2,
            components: 2,
            largest_component: 5,
            sum_sq_component: 200,
            p95_component: 5,
            violations: 24,
        };
        let heavy = DbStats {
            largest_component: 14,
            p95_component: 14,
            ..flat
        };
        let f = analytic_steps(&flat);
        let h = analytic_steps(&heavy);
        assert_eq!(f[2], h[2], "monolithic prior ignores the distribution");
        assert!(h[1] > f[1], "heavier tail raises the localized prior");
        assert!(f[1] < f[2], "flat distribution keeps localized cheaper");
        assert!(h[1] > h[2], "heavy tail prices localized above monolithic");
    }

    #[test]
    fn learned_estimates_override_priors() {
        let (plan, stats) = db_plan(
            "Pref(a,b). Pref(b,a). Pref(c,d). Pref(d,c). Pref(e,f).",
            "Pref(x,y), Pref(y,x) -> false.",
        );
        let model = CostModel::new();
        let gen = uniform();
        assert_eq!(
            model.choose("db", 1, &plan, gen.as_ref(), &stats, || (empty_hists(), 0)),
            PlanKind::Localized
        );
        // Observed reality disagrees with the priors: localized is slow
        // here, monolithic fast. Two independent µs signals can reorder.
        for _ in 0..4 {
            model.observe("db", PlanKind::Localized, 50_000);
            model.observe("db", PlanKind::Monolithic, 800);
        }
        // Memoized within the version…
        assert_eq!(
            model.choose("db", 1, &plan, gen.as_ref(), &stats, || (empty_hists(), 0)),
            PlanKind::Localized,
            "decision is stable within a version"
        );
        // …and re-evaluated when it bumps.
        assert_eq!(
            model.choose("db", 2, &plan, gen.as_ref(), &stats, || (empty_hists(), 0)),
            PlanKind::Monolithic,
            "version bump re-decides from feedback"
        );
        let ests = model.estimates("db");
        assert!(ests[idx(PlanKind::Localized)].ewma_us > ests[idx(PlanKind::Monolithic)].ewma_us);
        assert_eq!(ests[idx(PlanKind::Localized)].samples, 4);
    }

    #[test]
    fn ewma_decays_toward_recent_observations() {
        let model = CostModel::new();
        model.observe("db", PlanKind::Monolithic, 10_000);
        for _ in 0..20 {
            model.observe("db", PlanKind::Monolithic, 100);
        }
        let e = model.estimates("db")[idx(PlanKind::Monolithic)];
        assert!(e.ewma_us < 200, "old spike must fade, got {}", e.ewma_us);
        assert_eq!(e.samples, 21);
    }

    #[test]
    fn hysteresis_holds_near_ties_with_a_hot_cache() {
        let (plan, stats) = db_plan(
            "Pref(a,b). Pref(b,a). Pref(c,d). Pref(d,c). Pref(e,f).",
            "Pref(x,y), Pref(y,x) -> false.",
        );
        let model = CostModel::new();
        let gen = uniform();
        assert_eq!(
            model.choose("db", 1, &plan, gen.as_ref(), &stats, || (empty_hists(), 0)),
            PlanKind::Localized
        );
        // A challenger that is only a hair cheaper (learned 97 vs 100)…
        model.observe("db", PlanKind::Localized, 100);
        model.observe("db", PlanKind::Monolithic, 97);
        // …does not displace a hot-cache incumbent (penalty 97+97/16 >
        // 100)…
        assert_eq!(
            model.choose("db", 2, &plan, gen.as_ref(), &stats, || (
                empty_hists(),
                900
            )),
            PlanKind::Localized,
            "hot cache holds the incumbent through near-ties"
        );
        // …but a cold cache lets the cheaper plan through.
        let cold = CostModel::new();
        cold.observe("db", PlanKind::Localized, 100);
        cold.observe("db", PlanKind::Monolithic, 97);
        assert_eq!(
            cold.choose("db", 2, &plan, gen.as_ref(), &stats, || (empty_hists(), 0)),
            PlanKind::Monolithic
        );
    }

    #[test]
    fn export_restore_round_trips_sorted() {
        let model = CostModel::new();
        model.observe("zeta", PlanKind::Monolithic, 500);
        model.observe("alpha", PlanKind::KeyRepair, 30);
        let exported = model.export();
        assert_eq!(exported.len(), 2);
        assert_eq!(exported[0].0, "alpha", "export is name-sorted");
        let recovered = CostModel::new();
        recovered.restore(exported.clone());
        assert_eq!(recovered.export(), exported);
        assert_eq!(
            recovered.estimates("alpha")[idx(PlanKind::KeyRepair)].ewma_us,
            30
        );
    }

    #[test]
    fn forget_db_clears_learned_state() {
        let model = CostModel::new();
        model.observe("db", PlanKind::Monolithic, 500);
        model.forget_db("db");
        assert_eq!(model.estimates("db"), [Estimate::default(); 3]);
        assert_eq!(model.incumbent("db"), None);
    }

    #[test]
    fn candidates_report_gates_and_sources() {
        let (plan, stats) = db_plan(
            "Pref(a,b). Pref(b,a). Pref(c,d). Pref(d,c).",
            "Pref(x,y), Pref(y,x) -> false.",
        );
        let model = CostModel::new();
        let cands = model.candidates(
            "db",
            &plan,
            uniform().as_ref(),
            &stats,
            &empty_hists(),
            None,
            0,
        );
        assert_eq!(cands[0].plan, PlanKind::KeyRepair);
        assert!(!cands[0].feasible);
        assert_eq!(cands[0].gate, Some(GATE_KEY_COVER));
        assert!(cands[1].feasible && cands[2].feasible);
        assert!(cands.iter().all(|c| c.source == CostSource::Prior));
        // A learned observation upgrades that plan's source.
        model.observe("db", PlanKind::Localized, 777);
        let cands = model.candidates(
            "db",
            &plan,
            uniform().as_ref(),
            &stats,
            &empty_hists(),
            None,
            0,
        );
        assert_eq!(cands[1].source, CostSource::Learned);
        assert_eq!(cands[1].cost, 777);
        // Calibration scales the others' priors but keeps their order.
        assert_eq!(cands[2].source, CostSource::Prior);
        assert!(cands[2].cost > cands[1].cost);
    }
}
