//! The answer planner: classify each catalog database once, route every
//! `answer` request down the cheapest *sound* sampling path.
//!
//! The paper's §6 optimizations exist in `ocqa_core` (`localize`,
//! `keyrepair`); this module is the policy layer that applies them
//! automatically, per database:
//!
//! * **key-repair** — the constraint set is primary-key-only
//!   ([`ConstraintSet::key_cover`]). Violating groups are sampled directly
//!   with the [`GroupPolicy::ChainUniform`] outcome distribution, which
//!   reproduces the uniform chain's hitting distribution exactly — no
//!   chain walk, no state cloning, one group draw per conflict group.
//! * **localized** — the constraint set is in the denial fragment. Each
//!   conflict component is walked independently in its Σ-sized state
//!   space ([`ComponentSampler`]) instead of the Π-sized global one, and
//!   per-walk repairs compose as `D − deletions` under an overlay.
//! * **monolithic** — everything else (TGDs present), or any generator
//!   that is not component-local: the full chain walk of PR 1.
//!
//! Classification is structural (a function of `Σ` alone) and happens at
//! install time; the data-dependent plan artifacts (component
//! sub-contexts, violating groups) are rebuilt lazily per database
//! version, exactly like the sampling snapshot. The effective route also
//! depends on the request's generator: only generators declaring
//! [`ChainGenerator::component_local`] (`uniform`, `uniform-deletions`)
//! may take the fast paths, so e.g. the Example 4 preference generator —
//! whose weights read the whole database — always serves monolithically.
//!
//! Since planner v2, structural soundness is only the *feasibility* half
//! of plan choice: among the feasible plans, [`cost::CostModel`] ranks
//! candidates from catalog-maintained [`stats::DbStats`] plus recorded
//! runtime feedback, and the shard serves the cheapest. This module
//! keeps the v1 classifier and routing (reachable as `--planner static`
//! and used for explicit plan overrides); [`stats`] and [`cost`] hold
//! the v2 layers.

pub mod cost;
pub mod stats;

pub use cost::{
    feasibility_gate, Candidate, CostModel, CostSource, Estimate, PlannerMode,
    FEEDBACK_JOURNAL_EVERY,
};
pub use stats::DbStats;

use crate::error::EngineError;
use ocqa_core::keyrepair::{GroupPolicy, KeyConfig, KeyRepairSampler};
use ocqa_core::localize::ComponentSampler;
use ocqa_core::sample::{self, SampleTally};
use ocqa_core::{ChainGenerator, RepairContext};
use ocqa_logic::{ConstraintSet, Query};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::sync::Arc;

/// The serving strategies an `answer` request can be routed down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanKind {
    /// Group-wise key repair (§5 scheme, chain-equivalent policy).
    KeyRepair,
    /// Per-component chain walks composed under a deletion overlay.
    Localized,
    /// The full-database chain walk.
    Monolithic,
}

impl PlanKind {
    /// The protocol name of the plan.
    pub fn as_str(self) -> &'static str {
        match self {
            PlanKind::KeyRepair => "key-repair",
            PlanKind::Localized => "localized",
            PlanKind::Monolithic => "monolithic",
        }
    }

    /// Parses a protocol plan name (the inverse of [`as_str`]).
    ///
    /// [`as_str`]: PlanKind::as_str
    pub fn parse(s: &str) -> Option<PlanKind> {
        match s {
            "key-repair" => Some(PlanKind::KeyRepair),
            "localized" => Some(PlanKind::Localized),
            "monolithic" => Some(PlanKind::Monolithic),
            _ => None,
        }
    }
}

impl fmt::Display for PlanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Structural classification of a constraint set — the plan a database
/// with these constraints will serve component-local generators with.
/// A function of `Σ` alone, so it is computed once at install time.
pub fn classify(sigma: &ConstraintSet) -> PlanKind {
    if sigma.key_cover().is_some() {
        PlanKind::KeyRepair
    } else if sigma.is_denial_fragment() {
        PlanKind::Localized
    } else {
        PlanKind::Monolithic
    }
}

/// The prebuilt key-repair execution state for one database version.
pub struct KeyRepairExec {
    ctx: Arc<RepairContext>,
    sampler: KeyRepairSampler,
}

/// A database's answer plan for one version: the structural
/// classification plus the samplers backing the fast paths. Cached per
/// catalog entry and rebuilt after every effective update, like the
/// sampling snapshot.
///
/// Classification is computed up front (it is a cheap function of `Σ`);
/// the data-dependent sampler artifacts — conflict-component
/// sub-contexts, violating key groups with their exact outcome
/// distributions — are built lazily, memoized per route, the first time
/// a request actually takes that route. A monolithic-only workload (the
/// planner disabled, or non-component-local generators) therefore never
/// pays for them, however often the database is updated.
pub struct DbPlan {
    kind: PlanKind,
    /// Whether `Σ` is in the denial fragment — the `localized` route is
    /// available (key-only sets included, so forcing `localized` on a
    /// keyed database works too).
    denial: bool,
    /// The key configurations when `Σ` is primary-key-only (possibly
    /// empty: the empty constraint set is trivially key-only).
    key_configs: Option<Vec<KeyConfig>>,
    /// The snapshot the lazily built samplers read from.
    ctx: Arc<RepairContext>,
    /// Conflict-structure statistics of this snapshot (catalog-maintained;
    /// recomputed here only when a plan is built outside a catalog).
    stats: DbStats,
    /// Memoized localized sampler (built on first localized route).
    localized: Mutex<Option<Arc<ComponentSampler>>>,
    /// Memoized key-repair state, one entry per distinct group policy
    /// (different generators may carry different policies; the list stays
    /// as short as the set of policies actually served).
    key: Mutex<Vec<(GroupPolicy, Arc<KeyRepairExec>)>>,
}

impl fmt::Debug for DbPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DbPlan({}, components={:?}, key_policies={})",
            self.kind,
            self.localized.lock().as_ref().map(|s| s.components()),
            self.key.lock().len(),
        )
    }
}

impl DbPlan {
    /// Builds the plan for one database snapshot, computing the conflict
    /// statistics from the snapshot's own violation set. Catalog entries
    /// use [`DbPlan::build_with_stats`] with their maintained stats
    /// instead of recomputing here.
    pub fn build(ctx: &Arc<RepairContext>) -> DbPlan {
        let stats = DbStats::compute(ctx.d0(), ctx.sigma(), ctx.initial_violations());
        DbPlan::build_with_stats(ctx, stats)
    }

    /// Builds the plan for one database snapshot (classification only —
    /// sampler artifacts are deferred to the first use of each route).
    /// `stats` must describe exactly the snapshot's database state.
    pub fn build_with_stats(ctx: &Arc<RepairContext>, stats: DbStats) -> DbPlan {
        let key_configs = ctx.sigma().key_cover().map(|specs| {
            specs
                .iter()
                .map(|s| KeyConfig {
                    relation: s.relation,
                    key_cols: s.key_cols.clone(),
                })
                .collect::<Vec<_>>()
        });
        let denial = ctx.sigma().is_denial_fragment();
        let kind = if key_configs.is_some() {
            PlanKind::KeyRepair
        } else if denial {
            PlanKind::Localized
        } else {
            PlanKind::Monolithic
        };
        debug_assert_eq!(kind, classify(ctx.sigma()));
        DbPlan {
            kind,
            denial,
            key_configs,
            ctx: ctx.clone(),
            stats,
            localized: Mutex::new(None),
            key: Mutex::new(Vec::new()),
        }
    }

    /// The conflict-structure statistics of the snapshot this plan was
    /// built for.
    pub fn stats(&self) -> DbStats {
        self.stats
    }

    /// Whether the localized route is structurally available (`Σ` in the
    /// denial fragment — key-only sets included).
    pub fn admits_localized(&self) -> bool {
        self.denial
    }

    /// Whether the key-repair route is structurally available (`Σ`
    /// primary-key-only).
    pub fn admits_key_repair(&self) -> bool {
        self.key_configs.is_some()
    }

    /// The cost-model guard behind automatic `localized` routing: per-walk,
    /// localization wins by (a) walking Σ-sized component chains instead of
    /// the Π-sized global one and (b) cloning component sub-databases
    /// instead of the whole database. When the conflict graph collapses
    /// into a **single component with no clean region**, both advantages
    /// vanish — the one component *is* the whole database — and the
    /// localized path only adds overlay bookkeeping on top of the same
    /// walk. Automatic routing then falls back to monolithic; an explicit
    /// `plan:"localized"` request is still honored (benchmarks and tests
    /// force routes deliberately).
    ///
    /// Since planner v2 the verdict reads the catalog-maintained
    /// [`DbStats`] (component count, clean-region size) instead of
    /// materializing the conflict components per snapshot.
    fn localize_worthwhile(&self) -> bool {
        self.stats.localize_worthwhile()
    }

    /// The structural classification.
    pub fn kind(&self) -> PlanKind {
        self.kind
    }

    /// Resolves the route an `answer` request takes. `requested` is the
    /// client's explicit plan choice (`None` = automatic): automatic
    /// routing silently falls back to monolithic for generators a fast
    /// path cannot serve, while an explicit request for an unsound route
    /// is an error (clients forcing a plan — benches, tests — must know).
    ///
    /// Fast-path soundness is read off the generator itself
    /// ([`ChainGenerator::component_local`] for localization,
    /// [`ChainGenerator::key_repair_policy`] for key repair), so new
    /// generators carry their capabilities with them instead of this
    /// module keeping a name list in sync.
    pub fn route(
        &self,
        gen: &dyn ChainGenerator,
        requested: Option<PlanKind>,
    ) -> Result<PlanKind, EngineError> {
        match requested {
            None => {
                let auto = if !gen.component_local() {
                    PlanKind::Monolithic
                } else if self.kind == PlanKind::KeyRepair && gen.key_repair_policy().is_none() {
                    // Component-local but without a group policy matching
                    // its chain: key-only sets are still denial, so
                    // localize.
                    PlanKind::Localized
                } else {
                    self.kind
                };
                // Cost model: localization on one giant component with no
                // clean region pays the fast path's overhead for none of
                // its savings — serve monolithically instead.
                Ok(
                    if auto == PlanKind::Localized && !self.localize_worthwhile() {
                        PlanKind::Monolithic
                    } else {
                        auto
                    },
                )
            }
            // Forced monolithic is the universal fallback: always sound,
            // no availability or capability check applies.
            Some(PlanKind::Monolithic) => Ok(PlanKind::Monolithic),
            Some(kind) => match feasibility_gate(kind, self, gen) {
                None => Ok(kind),
                Some(gate) => {
                    let message = match gate {
                        cost::GATE_COMPONENT_LOCAL => format!(
                            "plan {kind:?} requires a component-local generator, \
                             not {:?}",
                            gen.name()
                        ),
                        cost::GATE_GROUP_POLICY => format!(
                            "generator {:?} has no key-repair group policy \
                             matching its chain distribution",
                            gen.name()
                        ),
                        cost::GATE_KEY_COVER => format!(
                            "database does not admit the {kind} plan \
                             (constraints are not primary-key-only)"
                        ),
                        _ => format!(
                            "database does not admit the {kind} plan \
                             (constraints are not in the denial fragment)"
                        ),
                    };
                    Err(EngineError::PlanRejected {
                        plan: kind,
                        gate,
                        message,
                    })
                }
            },
        }
    }

    /// Instantiates the sampling task for a resolved route, building and
    /// memoizing the route's sampler on first use. `route` must come
    /// from [`DbPlan::route`] on the same plan with the same generator.
    ///
    /// The key-repair sampler is built with *the generator's own* group
    /// policy ([`ChainGenerator::key_repair_policy`]) — never a fixed
    /// one — so the fast path reproduces that generator's distribution.
    /// Fails when the policy rejects the database's group structure
    /// (e.g. a pairs-only trust policy meeting a key group of three).
    pub fn task(
        &self,
        route: PlanKind,
        gen: Arc<dyn ChainGenerator>,
    ) -> Result<SampleTask, EngineError> {
        Ok(match route {
            PlanKind::Monolithic => SampleTask::Monolithic {
                ctx: self.ctx.clone(),
                gen,
            },
            PlanKind::Localized => {
                let mut memo = self.localized.lock();
                let sampler = memo
                    .get_or_insert_with(|| {
                        Arc::new(
                            ComponentSampler::new(&self.ctx)
                                .expect("route() checked the denial fragment"),
                        )
                    })
                    .clone();
                SampleTask::Localized { sampler, gen }
            }
            PlanKind::KeyRepair => {
                let policy = gen.key_repair_policy().expect("route() checked");
                let mut memo = self.key.lock();
                let exec = match memo.iter().find(|(p, _)| *p == policy) {
                    Some((_, exec)) => exec.clone(),
                    None => {
                        let configs = self.key_configs.as_deref().expect("route() checked");
                        let sampler =
                            KeyRepairSampler::with_configs(self.ctx.d0(), configs, &policy)
                                .map_err(|e| {
                                    EngineError::BadRequest(format!(
                                        "key-repair plan unavailable for generator {:?}: {e}",
                                        gen.name()
                                    ))
                                })?;
                        let exec = Arc::new(KeyRepairExec {
                            ctx: self.ctx.clone(),
                            sampler,
                        });
                        memo.push((policy, exec.clone()));
                        exec
                    }
                };
                SampleTask::KeyRepair { exec }
            }
        })
    }
}

/// One sampling strategy instantiated for a request, executable in
/// fixed-size chunks on the [`crate::pool::SamplerPool`]. Each variant's
/// chunk run is a pure function of `(chunk seed, walks)`, which is what
/// keeps answers bit-identical across pool sizes.
#[derive(Clone)]
pub enum SampleTask {
    /// Full-database chain walks ([`sample::sample_tally`]).
    Monolithic {
        /// The sampling snapshot.
        ctx: Arc<RepairContext>,
        /// The request's generator.
        gen: Arc<dyn ChainGenerator>,
    },
    /// Per-component chain walks composed under a deletion overlay.
    Localized {
        /// The prebuilt per-component sub-contexts.
        sampler: Arc<ComponentSampler>,
        /// The request's (component-local) generator.
        gen: Arc<dyn ChainGenerator>,
    },
    /// Group-wise key repair with the chain-equivalent outcome policy.
    KeyRepair {
        /// The prebuilt groups and the database they were built from.
        exec: Arc<KeyRepairExec>,
    },
}

impl SampleTask {
    /// Convenience constructor for the universal fallback path.
    pub fn monolithic(ctx: &Arc<RepairContext>, gen: &Arc<dyn ChainGenerator>) -> SampleTask {
        SampleTask::Monolithic {
            ctx: ctx.clone(),
            gen: gen.clone(),
        }
    }

    /// The plan this task executes.
    pub fn plan(&self) -> PlanKind {
        match self {
            SampleTask::Monolithic { .. } => PlanKind::Monolithic,
            SampleTask::Localized { .. } => PlanKind::Localized,
            SampleTask::KeyRepair { .. } => PlanKind::KeyRepair,
        }
    }

    /// Runs one chunk of `walks` walks with the given (already derived)
    /// chunk seed, returning the mergeable tally.
    pub fn run_chunk(
        &self,
        query: &Query,
        walks: u64,
        chunk_seed: u64,
    ) -> Result<SampleTally, String> {
        match self {
            SampleTask::Monolithic { ctx, gen } => {
                let mut rng = StdRng::seed_from_u64(chunk_seed);
                sample::sample_tally(ctx, gen.as_ref(), query, walks, &mut rng)
                    .map_err(|e| e.to_string())
            }
            SampleTask::Localized { sampler, gen } => sampler
                .sample_tally(gen.as_ref(), query, walks, chunk_seed)
                .map_err(|e| e.to_string()),
            SampleTask::KeyRepair { exec } => {
                let mut rng = StdRng::seed_from_u64(chunk_seed);
                Ok(exec
                    .sampler
                    .sample_tally(exec.ctx.d0(), query, walks, &mut rng))
            }
        }
    }
}

impl fmt::Debug for SampleTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SampleTask({})", self.plan())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocqa_core::UniformGenerator;
    use ocqa_data::Database;
    use ocqa_logic::parser;

    fn ctx(facts: &str, constraints: &str) -> Arc<RepairContext> {
        let facts = parser::parse_facts(facts).unwrap();
        let sigma = parser::parse_constraints(constraints).unwrap();
        let schema = parser::infer_schema(&facts, &sigma).unwrap();
        let db = Database::from_facts(schema, facts).unwrap();
        RepairContext::new(db, sigma)
    }

    #[test]
    fn classification_by_constraint_shape() {
        let parse = |s: &str| parser::parse_constraints(s).unwrap();
        assert_eq!(
            classify(&parse("R(x,y), R(x,z) -> y = z.")),
            PlanKind::KeyRepair
        );
        assert_eq!(
            classify(&parse("Pref(x,y), Pref(y,x) -> false.")),
            PlanKind::Localized
        );
        assert_eq!(classify(&parse("T(x,y) -> R(x,y).")), PlanKind::Monolithic);
        // A key plus a DC is not key-only, but still denial.
        assert_eq!(
            classify(&parse("R(x,y), R(x,z) -> y = z. R(x,x) -> false.")),
            PlanKind::Localized
        );
    }

    fn by_name(name: &str) -> Arc<dyn ChainGenerator> {
        crate::engine::generator_by_name(name).unwrap()
    }

    #[test]
    fn routing_rules() {
        let key_ctx = ctx("R(1,10). R(1,20).", "R(x,y), R(x,z) -> y = z.");
        let plan = DbPlan::build(&key_ctx);
        assert_eq!(plan.kind(), PlanKind::KeyRepair);
        // Automatic: fast path for component-local generators only.
        assert_eq!(
            plan.route(by_name("uniform").as_ref(), None).unwrap(),
            PlanKind::KeyRepair
        );
        assert_eq!(
            plan.route(by_name("uniform-deletions").as_ref(), None)
                .unwrap(),
            PlanKind::KeyRepair
        );
        assert_eq!(
            plan.route(by_name("preference").as_ref(), None).unwrap(),
            PlanKind::Monolithic
        );
        // Forced monolithic is always allowed; forced localized works on
        // any denial-fragment database (keys included).
        assert_eq!(
            plan.route(by_name("preference").as_ref(), Some(PlanKind::Monolithic))
                .unwrap(),
            PlanKind::Monolithic
        );
        assert_eq!(
            plan.route(by_name("uniform").as_ref(), Some(PlanKind::Localized))
                .unwrap(),
            PlanKind::Localized
        );
        // Forcing a fast path with a non-local generator is an error.
        assert!(plan
            .route(by_name("preference").as_ref(), Some(PlanKind::KeyRepair))
            .is_err());

        // A DC database never admits key repair.
        let dc_ctx = ctx("Pref(a,b). Pref(b,a).", "Pref(x,y), Pref(y,x) -> false.");
        let plan = DbPlan::build(&dc_ctx);
        assert_eq!(plan.kind(), PlanKind::Localized);
        assert!(plan
            .route(by_name("uniform").as_ref(), Some(PlanKind::KeyRepair))
            .is_err());

        // A TGD database admits nothing but monolithic.
        let tgd_ctx = ctx("T(a,b).", "T(x,y) -> R(x,y).");
        let plan = DbPlan::build(&tgd_ctx);
        assert_eq!(plan.kind(), PlanKind::Monolithic);
        assert_eq!(
            plan.route(by_name("uniform").as_ref(), None).unwrap(),
            PlanKind::Monolithic
        );
        assert!(plan
            .route(by_name("uniform").as_ref(), Some(PlanKind::Localized))
            .is_err());
    }

    #[test]
    fn key_repair_uses_generator_policy() {
        // The trust generator carries its own group policy: on a key-only
        // pairs database the auto route takes key-repair and serves the
        // Example 5 distribution (each fact of a 50/50 pair survives with
        // probability 3/8), not the uniform chain's 1/3.
        let pair_ctx = ctx("R(a,1). R(a,2).", "R(x,y), R(x,z) -> y = z.");
        let plan = DbPlan::build(&pair_ctx);
        let trust: Arc<dyn ChainGenerator> = Arc::new(ocqa_core::TrustGenerator::new(
            [],
            ocqa_num::Rat::ratio(1, 2),
        ));
        assert_eq!(
            plan.route(trust.as_ref(), None).unwrap(),
            PlanKind::KeyRepair
        );
        let task = plan.task(PlanKind::KeyRepair, trust.clone()).unwrap();
        let query = parser::parse_query("(y) <- R('a', y)").unwrap();
        let tally = task.run_chunk(&query, 4000, 5).unwrap();
        for (tuple, p) in tally.frequencies() {
            assert!((p - 0.375).abs() <= 0.03, "{tuple:?}: {p} should be ≈ 3/8");
        }
        // Distinct policies memoize side by side on one plan.
        let uniform: Arc<dyn ChainGenerator> = Arc::new(UniformGenerator::new());
        let task = plan.task(PlanKind::KeyRepair, uniform).unwrap();
        let tally = task.run_chunk(&query, 4000, 5).unwrap();
        for (tuple, p) in tally.frequencies() {
            assert!(
                (p - 1.0 / 3.0).abs() <= 0.03,
                "{tuple:?}: {p} should be ≈ 1/3"
            );
        }

        // A key group of three soundly rejects the pairs-only trust
        // policy instead of serving a wrong distribution.
        let triple_ctx = ctx("R(a,1). R(a,2). R(a,3).", "R(x,y), R(x,z) -> y = z.");
        let plan3 = DbPlan::build(&triple_ctx);
        assert!(plan3.task(PlanKind::KeyRepair, trust).is_err());

        // Component-local generators *without* a key policy fall back to
        // localized automatically, and may not force key-repair.
        struct LocalNoKey;
        impl ChainGenerator for LocalNoKey {
            fn name(&self) -> &str {
                "local-no-key"
            }
            fn component_local(&self) -> bool {
                true
            }
            fn weights(
                &self,
                _state: &ocqa_core::RepairState,
                ops: &[ocqa_core::Operation],
            ) -> Result<Vec<ocqa_num::Rat>, ocqa_core::GeneratorError> {
                Ok(vec![ocqa_num::Rat::ratio(1, ops.len() as i64); ops.len()])
            }
        }
        // On the single-pair database the cost guard kicks in (one
        // component, no clean region), so the localized fallback lands on
        // monolithic; with a second group it localizes.
        assert_eq!(plan.route(&LocalNoKey, None).unwrap(), PlanKind::Monolithic);
        assert!(plan.route(&LocalNoKey, Some(PlanKind::KeyRepair)).is_err());
        let multi_ctx = ctx(
            "R(a,1). R(a,2). R(b,1). R(b,2).",
            "R(x,y), R(x,z) -> y = z.",
        );
        let multi = DbPlan::build(&multi_ctx);
        assert_eq!(multi.route(&LocalNoKey, None).unwrap(), PlanKind::Localized);
    }

    #[test]
    fn tasks_agree_with_each_other_within_eps() {
        // All three routes on one key-only database must estimate the
        // same CP (they sample the same distribution, modulo different
        // RNG streams).
        let ctx = ctx(
            "R(1,10). R(1,20). R(2,30). R(2,40). R(3,50).",
            "R(x,y), R(x,z) -> y = z.",
        );
        let plan = DbPlan::build(&ctx);
        let gen: Arc<dyn ChainGenerator> = Arc::new(UniformGenerator::new());
        let query = parser::parse_query("(x) <- exists y: R(x, y)").unwrap();
        let freqs: Vec<_> = [
            PlanKind::Monolithic,
            PlanKind::Localized,
            PlanKind::KeyRepair,
        ]
        .into_iter()
        .map(|route| {
            let task = plan.task(route, gen.clone()).unwrap();
            assert_eq!(task.plan(), route);
            task.run_chunk(&query, 1500, 99).unwrap().frequencies()
        })
        .collect();
        for pair in freqs.windows(2) {
            assert_eq!(pair[0].len(), pair[1].len());
            for (a, b) in pair[0].iter().zip(&pair[1]) {
                assert_eq!(a.0, b.0);
                assert!((a.1 - b.1).abs() <= 0.06, "{:?} vs {:?}", a, b);
            }
        }
    }

    #[test]
    fn cost_guard_falls_back_on_single_giant_component() {
        // One conflict component covering the whole database, no clean
        // facts: localization would walk the same chain as the monolithic
        // path plus overlay overhead. Automatic routing must fall back.
        // (The 2-path DC over a cycle chains every fact into a single
        // component: each violation shares a fact with the next.)
        let giant = ctx(
            "Pref(a,b). Pref(b,c). Pref(c,a).",
            "Pref(x,y), Pref(y,z) -> false.",
        );
        let plan = DbPlan::build(&giant);
        assert_eq!(plan.kind(), PlanKind::Localized, "classification unchanged");
        assert_eq!(
            plan.route(by_name("uniform").as_ref(), None).unwrap(),
            PlanKind::Monolithic,
            "automatic routing takes the cost-model fallback"
        );
        // An explicit localized request still works (forced routes are for
        // callers that know what they measure).
        assert_eq!(
            plan.route(by_name("uniform").as_ref(), Some(PlanKind::Localized))
                .unwrap(),
            PlanKind::Localized
        );

        // One clean fact tips the model back: the clean region is shared
        // by all walks and never cloned on the localized path.
        let with_clean = ctx(
            "Pref(a,b). Pref(b,c). Pref(c,a). Pref(q,r).",
            "Pref(x,y), Pref(y,z) -> false.",
        );
        let plan = DbPlan::build(&with_clean);
        assert_eq!(
            plan.route(by_name("uniform").as_ref(), None).unwrap(),
            PlanKind::Localized
        );

        // Two components localize regardless of clean facts.
        let two = ctx(
            "Pref(a,b). Pref(b,c). Pref(c,a). Pref(d,e). Pref(e,f). Pref(f,d).",
            "Pref(x,y), Pref(y,z) -> false.",
        );
        let plan = DbPlan::build(&two);
        assert_eq!(
            plan.route(by_name("uniform").as_ref(), None).unwrap(),
            PlanKind::Localized
        );
    }

    #[test]
    fn permuted_key_routes_key_repair() {
        // The key sits in the *second* column: PR 2's detector demanded a
        // leading prefix and served such databases via the localized path;
        // the generalized key_cover recognizes it and key repair applies.
        let ctx = ctx(
            "R(10,1). R(20,1). R(30,2). R(40,2). R(50,3).",
            "R(u,k), R(v,k) -> u = v.",
        );
        let plan = DbPlan::build(&ctx);
        assert_eq!(plan.kind(), PlanKind::KeyRepair);
        let gen: Arc<dyn ChainGenerator> = Arc::new(UniformGenerator::new());
        assert_eq!(plan.route(gen.as_ref(), None).unwrap(), PlanKind::KeyRepair);
        // All three routes agree on the estimated answers.
        let query = parser::parse_query("(y) <- exists x: R(x, y)").unwrap();
        let freqs: Vec<_> = [
            PlanKind::Monolithic,
            PlanKind::Localized,
            PlanKind::KeyRepair,
        ]
        .into_iter()
        .map(|route| {
            let task = plan.task(route, gen.clone()).unwrap();
            task.run_chunk(&query, 1500, 11).unwrap().frequencies()
        })
        .collect();
        for pair in freqs.windows(2) {
            assert_eq!(pair[0].len(), pair[1].len());
            for (a, b) in pair[0].iter().zip(&pair[1]) {
                assert_eq!(a.0, b.0);
                assert!((a.1 - b.1).abs() <= 0.06, "{:?} vs {:?}", a, b);
            }
        }
    }

    #[test]
    fn plan_names_round_trip() {
        for kind in [
            PlanKind::KeyRepair,
            PlanKind::Localized,
            PlanKind::Monolithic,
        ] {
            assert_eq!(PlanKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(PlanKind::parse("auto"), None);
    }
}
