//! Pooled NDJSON/TCP client connections to a remote shard server.
//!
//! The multi-process router ([`crate::frontdoor::RouteProxy`]) proxies
//! the serving protocol to N upstream shard servers, each an ordinary
//! `ocqa serve --shards 1` over its own `shard-<k>/` store. This module
//! is the transport: one [`Upstream`] per shard server, holding a small
//! pool of **persistent** TCP connections (sessions are cheap to keep
//! and expensive to re-dial per request) and speaking exactly the
//! newline-delimited line discipline of [`crate::server`] — one request
//! line out, one response line back, both strict UTF-8. Responses are
//! read under a much larger bound than client requests
//! ([`MAX_RESPONSE_BYTES`] vs [`crate::server::MAX_LINE_BYTES`]): the
//! serving engine does not bound its own response lines, and a response
//! the in-process deployment would serve must not fail through the
//! router.
//!
//! # Reconnect
//!
//! A pooled connection can go stale at any time: the upstream was
//! restarted (the crash-recovery story), an idle TCP session timed out,
//! or the peer closed mid-exchange. [`Upstream::exchange`] retries such
//! failures **once** on a freshly dialed connection before reporting the
//! upstream unavailable — so an upstream SIGKILL + restart is absorbed
//! by the very next request instead of poisoning the pool. The retry
//! re-sends the request, making delivery at-least-once; every protocol
//! mutation is either idempotent or fails loudly on replay
//! (`create_db` of an existing name errors), so the router never
//! silently double-applies.
//!
//! # Health
//!
//! Each upstream tracks whether its last exchange succeeded
//! ([`Upstream::healthy`]), how many times it had to re-dial
//! ([`Upstream::reconnects`]), and the last transport error
//! ([`Upstream::last_error`]) — the router's observable per-upstream
//! state, reported in error payloads and startup logs.

use crate::error::EngineError;
use crate::json::Json;
use crate::obs::{HistSnapshot, Histogram};
use crate::server::{read_frame_limit, Frame};
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Idle connections retained per upstream. More concurrent exchanges
/// than this simply dial extra connections and drop them afterwards.
const POOL_CAP: usize = 8;

/// How long a dial may take before the upstream counts as down. Dialing
/// is the only bounded wait: an *established* exchange may legitimately
/// block for as long as a sampling run takes, so reads are not capped.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Bound on one upstream *response* line. Requests are client-sized
/// ([`crate::server::MAX_LINE_BYTES`]), but responses carry whole
/// answer sets and merged catalogs, which the serving engine does not
/// bound — a response the in-process deployment would serve must not
/// fail through the router. The cap only guards router memory against a
/// garbage-spewing peer.
const MAX_RESPONSE_BYTES: u64 = 256 << 20;

/// One persistent session to an upstream server.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn dial(addr: &str) -> std::io::Result<Conn> {
        // `connect_timeout` needs a resolved SocketAddr; resolve first.
        let resolved = std::net::ToSocketAddrs::to_socket_addrs(addr)?
            .next()
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "address resolved to nothing",
                )
            })?;
        let stream = TcpStream::connect_timeout(&resolved, CONNECT_TIMEOUT)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// One request/response exchange on this session.
    fn roundtrip(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        match read_frame_limit(&mut self.reader, MAX_RESPONSE_BYTES)? {
            Frame::Line(resp) => Ok(resp),
            Frame::Eof => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before a response",
            )),
            Frame::TooLong => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("response line longer than {MAX_RESPONSE_BYTES} bytes"),
            )),
            Frame::NotUtf8 => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "response line is not valid UTF-8",
            )),
        }
    }
}

/// A remote shard server: address, connection pool and health state.
pub struct Upstream {
    addr: String,
    idle: Mutex<Vec<Conn>>,
    healthy: AtomicBool,
    reconnects: AtomicU64,
    last_error: Mutex<Option<String>>,
    /// Dial latency (successful dials only) — slow dials are the early
    /// signal of a struggling upstream, before exchanges start failing.
    dial: Histogram,
    /// The `replication_lag` this upstream reported on its most recent
    /// successful [`probe`](Upstream::probe). Non-zero means its standby
    /// detached mid-stream and has missed acked writes — the router's
    /// failover path refuses to promote such a standby.
    probed_lag: AtomicU64,
}

impl Upstream {
    /// An upstream at `addr` (`host:port`). No connection is made until
    /// the first [`exchange`](Upstream::exchange).
    pub fn new(addr: impl Into<String>) -> Upstream {
        Upstream {
            addr: addr.into(),
            idle: Mutex::new(Vec::new()),
            healthy: AtomicBool::new(false),
            reconnects: AtomicU64::new(0),
            last_error: Mutex::new(None),
            dial: Histogram::new(),
            probed_lag: AtomicU64::new(0),
        }
    }

    /// The upstream's `host:port`.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the most recent exchange succeeded.
    pub fn healthy(&self) -> bool {
        self.healthy.load(Ordering::Relaxed)
    }

    /// Times an exchange had to re-dial after a stale pooled connection.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// The last transport error observed, if any.
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().clone()
    }

    /// Latency histogram of successful dials to this upstream.
    pub fn dial_snapshot(&self) -> HistSnapshot {
        self.dial.snapshot()
    }

    /// This upstream's health block, as rendered in the router's `stats`
    /// and `metrics` responses: address, liveness, reconnect count, last
    /// transport error (when one is outstanding), and dial latency.
    pub fn health_json(&self) -> Json {
        let mut o = Json::obj([
            ("addr", Json::from(self.addr.clone())),
            ("dial", self.dial.snapshot().to_json()),
            ("healthy", Json::from(self.healthy())),
            ("reconnects", Json::from(self.reconnects())),
        ]);
        if let Some(err) = self.last_error() {
            o.set("last_error", Json::from(err));
        }
        o
    }

    /// Sends one request line and returns the raw response line.
    ///
    /// Pops an idle pooled connection (or dials a fresh one), performs
    /// the exchange, and returns the connection to the pool on success.
    /// A failed exchange on a **pooled** connection is retried once on a
    /// fresh dial — the stale-session case; see the module docs. Failures
    /// after that surface as [`EngineError::Unavailable`].
    pub fn exchange(&self, line: &str) -> Result<String, EngineError> {
        for attempt in 0..2u8 {
            let (mut conn, pooled) = match self.idle.lock().pop() {
                Some(conn) => (conn, true),
                None => {
                    let t = Instant::now();
                    match Conn::dial(&self.addr) {
                        Ok(conn) => {
                            self.dial.record(t.elapsed());
                            (conn, false)
                        }
                        Err(e) => return Err(self.down(format!("connect: {e}"))),
                    }
                }
            };
            match conn.roundtrip(line) {
                Ok(resp) => {
                    let mut idle = self.idle.lock();
                    if idle.len() < POOL_CAP {
                        idle.push(conn);
                    }
                    drop(idle);
                    self.healthy.store(true, Ordering::Relaxed);
                    *self.last_error.lock() = None;
                    return Ok(resp);
                }
                // Only transport failures on a *pooled* session retry: a
                // stale connection (upstream restarted, idle drop) is the
                // one case where a fresh dial can change the outcome.
                // Protocol-level garbage (`InvalidData`: overlong or
                // non-UTF-8 response) is terminal — re-sending would just
                // re-run the upstream's work for the same reply.
                Err(e) if pooled && attempt == 0 && e.kind() != std::io::ErrorKind::InvalidData => {
                    // Discard every pooled connection — they all predate
                    // the failure — and retry on a fresh dial.
                    self.idle.lock().clear();
                    self.reconnects.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => return Err(self.down(format!("exchange: {e}"))),
            }
        }
        Err(self.down("reconnect retry exhausted".into()))
    }

    /// One lightweight background health probe: a `stats` exchange over
    /// the ordinary pool. Because [`exchange`](Upstream::exchange) dials
    /// fresh connections when the pool is empty and retries a stale
    /// pooled session once, a probe both *detects* a dead upstream
    /// (flipping [`healthy`](Upstream::healthy) before any client
    /// request observes the failure) and *hot re-dials* a recovered one
    /// — so a long-idle router pays the reconnect on the probe cadence,
    /// never on a client's request.
    ///
    /// A successful probe also records the upstream's reported
    /// `replication_lag` (read back via `probed_lag()`): the router's
    /// failover path checks the last observed value before promoting a
    /// standby, since a lagging standby missed acked writes.
    pub fn probe(&self) -> Result<(), EngineError> {
        let resp = self.exchange(r#"{"op":"stats"}"#)?;
        if let Some(lag) = crate::json::parse(&resp)
            .ok()
            .and_then(|v| v.get("replication_lag").and_then(Json::as_u64))
        {
            self.probed_lag.store(lag, Ordering::Relaxed);
        }
        Ok(())
    }

    /// The `replication_lag` reported by this upstream's most recent
    /// successful probe (`0` until a probe has seen the field).
    pub fn probed_lag(&self) -> u64 {
        self.probed_lag.load(Ordering::Relaxed)
    }

    fn down(&self, detail: String) -> EngineError {
        self.healthy.store(false, Ordering::Relaxed);
        *self.last_error.lock() = Some(detail.clone());
        EngineError::Unavailable(format!("{}: {detail}", self.addr))
    }

    /// Dials a **dedicated** session for a routed subscription. The
    /// caller owns the connection for the subscription's lifetime —
    /// pushed frames arrive on it asynchronously, so it can never serve
    /// pooled request/response exchanges and is never returned to the
    /// pool.
    pub fn dial_stream(&self) -> Result<StreamSession, EngineError> {
        let t = Instant::now();
        match Conn::dial(&self.addr) {
            Ok(conn) => {
                self.dial.record(t.elapsed());
                Ok(StreamSession {
                    reader: conn.reader,
                    stream: conn.writer,
                })
            }
            Err(e) => Err(self.down(format!("connect: {e}"))),
        }
    }
}

/// A dedicated NDJSON session to an upstream — the transport of one
/// routed subscription (see [`Upstream::dial_stream`]). The route proxy
/// sends the `subscribe` line, reads the response, then hands the
/// session to a relay thread that forwards every further line (the
/// upstream's pushed frames) to the client **verbatim**.
pub struct StreamSession {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl StreamSession {
    /// Sends one request line.
    pub fn send(&mut self, line: &str) -> std::io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()
    }

    /// Reads one line (a response or a pushed frame) under the upstream
    /// response bound.
    pub fn read(&mut self) -> std::io::Result<Frame> {
        read_frame_limit(&mut self.reader, MAX_RESPONSE_BYTES)
    }

    /// A clone of the underlying socket, so another thread (an
    /// `unsubscribe`, a disconnecting client) can shut the session down
    /// and unblock the relay's read.
    pub fn shutdown_handle(&self) -> std::io::Result<TcpStream> {
        self.stream.try_clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;
    use std::net::TcpListener;

    /// A server that answers `n` requests per connection, then hangs up.
    fn flaky_echo_server(listener: TcpListener, per_conn: usize) {
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { return };
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut stream = stream;
                for _ in 0..per_conn {
                    let mut line = String::new();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 {
                        break;
                    }
                    let resp = format!("{{\"echo\":{}}}", line.trim_end().len());
                    if writeln!(stream, "{resp}").is_err() {
                        break;
                    }
                }
                // Connection dropped here: the client's pooled session
                // goes stale.
            }
        });
    }

    #[test]
    fn pooled_connection_reused_and_restored_after_staleness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        flaky_echo_server(listener, 1); // every connection serves once
        let up = Upstream::new(addr);
        assert!(!up.healthy(), "no exchange yet");
        assert_eq!(up.exchange(r#"{"op":"x"}"#).unwrap(), r#"{"echo":10}"#);
        assert!(up.healthy());
        // The pooled session is already dead; the next exchange must ride
        // the reconnect path and still succeed.
        assert_eq!(up.exchange(r#"{"op":"xy"}"#).unwrap(), r#"{"echo":11}"#);
        assert!(up.reconnects() >= 1, "stale pool must re-dial");
        assert!(up.healthy());
        assert!(up.last_error().is_none());
    }

    #[test]
    fn dead_upstream_reports_unavailable_then_recovers() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener); // nothing is listening
        let up = Upstream::new(addr.clone());
        let err = up.exchange(r#"{"op":"x"}"#).unwrap_err();
        assert!(
            matches!(err, EngineError::Unavailable(_)),
            "expected Unavailable, got {err:?}"
        );
        assert!(!up.healthy());
        assert!(up.last_error().is_some());
        // The "restart": a server appears on the same address and the
        // same Upstream serves again without being rebuilt.
        let listener = TcpListener::bind(&addr).expect("rebind test port");
        flaky_echo_server(listener, usize::MAX);
        assert_eq!(up.exchange(r#"{"op":"x"}"#).unwrap(), r#"{"echo":10}"#);
        assert!(up.healthy());
        assert!(up.last_error().is_none());
    }
}
