//! Protocol transports: newline-delimited JSON over stdio or TCP.
//!
//! The transports are generic over [`LineService`] — anything that can
//! turn one request line into one response line. Two services exist:
//! the in-process [`Engine`](crate::Engine) and the multi-process
//! [`RouteProxy`](crate::RouteProxy), so the same session and accept
//! loops serve both `ocqa serve` and `ocqa route`.

use crate::subscribe::PushSession;
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Longest request line a session accepts. Reading lines unbounded would
/// let one client buffer arbitrary memory server-side by never sending a
/// newline; past this limit the session is told off and closed. Sized to
/// admit `install_snapshot` requests — a rebalance ships a database's
/// whole base64 transfer image as one line — while still bounding what a
/// misbehaving client can pin.
pub const MAX_LINE_BYTES: u64 = 64 << 20;

/// Anything that serves the NDJSON protocol one line at a time.
pub trait LineService: Send + Sync {
    /// Handles one non-empty request line (no trailing newline),
    /// returning the single-line response (no trailing newline).
    fn serve_line(&self, line: &str) -> String;

    /// [`serve_line`](LineService::serve_line) on a *duplex* session —
    /// one that can receive asynchronous pushed frames through
    /// `session`, which is what makes `subscribe` servable. The default
    /// ignores the session and serves statelessly, so transports that
    /// cannot interleave pushes (stdio) and services without streaming
    /// support keep their exact historical behavior.
    fn serve_open_line(&self, line: &str, _session: &PushSession) -> String {
        self.serve_line(line)
    }
}

/// One framed read off an NDJSON stream: the shared line discipline of
/// every transport in this crate (sessions *and* the router's upstream
/// client connections — see [`crate::upstream`]).
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete line, newline stripped.
    Line(String),
    /// The stream ended cleanly before another line.
    Eof,
    /// The line exceeded [`MAX_LINE_BYTES`].
    TooLong,
    /// The line was not valid UTF-8. Lossily decoding instead would
    /// silently mangle corrupt bytes into U+FFFD — and a database name
    /// or query text would then be *installed under the mangled bytes*
    /// rather than rejected.
    NotUtf8,
}

/// Reads one line under the shared discipline: bounded, strict UTF-8.
pub fn read_frame(input: &mut impl BufRead) -> io::Result<Frame> {
    read_frame_limit(input, MAX_LINE_BYTES)
}

/// [`read_frame`] with an explicit length bound. Sessions bound client
/// *requests* at [`MAX_LINE_BYTES`]; the router's upstream client reads
/// *responses* (answer payloads and merged lists are much larger than
/// any request) under a more generous bound.
pub fn read_frame_limit(input: &mut impl BufRead, max_bytes: u64) -> io::Result<Frame> {
    let mut buf = Vec::new();
    // Read one byte past the limit so a newline-less final line of
    // exactly `max_bytes` at EOF is still accepted; only a line
    // strictly longer trips the guard.
    let n = input.take(max_bytes + 1).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(Frame::Eof);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
    } else if n as u64 > max_bytes {
        return Ok(Frame::TooLong);
    }
    match String::from_utf8(buf) {
        Ok(line) => Ok(Frame::Line(line)),
        Err(_) => Ok(Frame::NotUtf8),
    }
}

/// Serves one session: each input line is a request, each output line the
/// response. Returns when the input ends (or a request line exceeds
/// [`MAX_LINE_BYTES`]). Blank lines are ignored; non-UTF-8 lines are
/// rejected with an `"ok":false` error but do not end the session.
pub fn serve_session<S: LineService + ?Sized>(
    service: &S,
    mut input: impl BufRead,
    mut output: impl Write,
) -> io::Result<()> {
    loop {
        let line = match read_frame(&mut input)? {
            Frame::Eof => return Ok(()),
            Frame::TooLong => {
                writeln!(
                    output,
                    r#"{{"ok":false,"error":"request line longer than {MAX_LINE_BYTES} bytes"}}"#
                )?;
                output.flush()?;
                return Ok(());
            }
            Frame::NotUtf8 => {
                writeln!(
                    output,
                    r#"{{"ok":false,"error":"request line is not valid UTF-8"}}"#
                )?;
                output.flush()?;
                continue;
            }
            Frame::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        writeln!(output, "{}", service.serve_line(line.trim_end()))?;
        output.flush()?;
    }
}

/// Serves stdin/stdout (the `ocqa serve` / `ocqa route` default).
pub fn serve_stdio<S: LineService + ?Sized>(service: &S) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_session(service, stdin.lock(), stdout.lock())
}

/// How the accept loop responds to an `accept` failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AcceptDisposition {
    /// Per-connection noise (the peer hung up before we accepted):
    /// keep accepting immediately.
    Transient,
    /// Resource exhaustion (out of file descriptors / buffers): back off
    /// briefly so in-flight sessions can release resources, then keep
    /// accepting. Returning instead would turn a load spike into a full
    /// outage.
    Throttle,
    /// The listener itself is broken: stop serving.
    Fatal,
}

/// Pause before re-accepting after a resource-exhaustion failure.
const ACCEPT_THROTTLE: Duration = Duration::from_millis(100);

fn classify_accept_error(e: &io::Error) -> AcceptDisposition {
    use io::ErrorKind;
    match e.kind() {
        // The connection died between the kernel queue and our accept —
        // a fact about that one client, not about the listener.
        ErrorKind::ConnectionAborted
        | ErrorKind::ConnectionReset
        | ErrorKind::Interrupted
        | ErrorKind::TimedOut
        | ErrorKind::WouldBlock => AcceptDisposition::Transient,
        _ => match e.raw_os_error() {
            // EMFILE/ENFILE (process/system fd limits), ENOMEM, and
            // ENOBUFS (105 Linux, 55 BSD/macOS): the *server* is
            // saturated — throttle and retry rather than die.
            Some(24) | Some(23) | Some(12) | Some(105) | Some(55) => AcceptDisposition::Throttle,
            _ => AcceptDisposition::Fatal,
        },
    }
}

/// How long a connection worker blocks on an idle session's socket
/// before parking it back on the queue. This is also the pool's natural
/// pacing: visiting an idle connection costs one bounded read, so a
/// worker sweeps at most a few thousand parked sessions per second
/// instead of spinning.
const CONN_POLL_TIMEOUT: Duration = Duration::from_micros(500);

fn default_conn_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        * 2
}

/// One multiplexed TCP session's state between worker visits: the socket
/// (read side, with [`CONN_POLL_TIMEOUT`] armed), the writer shared with
/// an optional push-notifier thread, and whatever bytes arrived without
/// completing a line yet.
struct Conn {
    stream: TcpStream,
    writer: Arc<Mutex<TcpStream>>,
    session: PushSession,
    acc: Vec<u8>,
    notifier: Option<std::thread::JoinHandle<()>>,
}

/// Parked sessions waiting for a worker visit.
struct ConnQueue {
    conns: Mutex<VecDeque<Conn>>,
    available: Condvar,
}

impl ConnQueue {
    fn new() -> ConnQueue {
        ConnQueue {
            conns: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }
    }

    fn push(&self, conn: Conn) {
        self.conns
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push_back(conn);
        self.available.notify_one();
    }

    fn pop(&self) -> Conn {
        let mut conns = self
            .conns
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        loop {
            if let Some(conn) = conns.pop_front() {
                return conn;
            }
            conns = self
                .available
                .wait(conns)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// What a worker visit concluded about a session.
enum Slice {
    /// The socket went quiet mid-session: park it for a later visit.
    Park,
    /// The session ended (EOF, protocol violation, or I/O error).
    Closed,
}

/// Accept loop: a **bounded** pool of connection workers multiplexes
/// every session, so 10k idle connections hold 10k parked [`Conn`]
/// records instead of pinning 10k OS threads. Runs until the listener
/// fails **fatally** — transient per-connection failures
/// (`ECONNABORTED`-class) and resource exhaustion (`EMFILE`-class, with
/// a brief back-off) keep the loop alive, so one misbehaving client or
/// a load spike cannot take the whole server down.
pub fn serve_listener<S: LineService + 'static>(
    service: Arc<S>,
    listener: TcpListener,
) -> io::Result<()> {
    serve_listener_with(service, listener, 0)
}

/// [`serve_listener`] with an explicit connection-worker count
/// (`--conn-workers`); `0` auto-sizes to detected cores × 2.
pub fn serve_listener_with<S: LineService + 'static>(
    service: Arc<S>,
    listener: TcpListener,
    conn_workers: usize,
) -> io::Result<()> {
    accept_loop(
        service,
        || listener.accept().map(|(stream, _)| stream),
        conn_workers,
    )
}

/// [`serve_listener_with`] with the accept source abstracted, so tests
/// can inject failing accepts.
fn accept_loop<S: LineService + 'static>(
    service: Arc<S>,
    mut accept: impl FnMut() -> io::Result<TcpStream>,
    conn_workers: usize,
) -> io::Result<()> {
    let conn_workers = if conn_workers == 0 {
        default_conn_workers()
    } else {
        conn_workers
    };
    let queue = Arc::new(ConnQueue::new());
    let mut spawned = 0;
    let mut spawn_err = None;
    for i in 0..conn_workers {
        let service = service.clone();
        let queue = queue.clone();
        match std::thread::Builder::new()
            .name(format!("ocqa-conn-worker-{i}"))
            .spawn(move || conn_worker_loop(&*service, &queue))
        {
            Ok(_) => spawned += 1, // detached: outlives a fatal accept error,
            // so in-flight sessions finish exactly as the old
            // thread-per-connection loop let them
            Err(e) => spawn_err = Some(e),
        }
    }
    if spawned == 0 {
        return Err(spawn_err.unwrap_or_else(|| io::Error::other("no connection workers")));
    }
    loop {
        let stream = match accept() {
            Ok(stream) => stream,
            Err(e) => match classify_accept_error(&e) {
                AcceptDisposition::Transient => continue,
                AcceptDisposition::Throttle => {
                    std::thread::sleep(ACCEPT_THROTTLE);
                    continue;
                }
                AcceptDisposition::Fatal => return Err(e),
            },
        };
        // A connection we cannot arm is dropped (closed), never enqueued:
        // a worker would otherwise block its full slice on it forever.
        let armed = stream
            .set_read_timeout(Some(CONN_POLL_TIMEOUT))
            .and_then(|()| stream.try_clone());
        if let Ok(writer) = armed {
            queue.push(Conn {
                stream,
                writer: Arc::new(Mutex::new(writer)),
                session: PushSession::new(),
                acc: Vec::new(),
                notifier: None,
            });
        }
    }
}

fn conn_worker_loop<S: LineService + ?Sized>(service: &S, queue: &ConnQueue) {
    loop {
        let mut conn = queue.pop();
        // Panic isolation: a panicking request handler must cost that
        // session, not permanently shrink the worker pool.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            service_slice(service, &mut conn)
        }));
        match outcome {
            Ok(Slice::Park) => queue.push(conn),
            Ok(Slice::Closed) | Err(_) => close_conn(conn),
        }
    }
}

fn close_conn(mut conn: Conn) {
    conn.session.close();
    if let Some(handle) = conn.notifier.take() {
        let _ = handle.join();
    }
}

/// One worker visit: serve every complete buffered line, then read until
/// the socket goes quiet ([`CONN_POLL_TIMEOUT`]) or closes. The line
/// discipline matches [`serve_session`]: bounded length, strict UTF-8,
/// blank lines skipped.
fn service_slice<S: LineService + ?Sized>(service: &S, conn: &mut Conn) -> Slice {
    let mut buf = [0u8; 4096];
    loop {
        while let Some(pos) = conn.acc.iter().position(|&b| b == b'\n') {
            let mut line: Vec<u8> = conn.acc.drain(..=pos).collect();
            line.pop(); // the newline
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            if serve_conn_line(service, conn, line).is_err() {
                return Slice::Closed;
            }
        }
        if conn.acc.len() as u64 > MAX_LINE_BYTES {
            let _ = send_locked(
                &conn.writer,
                &format!(
                    r#"{{"ok":false,"error":"request line longer than {MAX_LINE_BYTES} bytes"}}"#
                ),
            );
            return Slice::Closed;
        }
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                // A final newline-less line at EOF is still served, the
                // same acceptance read_frame gives stdio sessions.
                if !conn.acc.is_empty() {
                    let line = std::mem::take(&mut conn.acc);
                    let _ = serve_conn_line(service, conn, line);
                }
                return Slice::Closed;
            }
            Ok(n) => conn.acc.extend_from_slice(&buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Slice::Park;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Slice::Closed,
        }
    }
}

fn serve_conn_line<S: LineService + ?Sized>(
    service: &S,
    conn: &mut Conn,
    raw: Vec<u8>,
) -> io::Result<()> {
    let line = match String::from_utf8(raw) {
        Ok(line) => line,
        Err(_) => {
            return send_locked(
                &conn.writer,
                r#"{"ok":false,"error":"request line is not valid UTF-8"}"#,
            );
        }
    };
    if line.trim().is_empty() {
        return Ok(());
    }
    let response = service.serve_open_line(line.trim_end(), &conn.session);
    send_locked(&conn.writer, &response)?;
    ensure_notifier(conn);
    Ok(())
}

/// Spawns the session's dedicated push-notifier thread the first time it
/// actually holds a subscription. Plain request/response sessions never
/// get one — that laziness is what lets a bounded worker pool carry
/// thousands of idle connections — while subscribe sessions keep the
/// dedicated writer that delivers pushes even while the connection is
/// parked.
fn ensure_notifier(conn: &mut Conn) {
    if conn.notifier.is_some() || conn.session.sub_count() == 0 {
        return;
    }
    let writer = conn.writer.clone();
    let session = conn.session.clone();
    conn.notifier = std::thread::Builder::new()
        .name("ocqa-push".into())
        .spawn(move || push_notifier_loop(&writer, &session))
        .ok();
}

/// Drains a session's push queue onto its socket until the session
/// closes or the client disappears.
fn push_notifier_loop(writer: &Mutex<TcpStream>, session: &PushSession) {
    while let Some(frame) = session.pop_wait() {
        if send_locked(writer, &frame).is_err() {
            // The client is gone; the reader side will see EOF and close
            // too, but don't spin until then.
            session.close();
            return;
        }
    }
}

fn send_locked(writer: &Mutex<TcpStream>, line: &str) -> io::Result<()> {
    let mut out = writer
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    writeln!(out, "{line}")?;
    out.flush()
}

/// Serves a single TCP connection as a **duplex** session: request
/// lines are answered in order, and any subscription registered through
/// the connection's [`PushSession`] delivers its pushed frames on the
/// same stream, interleaved between (never inside) response lines. A
/// dedicated notifier thread drains the session's bounded frame queue;
/// when the client disconnects the session closes, which runs every
/// shard-registered cleanup and drops its subscriptions.
pub fn handle_connection<S: LineService + ?Sized>(
    service: &S,
    stream: TcpStream,
) -> io::Result<()> {
    let session = PushSession::new();
    let reader = BufReader::new(stream.try_clone()?);
    let writer = Arc::new(Mutex::new(stream));
    let notifier = {
        let writer = writer.clone();
        let session = session.clone();
        std::thread::Builder::new()
            .name("ocqa-push".into())
            .spawn(move || push_notifier_loop(&writer, &session))
    };
    let result = serve_duplex(service, reader, &writer, &session);
    session.close();
    if let Ok(handle) = notifier {
        let _ = handle.join();
    }
    result
}

/// The request half of a duplex session: [`serve_session`]'s line
/// discipline, writing through the mutex the notifier thread shares.
fn serve_duplex<S: LineService + ?Sized>(
    service: &S,
    mut input: impl BufRead,
    output: &Mutex<TcpStream>,
    session: &PushSession,
) -> io::Result<()> {
    let send = |line: &str| -> io::Result<()> {
        let mut out = output.lock().unwrap();
        writeln!(out, "{line}")?;
        out.flush()
    };
    loop {
        let line = match read_frame(&mut input)? {
            Frame::Eof => return Ok(()),
            Frame::TooLong => {
                send(&format!(
                    r#"{{"ok":false,"error":"request line longer than {MAX_LINE_BYTES} bytes"}}"#
                ))?;
                return Ok(());
            }
            Frame::NotUtf8 => {
                send(r#"{"ok":false,"error":"request line is not valid UTF-8"}"#)?;
                continue;
            }
            Frame::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = service.serve_open_line(line.trim_end(), session);
        send(&response)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};

    fn engine() -> Arc<Engine> {
        Engine::new(EngineConfig {
            workers: 1,
            cache_capacity: 8,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn stdio_style_session() {
        let engine = engine();
        let input = concat!(
            r#"{"op":"create_db","name":"kv","facts":"R(a,b). R(a,c).","constraints":"R(x,y), R(x,z) -> y = z."}"#,
            "\n\n",
            r#"{"op":"answer","db":"kv","query":"(y) <- exists x: R(x,y)","eps":0.1,"delta":0.1,"seed":3}"#,
            "\n",
            r#"{"op":"nope"}"#,
            "\n",
        );
        let mut out = Vec::new();
        serve_session(&*engine, input.as_bytes(), &mut out).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().trim().lines().collect();
        assert_eq!(lines.len(), 3, "blank line skipped");
        assert!(lines[0].contains("\"ok\":true"));
        assert!(lines[1].contains("\"answers\":"));
        assert!(lines[2].contains("\"ok\":false"));
    }

    #[test]
    fn overlong_line_closes_session_with_error() {
        let engine = engine();
        let mut input = vec![b'x'; (MAX_LINE_BYTES + 10) as usize];
        input.push(b'\n');
        input.extend_from_slice(b"{\"op\":\"ping\"}\n");
        let mut out = Vec::new();
        serve_session(&*engine, &input[..], &mut out).unwrap();
        let text = std::str::from_utf8(&out).unwrap();
        assert!(text.contains("longer than"), "{text}");
        assert!(
            !text.contains("pong"),
            "session must close after an overlong line: {text}"
        );
    }

    #[test]
    fn non_utf8_line_rejected_session_continues() {
        let engine = engine();
        // A create_db whose database name holds an invalid byte: under
        // the old lossy decoding this *installed* a database named
        // "kv\u{FFFD}" instead of rejecting the request.
        let mut input = Vec::new();
        input.extend_from_slice(br#"{"op":"create_db","name":"kv"#);
        input.push(0xFF); // invalid UTF-8
        input.extend_from_slice(b"\",\"facts\":\"R(1,1).\"}\n");
        input.extend_from_slice(b"{\"op\":\"list\"}\n");
        input.extend_from_slice(b"{\"op\":\"ping\"}\n");
        let mut out = Vec::new();
        serve_session(&*engine, &input[..], &mut out).unwrap();
        let text = std::str::from_utf8(&out).unwrap();
        let lines: Vec<&str> = text.trim().lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert!(
            lines[0].contains("\"ok\":false") && lines[0].contains("not valid UTF-8"),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].contains("\"databases\":[]"),
            "nothing may be installed under mangled bytes: {}",
            lines[1]
        );
        assert!(lines[2].contains("pong"), "session must continue: {text}");
    }

    #[test]
    fn accept_error_classification() {
        use io::{Error, ErrorKind};
        for kind in [
            ErrorKind::ConnectionAborted,
            ErrorKind::ConnectionReset,
            ErrorKind::Interrupted,
        ] {
            assert_eq!(
                classify_accept_error(&Error::from(kind)),
                AcceptDisposition::Transient,
                "{kind:?}"
            );
        }
        // EMFILE: too many open files.
        assert_eq!(
            classify_accept_error(&Error::from_raw_os_error(24)),
            AcceptDisposition::Throttle
        );
        assert_eq!(
            classify_accept_error(&Error::from(ErrorKind::InvalidInput)),
            AcceptDisposition::Fatal
        );
    }

    #[test]
    fn two_workers_multiplex_more_connections_than_threads() {
        let engine = engine();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        const CLIENTS: usize = 8;

        // Each client pings, idles long enough to get parked, then pings
        // again — the worker pool must come back to it.
        let clients: Vec<_> = (0..CLIENTS)
            .map(|_| {
                std::thread::spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut ask = || {
                        writeln!(&stream, r#"{{"op":"ping"}}"#).unwrap();
                        let mut line = String::new();
                        reader.read_line(&mut line).unwrap();
                        line
                    };
                    let first = ask();
                    std::thread::sleep(Duration::from_millis(30));
                    (first, ask())
                })
            })
            .collect();

        let server = std::thread::spawn(move || {
            let mut accepted = 0;
            let _ = accept_loop(
                engine,
                move || {
                    if accepted == CLIENTS {
                        return Err(io::Error::new(io::ErrorKind::InvalidInput, "done"));
                    }
                    accepted += 1;
                    listener.accept().map(|(s, _)| s)
                },
                2,
            );
        });
        for client in clients {
            let (first, second) = client.join().unwrap();
            assert!(first.contains("pong"), "{first}");
            assert!(second.contains("pong"), "{second}");
        }
        server.join().unwrap();
    }

    #[test]
    fn parked_subscriber_receives_pushes_through_lazy_notifier() {
        // One worker forces true multiplexing: the subscriber's
        // connection is parked while the mutator's is served, so the
        // pushed frame can only arrive through the subscription's
        // dedicated notifier thread (spawned lazily at subscribe time).
        let engine = engine();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut accepted = 0;
            let _ = accept_loop(
                engine,
                move || {
                    if accepted == 2 {
                        return Err(io::Error::new(io::ErrorKind::InvalidInput, "done"));
                    }
                    accepted += 1;
                    listener.accept().map(|(s, _)| s)
                },
                1,
            );
        });

        let mutator = TcpStream::connect(addr).unwrap();
        let mut mutator_rd = BufReader::new(mutator.try_clone().unwrap());
        let mut req = |line: &str| {
            writeln!(&mutator, "{line}").unwrap();
            let mut resp = String::new();
            mutator_rd.read_line(&mut resp).unwrap();
            resp
        };
        let resp = req(
            r#"{"op":"create_db","name":"stream","facts":"R(1,10). R(1,20).","constraints":"R(x,y), R(x,z) -> y = z."}"#,
        );
        assert!(resp.contains("\"ok\":true"), "{resp}");

        let subscriber = TcpStream::connect(addr).unwrap();
        let mut subscriber_rd = BufReader::new(subscriber.try_clone().unwrap());
        writeln!(
            &subscriber,
            r#"{{"op":"subscribe","db":"stream","query":"(x) <- exists y: R(x, y)","eps":0.1,"delta":0.1,"seed":7}}"#
        )
        .unwrap();
        let mut ack = String::new();
        subscriber_rd.read_line(&mut ack).unwrap();
        assert!(ack.contains("\"ok\":true"), "{ack}");

        let resp = req(r#"{"op":"insert","db":"stream","facts":"R(1,30)."}"#);
        assert!(resp.contains("\"ok\":true"), "{resp}");
        let mut frame = String::new();
        subscriber_rd.read_line(&mut frame).unwrap();
        assert!(
            frame.contains("\"event\":\"estimate\""),
            "parked subscriber must still get its push: {frame}"
        );
        drop((mutator, subscriber));
        server.join().unwrap();
    }

    #[test]
    fn accept_loop_survives_transient_errors_and_stops_on_fatal() {
        use io::{Error, ErrorKind};

        let engine = engine();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        // A client that connects, pings, and reports the response.
        let client = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            writeln!(&stream, r#"{{"op":"ping"}}"#).unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line
        });

        // Injected accept sequence: a transient failure, a resource
        // exhaustion, a real connection, then a fatal listener error.
        // The old loop died on the very first event.
        let mut step = 0;
        let err = accept_loop(
            engine,
            move || {
                step += 1;
                match step {
                    1 => Err(Error::from(ErrorKind::ConnectionAborted)),
                    2 => Err(Error::from_raw_os_error(24)), // EMFILE
                    3 => listener.accept().map(|(s, _)| s),
                    _ => Err(Error::new(ErrorKind::InvalidInput, "listener torn down")),
                }
            },
            2,
        )
        .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidInput);
        let response = client.join().unwrap();
        assert!(
            response.contains("pong"),
            "connection after transient accept errors must be served: {response}"
        );
    }
}
