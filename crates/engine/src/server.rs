//! Protocol transports: newline-delimited JSON over stdio or TCP.

use crate::engine::Engine;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

/// Longest request line a session accepts. Reading lines unbounded would
/// let one client buffer arbitrary memory server-side by never sending a
/// newline; past this limit the session is told off and closed.
pub const MAX_LINE_BYTES: u64 = 1 << 20;

/// Serves one session: each input line is a request, each output line the
/// response. Returns when the input ends (or a request line exceeds
/// [`MAX_LINE_BYTES`]). Blank lines are ignored.
pub fn serve_session(
    engine: &Engine,
    mut input: impl BufRead,
    mut output: impl Write,
) -> io::Result<()> {
    loop {
        let mut buf = Vec::new();
        // Read one byte past the limit so a newline-less final line of
        // exactly MAX_LINE_BYTES at EOF is still accepted; only a line
        // strictly longer trips the guard.
        let n = (&mut input)
            .take(MAX_LINE_BYTES + 1)
            .read_until(b'\n', &mut buf)?;
        if n == 0 {
            return Ok(()); // EOF
        }
        if buf.last() != Some(&b'\n') && n as u64 > MAX_LINE_BYTES {
            writeln!(
                output,
                r#"{{"ok":false,"error":"request line longer than {MAX_LINE_BYTES} bytes"}}"#
            )?;
            output.flush()?;
            return Ok(());
        }
        let line = String::from_utf8_lossy(&buf);
        if line.trim().is_empty() {
            continue;
        }
        writeln!(output, "{}", engine.handle_line(line.trim_end()))?;
        output.flush()?;
    }
}

/// Serves stdin/stdout (the `ocqa serve` default).
pub fn serve_stdio(engine: &Engine) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_session(engine, stdin.lock(), stdout.lock())
}

/// Accept loop: one thread per connection, all sharing the engine. Runs
/// until the listener fails (i.e. normally forever).
pub fn serve_listener(engine: Arc<Engine>, listener: TcpListener) -> io::Result<()> {
    for conn in listener.incoming() {
        let stream = conn?;
        let engine = engine.clone();
        std::thread::Builder::new()
            .name("ocqa-session".into())
            .spawn(move || {
                let _ = handle_connection(&engine, stream);
            })
            .expect("spawn session thread");
    }
    Ok(())
}

/// Serves a single TCP connection.
pub fn handle_connection(engine: &Engine, stream: TcpStream) -> io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    serve_session(engine, reader, stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;

    #[test]
    fn stdio_style_session() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            cache_capacity: 8,
            ..EngineConfig::default()
        });
        let input = concat!(
            r#"{"op":"create_db","name":"kv","facts":"R(a,b). R(a,c).","constraints":"R(x,y), R(x,z) -> y = z."}"#,
            "\n\n",
            r#"{"op":"answer","db":"kv","query":"(y) <- exists x: R(x,y)","eps":0.1,"delta":0.1,"seed":3}"#,
            "\n",
            r#"{"op":"nope"}"#,
            "\n",
        );
        let mut out = Vec::new();
        serve_session(&engine, input.as_bytes(), &mut out).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().trim().lines().collect();
        assert_eq!(lines.len(), 3, "blank line skipped");
        assert!(lines[0].contains("\"ok\":true"));
        assert!(lines[1].contains("\"answers\":"));
        assert!(lines[2].contains("\"ok\":false"));
    }

    #[test]
    fn overlong_line_closes_session_with_error() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            cache_capacity: 8,
            ..EngineConfig::default()
        });
        let mut input = vec![b'x'; (MAX_LINE_BYTES + 10) as usize];
        input.push(b'\n');
        input.extend_from_slice(b"{\"op\":\"ping\"}\n");
        let mut out = Vec::new();
        serve_session(&engine, &input[..], &mut out).unwrap();
        let text = std::str::from_utf8(&out).unwrap();
        assert!(text.contains("longer than"), "{text}");
        assert!(
            !text.contains("pong"),
            "session must close after an overlong line: {text}"
        );
    }
}
