//! The answer cache: an LRU over fully-qualified answer computations.
//!
//! A cached entry is keyed by everything that determines the sampled
//! answer bit-for-bit: database name **and version**, query text,
//! generator name, ε/δ (as exact bit patterns) and the seed. Catalog
//! updates bump the version, so stale entries can never be served; they
//! are additionally purged eagerly ([`AnswerCache::invalidate_db`]) so a
//! hot database with frequent updates cannot fill the cache with dead
//! versions.

use ocqa_core::sample::SampleTally;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache key: the full provenance of an answer computation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Database name.
    pub db: String,
    /// Database version at computation time.
    pub version: u64,
    /// Query source text.
    pub query: String,
    /// Generator name.
    pub generator: String,
    /// `ε` as IEEE-754 bits (hashable, no rounding surprises).
    pub eps_bits: u64,
    /// `δ` as IEEE-754 bits.
    pub delta_bits: u64,
    /// Sampling seed.
    pub seed: u64,
}

/// Counters exposed in responses and `stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries dropped by explicit invalidation.
    pub invalidated: u64,
    /// Entries evicted by capacity pressure.
    pub evicted: u64,
}

struct Slot {
    // Arc so a hit is a pointer copy, not a deep clone of the tally's
    // tuple map under the cache lock.
    tally: Arc<SampleTally>,
    last_used: u64,
}

/// A least-recently-used cache of answer tallies.
pub struct AnswerCache {
    capacity: usize,
    slots: HashMap<CacheKey, Slot>,
    tick: u64,
    stats: CacheStats,
}

impl AnswerCache {
    /// A cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> AnswerCache {
        AnswerCache {
            capacity: capacity.max(1),
            slots: HashMap::new(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Looks up a key, refreshing its recency on hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<SampleTally>> {
        self.tick += 1;
        match self.slots.get_mut(key) {
            Some(slot) => {
                slot.last_used = self.tick;
                self.stats.hits += 1;
                Some(slot.tally.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a computed tally, evicting the least-recently-used entry
    /// if the cache is full.
    pub fn insert(&mut self, key: CacheKey, tally: Arc<SampleTally>) {
        self.tick += 1;
        if self.slots.len() >= self.capacity && !self.slots.contains_key(&key) {
            if let Some(oldest) = self
                .slots
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone())
            {
                self.slots.remove(&oldest);
                self.stats.evicted += 1;
            }
        }
        self.slots.insert(
            key,
            Slot {
                tally,
                last_used: self.tick,
            },
        );
    }

    /// Purges every entry of a database (any version). Called on catalog
    /// updates and drops.
    pub fn invalidate_db(&mut self, db: &str) {
        let before = self.slots.len();
        self.slots.retain(|k, _| k.db != db);
        self.stats.invalidated += (before - self.slots.len()) as u64;
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(db: &str, version: u64, seed: u64) -> CacheKey {
        CacheKey {
            db: db.into(),
            version,
            query: "(x) <- R(x)".into(),
            generator: "uniform".into(),
            eps_bits: 0.1f64.to_bits(),
            delta_bits: 0.1f64.to_bits(),
            seed,
        }
    }

    fn tally(walks: u64) -> Arc<SampleTally> {
        Arc::new(SampleTally {
            walks,
            ..Default::default()
        })
    }

    #[test]
    fn hit_miss_and_version_separation() {
        let mut cache = AnswerCache::new(8);
        assert!(cache.get(&key("db", 1, 0)).is_none());
        cache.insert(key("db", 1, 0), tally(150));
        assert_eq!(cache.get(&key("db", 1, 0)).unwrap().walks, 150);
        assert!(cache.get(&key("db", 2, 0)).is_none(), "new version misses");
        assert!(cache.get(&key("db", 1, 7)).is_none(), "new seed misses");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 3));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut cache = AnswerCache::new(2);
        cache.insert(key("a", 1, 0), tally(1));
        cache.insert(key("b", 1, 0), tally(2));
        cache.get(&key("a", 1, 0)); // refresh a
        cache.insert(key("c", 1, 0), tally(3)); // evicts b
        assert!(cache.get(&key("b", 1, 0)).is_none());
        assert!(cache.get(&key("a", 1, 0)).is_some());
        assert!(cache.get(&key("c", 1, 0)).is_some());
        assert_eq!(cache.stats().evicted, 1);
    }

    #[test]
    fn invalidate_db_purges_all_versions() {
        let mut cache = AnswerCache::new(8);
        cache.insert(key("a", 1, 0), tally(1));
        cache.insert(key("a", 2, 0), tally(2));
        cache.insert(key("b", 1, 0), tally(3));
        cache.invalidate_db("a");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().invalidated, 2);
        assert!(cache.get(&key("b", 1, 0)).is_some());
    }
}
