//! The answer cache: an LRU over fully-qualified answer computations.
//!
//! A cached entry is keyed by everything that determines the sampled
//! answer bit-for-bit: database name **and version**, query text,
//! generator name, ε/δ (as exact bit patterns) and the seed. Catalog
//! updates bump the version, so stale entries can never be served; they
//! are additionally purged eagerly ([`AnswerCache::invalidate_db`]) so a
//! hot database with frequent updates cannot fill the cache with dead
//! versions.
//!
//! # ε/δ dominance
//!
//! Lookups additionally reuse answers across accuracy levels. The
//! **dominance rule**: a cached tally computed at `(ε′, δ′)` may serve a
//! request for `(ε, δ)` whenever `ε′ ≤ ε` **and** `δ′ ≤ δ` and every
//! other key component (database, version, query, generator, plan, seed)
//! matches exactly. Soundness: the Hoeffding walk budget
//! `n(ε, δ) = ⌈ln(2/δ)/(2ε²)⌉` is monotonically non-increasing in both
//! parameters, so the dominating tally used *at least* as many walks as
//! the request requires — its estimates satisfy the looser additive
//! error bound with at least the requested confidence. When several
//! entries dominate, the tightest `(ε′, δ′)` (lexicographically smallest)
//! is served, deterministically. The seed still has to match: a response
//! must remain a pure function of its request against a given database
//! version *and the cache contents*, and walks drawn under a different
//! seed would silently change the reported estimates between "cached"
//! and "computed" serves.
//!
//! Note the deliberate carve-out in the engine's determinism story: a
//! dominated hit returns the tighter computation's estimates, which
//! differ numerically from what a cold compute at the requested `(ε, δ)`
//! would produce. This is observable, not silent — the response carries
//! `cached: true` and the tighter run's `walks` — and the substituted
//! estimates satisfy the request's accuracy contract with margin. The
//! bit-identity guarantees (across pool sizes, across restarts) are
//! therefore stated for **computed** answers: a cache-missing request
//! yields the same bytes on any engine at the same database version.
//!
//! # Time-to-live
//!
//! Version bumps bound staleness for *explicit* updates, but some
//! workloads bound it by **time** instead — the database is mutated out
//! of band (a restored snapshot swapped underneath, an upstream source
//! whose drift is tolerated for a while), or operators simply want
//! estimates re-drawn periodically. A cache built with
//! [`AnswerCache::with_ttl`] stamps every entry at insert and expires it
//! **lazily on lookup**: a hit older than the TTL is removed, counted in
//! [`CacheStats::expired`], and reported as a miss, so the caller
//! recomputes exactly as if the entry had never been stored. Dominance
//! scans skip expired entries for the same reason. No sweeper thread
//! exists — an entry that is never looked up again ages out through
//! ordinary LRU eviction.

use crate::planner::PlanKind;
use ocqa_core::sample::SampleTally;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Upper bound on retained invalidation floors (see
/// [`AnswerCache::invalidate_db`]); above it the lowest — oldest —
/// floors are pruned, so the map cannot grow without bound on servers
/// whose clients churn through uniquely named databases.
pub const MAX_FLOORS: usize = 4096;

/// Cache key: the full provenance of an answer computation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Database name.
    pub db: String,
    /// Database version at computation time.
    pub version: u64,
    /// Query source text.
    pub query: String,
    /// Generator name.
    pub generator: String,
    /// The plan that computed the tally: different plans draw different
    /// RNG streams, so a forced-monolithic answer and a planner-served
    /// one are distinct computations even for identical seeds.
    pub plan: PlanKind,
    /// `ε` as IEEE-754 bits (hashable, no rounding surprises).
    pub eps_bits: u64,
    /// `δ` as IEEE-754 bits.
    pub delta_bits: u64,
    /// Sampling seed.
    pub seed: u64,
}

/// Counters exposed in responses and `stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// The subset of `hits` served by ε/δ dominance (a tighter cached
    /// estimate answering a looser request; see the module docs).
    pub dominated_hits: u64,
    /// Entries dropped by explicit invalidation.
    pub invalidated: u64,
    /// Entries evicted by capacity pressure.
    pub evicted: u64,
    /// Inserts rejected because their version was below the database's
    /// invalidation floor (an in-flight answer finishing after an update).
    pub stale_drops: u64,
    /// Entries dropped on lookup because they outlived the cache TTL.
    pub expired: u64,
}

impl CacheStats {
    /// Adds another shard's counters into this one (the front door's
    /// `stats` fan-out sums per-shard caches exactly once).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.dominated_hits += other.dominated_hits;
        self.invalidated += other.invalidated;
        self.evicted += other.evicted;
        self.stale_drops += other.stale_drops;
        self.expired += other.expired;
    }
}

struct Slot {
    // Arc so a hit is a pointer copy, not a deep clone of the tally's
    // tuple map under the cache lock.
    tally: Arc<SampleTally>,
    last_used: u64,
    inserted_at: Instant,
}

/// A least-recently-used cache of answer tallies.
pub struct AnswerCache {
    capacity: usize,
    /// Per-entry time-to-live; `None` means entries live until a version
    /// bump or LRU eviction (the historical behavior).
    ttl: Option<Duration>,
    slots: HashMap<CacheKey, Slot>,
    /// Per-database minimum acceptable version, set by
    /// [`invalidate_db`](Self::invalidate_db). An `answer` that sampled
    /// against a pre-update snapshot races its insert against the
    /// update's purge; without the floor, an insert landing *after* the
    /// purge would park an unservable old-version entry in an LRU slot
    /// until capacity pressure happens to evict it.
    floors: HashMap<String, u64>,
    tick: u64,
    stats: CacheStats,
}

impl AnswerCache {
    /// A cache holding at most `capacity` entries (min 1), without TTL.
    pub fn new(capacity: usize) -> AnswerCache {
        AnswerCache::with_ttl(capacity, None)
    }

    /// A cache whose entries additionally expire `ttl` after insertion
    /// (lazily, on lookup). `None` disables time-based expiry.
    pub fn with_ttl(capacity: usize, ttl: Option<Duration>) -> AnswerCache {
        AnswerCache {
            capacity: capacity.max(1),
            ttl,
            slots: HashMap::new(),
            floors: HashMap::new(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Whether a slot inserted at `at` has outlived the TTL.
    fn expired(&self, at: Instant, now: Instant) -> bool {
        self.ttl
            .is_some_and(|ttl| now.saturating_duration_since(at) >= ttl)
    }

    /// Looks up a key, refreshing its recency on hit. An exact match wins;
    /// otherwise the tightest **dominating** entry — same database,
    /// version, query, generator, plan and seed, with `ε′ ≤ ε` and
    /// `δ′ ≤ δ` — serves the request (see the module docs for why that is
    /// sound). Entries older than the TTL are expired here: removed,
    /// counted, and reported as a miss.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<SampleTally>> {
        self.tick += 1;
        let now = Instant::now();
        if self
            .slots
            .get(key)
            .is_some_and(|slot| self.expired(slot.inserted_at, now))
        {
            // Remove the expired exact entry but *fall through* to the
            // dominance scan: a live tighter entry may still serve this
            // request, saving the recompute.
            self.slots.remove(key);
            self.stats.expired += 1;
        }
        if let Some(slot) = self.slots.get_mut(key) {
            slot.last_used = self.tick;
            self.stats.hits += 1;
            return Some(slot.tally.clone());
        }
        if let Some(dominating) = self.find_dominating(key, now) {
            let slot = self.slots.get_mut(&dominating).expect("key from scan");
            slot.last_used = self.tick;
            self.stats.hits += 1;
            self.stats.dominated_hits += 1;
            return Some(slot.tally.clone());
        }
        self.stats.misses += 1;
        None
    }

    /// Scans for the tightest entry dominating `key` (exact key already
    /// known absent). Linear in the live entry count — bounded by the
    /// capacity, and only paid on the miss path, where the alternative is
    /// a full sampling run many orders of magnitude dearer. Expired
    /// entries never dominate (they are skipped, not removed — removal
    /// stays on the exact-hit path).
    fn find_dominating(&self, key: &CacheKey, now: Instant) -> Option<CacheKey> {
        let eps = f64::from_bits(key.eps_bits);
        let delta = f64::from_bits(key.delta_bits);
        let mut best: Option<(f64, f64, &CacheKey)> = None;
        for (k, slot) in self.slots.iter() {
            if self.expired(slot.inserted_at, now) {
                continue;
            }
            if k.db != key.db
                || k.version != key.version
                || k.query != key.query
                || k.generator != key.generator
                || k.plan != key.plan
                || k.seed != key.seed
            {
                continue;
            }
            let (e, d) = (f64::from_bits(k.eps_bits), f64::from_bits(k.delta_bits));
            // NaN bit patterns never dominate (comparisons are false).
            if e <= eps && d <= delta && best.is_none_or(|(be, bd, _)| (e, d) < (be, bd)) {
                best = Some((e, d, k));
            }
        }
        best.map(|(_, _, k)| k.clone())
    }

    /// Inserts a computed tally, evicting the least-recently-used entry
    /// if the cache is full.
    ///
    /// Inserts whose version lies below the database's invalidation floor
    /// are dropped: the entry could never be served (lookups carry the
    /// current version) and would only waste a slot.
    pub fn insert(&mut self, key: CacheKey, tally: Arc<SampleTally>) {
        if self
            .floors
            .get(&key.db)
            .is_some_and(|floor| key.version < *floor)
        {
            self.stats.stale_drops += 1;
            return;
        }
        self.tick += 1;
        if self.slots.len() >= self.capacity && !self.slots.contains_key(&key) {
            if let Some(oldest) = self
                .slots
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone())
            {
                self.slots.remove(&oldest);
                self.stats.evicted += 1;
            }
        }
        self.slots.insert(
            key,
            Slot {
                tally,
                last_used: self.tick,
                inserted_at: Instant::now(),
            },
        );
    }

    /// Purges every entry of `db` whose version lies below `min_version`
    /// and records the floor, so racing inserts from answers computed
    /// against older versions are dropped rather than re-inserted. Called
    /// on catalog updates (with the post-update version) and drops (with
    /// a floor above the dropped incarnation — the catalog-global version
    /// counter guarantees a recreated database starts higher).
    pub fn invalidate_db(&mut self, db: &str, min_version: u64) {
        let before = self.slots.len();
        self.slots
            .retain(|k, _| k.db != db || k.version >= min_version);
        self.stats.invalidated += (before - self.slots.len()) as u64;
        let floor = self.floors.entry(db.to_string()).or_insert(0);
        *floor = (*floor).max(min_version);
        if self.floors.len() > MAX_FLOORS {
            self.prune_floors();
        }
    }

    /// Bounds the floor map on a long-lived server whose clients churn
    /// through uniquely named databases: keep the `MAX_FLOORS / 2`
    /// *highest* floors (the most recent versions, whose in-flight
    /// answers may still land) and forget the rest. Forgetting a floor
    /// degrades gracefully to the pre-floor behavior — a stale insert
    /// for a long-dead database wastes one LRU slot until eviction, but
    /// is still never *served* (lookups carry the current version).
    fn prune_floors(&mut self) {
        let mut entries: Vec<(String, u64)> = self.floors.drain().collect();
        entries.sort_unstable_by_key(|(_, floor)| std::cmp::Reverse(*floor));
        entries.truncate(MAX_FLOORS / 2);
        self.floors = entries.into_iter().collect();
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The `max` most-recently-used keys, hottest first — the bounded
    /// list the shard journals so a restart can pre-warm the entries
    /// clients touch first. Recency (not hit count) is the ranking: the
    /// LRU order is exactly what the cache itself believes is hot.
    pub fn hot_keys(&self, max: usize) -> Vec<CacheKey> {
        let mut entries: Vec<(&CacheKey, u64)> = self
            .slots
            .iter()
            .map(|(k, slot)| (k, slot.last_used))
            .collect();
        entries.sort_unstable_by_key(|(_, last_used)| std::cmp::Reverse(*last_used));
        entries.truncate(max);
        entries.into_iter().map(|(k, _)| k.clone()).collect()
    }

    /// Number of retained invalidation floors (test observability).
    #[cfg(test)]
    fn floors_len(&self) -> usize {
        self.floors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(db: &str, version: u64, seed: u64) -> CacheKey {
        CacheKey {
            db: db.into(),
            version,
            query: "(x) <- R(x)".into(),
            generator: "uniform".into(),
            plan: PlanKind::Monolithic,
            eps_bits: 0.1f64.to_bits(),
            delta_bits: 0.1f64.to_bits(),
            seed,
        }
    }

    fn tally(walks: u64) -> Arc<SampleTally> {
        Arc::new(SampleTally {
            walks,
            ..Default::default()
        })
    }

    #[test]
    fn hit_miss_and_version_separation() {
        let mut cache = AnswerCache::new(8);
        assert!(cache.get(&key("db", 1, 0)).is_none());
        cache.insert(key("db", 1, 0), tally(150));
        assert_eq!(cache.get(&key("db", 1, 0)).unwrap().walks, 150);
        assert!(cache.get(&key("db", 2, 0)).is_none(), "new version misses");
        assert!(cache.get(&key("db", 1, 7)).is_none(), "new seed misses");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 3));
    }

    fn key_at(db: &str, version: u64, seed: u64, eps: f64, delta: f64) -> CacheKey {
        CacheKey {
            eps_bits: eps.to_bits(),
            delta_bits: delta.to_bits(),
            ..key(db, version, seed)
        }
    }

    #[test]
    fn tighter_entry_serves_looser_request() {
        let mut cache = AnswerCache::new(8);
        cache.insert(key_at("db", 1, 0, 0.05, 0.05), tally(600));
        // Looser ε and δ: dominated hit, returning the tighter tally.
        let got = cache.get(&key_at("db", 1, 0, 0.1, 0.1)).unwrap();
        assert_eq!(got.walks, 600);
        let s = cache.stats();
        assert_eq!((s.hits, s.dominated_hits, s.misses), (1, 1, 0));
        // Equal ε/δ is an exact hit, not a dominated one.
        assert!(cache.get(&key_at("db", 1, 0, 0.05, 0.05)).is_some());
        assert_eq!(cache.stats().dominated_hits, 1);
        // Tighter-than-cached requests miss: the cached walks are too few.
        assert!(cache.get(&key_at("db", 1, 0, 0.01, 0.05)).is_none());
        // Mixed dominance (tighter ε, looser δ) is not dominance.
        assert!(cache.get(&key_at("db", 1, 0, 0.2, 0.01)).is_none());
        // A different seed never reuses, however loose the request.
        assert!(cache.get(&key_at("db", 1, 9, 0.5, 0.5)).is_none());
        // Neither does a different version.
        assert!(cache.get(&key_at("db", 2, 0, 0.5, 0.5)).is_none());
    }

    #[test]
    fn tightest_dominating_entry_wins() {
        let mut cache = AnswerCache::new(8);
        cache.insert(key_at("db", 1, 0, 0.08, 0.08), tally(200));
        cache.insert(key_at("db", 1, 0, 0.05, 0.09), tally(400));
        cache.insert(key_at("db", 1, 0, 0.06, 0.02), tally(300));
        // All three dominate (0.1, 0.1); the lexicographically tightest
        // (ε first) is chosen deterministically.
        let got = cache.get(&key_at("db", 1, 0, 0.1, 0.1)).unwrap();
        assert_eq!(got.walks, 400);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut cache = AnswerCache::new(2);
        cache.insert(key("a", 1, 0), tally(1));
        cache.insert(key("b", 1, 0), tally(2));
        cache.get(&key("a", 1, 0)); // refresh a
        cache.insert(key("c", 1, 0), tally(3)); // evicts b
        assert!(cache.get(&key("b", 1, 0)).is_none());
        assert!(cache.get(&key("a", 1, 0)).is_some());
        assert!(cache.get(&key("c", 1, 0)).is_some());
        assert_eq!(cache.stats().evicted, 1);
    }

    #[test]
    fn invalidate_db_purges_below_floor() {
        let mut cache = AnswerCache::new(8);
        cache.insert(key("a", 1, 0), tally(1));
        cache.insert(key("a", 2, 0), tally(2));
        cache.insert(key("b", 1, 0), tally(3));
        cache.invalidate_db("a", 3);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().invalidated, 2);
        assert!(cache.get(&key("b", 1, 0)).is_some());
        // Entries at or above the floor survive.
        cache.insert(key("a", 3, 0), tally(4));
        cache.invalidate_db("a", 3);
        assert!(cache.get(&key("a", 3, 0)).is_some());
    }

    #[test]
    fn stale_insert_after_invalidation_is_dropped() {
        // The in-flight-answer race: a request snapshots version 1, an
        // update purges and floors the db at version 2 while it samples,
        // then the request's insert lands. The entry must be dropped —
        // it can never be served and would only occupy an LRU slot.
        let mut cache = AnswerCache::new(8);
        cache.invalidate_db("a", 2);
        cache.insert(key("a", 1, 0), tally(1));
        assert_eq!(cache.len(), 0, "stale insert must be dropped");
        assert_eq!(cache.stats().stale_drops, 1);
        // The current version is accepted, as are later ones.
        cache.insert(key("a", 2, 0), tally(2));
        cache.insert(key("a", 3, 0), tally(3));
        assert_eq!(cache.len(), 2);
        // Floors only ever rise: an older invalidation cannot lower one.
        cache.invalidate_db("a", 1);
        cache.insert(key("a", 1, 1), tally(4));
        assert_eq!(cache.stats().stale_drops, 2);
        // Other databases are unaffected by a's floor.
        cache.insert(key("b", 1, 0), tally(5));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn ttl_expires_entries_lazily_on_lookup() {
        let mut cache = AnswerCache::with_ttl(8, Some(Duration::from_millis(20)));
        cache.insert(key("db", 1, 0), tally(150));
        // Fresh entries hit normally.
        assert!(cache.get(&key("db", 1, 0)).is_some());
        std::thread::sleep(Duration::from_millis(60));
        // Past the TTL the entry is removed on lookup and reported as a
        // miss — the caller recomputes as if it had never been cached.
        assert!(cache.get(&key("db", 1, 0)).is_none());
        let s = cache.stats();
        assert_eq!((s.expired, s.misses, s.hits), (1, 1, 1));
        assert_eq!(cache.len(), 0, "expired entry must free its slot");
        // Re-inserting restarts the clock.
        cache.insert(key("db", 1, 0), tally(150));
        assert!(cache.get(&key("db", 1, 0)).is_some());
    }

    #[test]
    fn ttl_applies_to_dominance_too() {
        let mut cache = AnswerCache::with_ttl(8, Some(Duration::from_millis(20)));
        cache.insert(key_at("db", 1, 0, 0.05, 0.05), tally(600));
        assert!(cache.get(&key_at("db", 1, 0, 0.1, 0.1)).is_some());
        std::thread::sleep(Duration::from_millis(60));
        // An expired entry must not serve a looser request either.
        assert!(cache.get(&key_at("db", 1, 0, 0.1, 0.1)).is_none());
        // But an expired *exact* entry falls through to dominance: a
        // live tighter entry still saves the recompute.
        cache.insert(key_at("db", 1, 0, 0.1, 0.1), tally(150));
        std::thread::sleep(Duration::from_millis(30));
        cache.insert(key_at("db", 1, 0, 0.05, 0.05), tally(600));
        let got = cache.get(&key_at("db", 1, 0, 0.1, 0.1)).unwrap();
        assert_eq!(got.walks, 600, "fresh dominating entry serves");
        // Only the exact-hit removal counts an expiry; dominance scans
        // skip expired entries without removing them.
        assert_eq!(cache.stats().expired, 1);
        // A TTL-less cache never expires.
        let mut forever = AnswerCache::new(8);
        forever.insert(key("db", 1, 0), tally(1));
        std::thread::sleep(Duration::from_millis(30));
        assert!(forever.get(&key("db", 1, 0)).is_some());
        assert_eq!(forever.stats().expired, 0);
    }

    #[test]
    fn hot_keys_rank_by_recency_and_bound() {
        let mut cache = AnswerCache::new(8);
        cache.insert(key("a", 1, 0), tally(1));
        cache.insert(key("b", 1, 0), tally(2));
        cache.insert(key("c", 1, 0), tally(3));
        cache.get(&key("a", 1, 0)); // a becomes hottest
        let hot = cache.hot_keys(2);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].db, "a");
        assert_eq!(hot[1].db, "c");
        assert_eq!(cache.hot_keys(10).len(), 3, "bound caps, never pads");
    }

    #[test]
    fn stats_merge_sums_every_counter() {
        let a = CacheStats {
            hits: 1,
            misses: 2,
            dominated_hits: 3,
            invalidated: 4,
            evicted: 5,
            stale_drops: 6,
            expired: 7,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(
            b,
            CacheStats {
                hits: 2,
                misses: 4,
                dominated_hits: 6,
                invalidated: 8,
                evicted: 10,
                stale_drops: 12,
                expired: 14,
            }
        );
    }

    #[test]
    fn floor_map_is_bounded_and_keeps_recent_floors() {
        let mut cache = AnswerCache::new(4);
        // Churn through far more uniquely named databases than the bound
        // (monotonically increasing versions, like the catalog counter).
        for v in 0..(2 * MAX_FLOORS as u64 + 10) {
            cache.invalidate_db(&format!("scratch-{v}"), v + 1);
        }
        assert!(
            cache.floors_len() <= MAX_FLOORS,
            "floors must stay bounded: {}",
            cache.floors_len()
        );
        // The most recent floor survives pruning; a stale insert for it
        // is still rejected.
        let last = 2 * MAX_FLOORS as u64 + 9;
        cache.insert(key(&format!("scratch-{last}"), last, 0), tally(1));
        assert_eq!(cache.stats().stale_drops, 1);
        // An ancient pruned floor degrades gracefully: the insert lands
        // (one LRU slot) but can never be served at the current version.
        cache.insert(key("scratch-0", 0, 0), tally(1));
        assert_eq!(cache.len(), 1);
    }
}
