//! Prepared queries: parse/validate once, reuse across requests.

use crate::error::EngineError;
use ocqa_logic::{parser, Query};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Registry capacity. Every inline `answer` query is routed through the
/// registry, so an unbounded map would grow forever in a long-lived
/// server handling ad-hoc query texts; beyond this many distinct texts
/// the oldest entry is evicted (its handle then answers
/// `UnknownPrepared`, and clients simply re-prepare).
pub const MAX_PREPARED: usize = 4096;

/// A parsed, validated query with a stable handle.
#[derive(Debug)]
pub struct PreparedQuery {
    /// The handle clients use (`"q1"`, `"q2"`, …).
    pub id: String,
    /// The original source text (also the cache-key component).
    pub text: String,
    /// The parsed query, shareable with the sampler pool without cloning
    /// the AST per request.
    pub query: Arc<Query>,
}

/// Registry of prepared queries. Preparing the same text twice returns
/// the existing handle. Bounded at [`MAX_PREPARED`] entries (FIFO
/// eviction of the oldest registration).
#[derive(Default)]
pub struct PreparedRegistry {
    by_id: HashMap<String, Arc<PreparedQuery>>,
    by_text: HashMap<String, String>,
    order: VecDeque<String>,
    next: u64,
}

impl PreparedRegistry {
    /// An empty registry.
    pub fn new() -> PreparedRegistry {
        PreparedRegistry::default()
    }

    /// Parses and registers `text`, returning the handle (existing one if
    /// the same text was prepared before).
    pub fn prepare(&mut self, text: &str) -> Result<Arc<PreparedQuery>, EngineError> {
        self.prepare_with(text, |_, _| Ok(()))
    }

    /// [`prepare`](Self::prepare) with a journaling hook: `journal` runs
    /// only when `text` is new (an existing handle is returned without
    /// journaling — re-preparing is not a mutation), after the parse
    /// validated the text but **before** the handle is allocated, so a
    /// failing journal leaves the registry untouched. It receives the
    /// ordinal the allocation will mint (`"q<ordinal>"`). Journaling
    /// every new text — including texts prepared implicitly by inline
    /// `answer` requests — is what lets recovery replay the allocations
    /// and reproduce the exact ordinal handles (`"q1"`, `"q2"`, …).
    pub fn prepare_with(
        &mut self,
        text: &str,
        journal: impl FnOnce(&str, u64) -> Result<(), EngineError>,
    ) -> Result<Arc<PreparedQuery>, EngineError> {
        if let Some(id) = self.by_text.get(text) {
            return Ok(self.by_id[id].clone());
        }
        let query = parser::parse_query(text).map_err(|e| EngineError::Parse(e.to_string()))?;
        journal(text, self.next + 1)?;
        while self.by_id.len() >= MAX_PREPARED {
            if let Some(old_id) = self.order.pop_front() {
                if let Some(old) = self.by_id.remove(&old_id) {
                    self.by_text.remove(&old.text);
                }
            } else {
                break;
            }
        }
        self.next += 1;
        let id = format!("q{}", self.next);
        let prepared = Arc::new(PreparedQuery {
            id: id.clone(),
            text: text.to_string(),
            query: Arc::new(query),
        });
        self.by_text.insert(text.to_string(), id.clone());
        self.order.push_back(id.clone());
        self.by_id.insert(id, prepared.clone());
        Ok(prepared)
    }

    /// Looks up an already-registered query by its exact source text (the
    /// engine's shared-lock fast path for repeated inline queries).
    pub fn lookup_text(&self, text: &str) -> Option<Arc<PreparedQuery>> {
        self.by_text.get(text).map(|id| self.by_id[id].clone())
    }

    /// Rebuilds the registry from recovered `(handle id, text)` pairs (in
    /// FIFO order) and the persisted id counter. Ids are restored
    /// verbatim — after capacity evictions they are not contiguous, and
    /// `next` may exceed every live id (evicted handles must never be
    /// re-minted for different texts). Fails on duplicate ids/texts or
    /// unparseable text (a corrupt store, surfaced rather than half
    /// restored).
    pub fn restore(
        &mut self,
        entries: Vec<(String, String)>,
        next: u64,
    ) -> Result<(), EngineError> {
        for (id, text) in entries {
            let query = parser::parse_query(&text)
                .map_err(|e| EngineError::Storage(format!("recovered query {id:?}: {e}")))?;
            if self.by_id.contains_key(&id) || self.by_text.contains_key(&text) {
                return Err(EngineError::Storage(format!(
                    "recovered prepared query {id:?} twice"
                )));
            }
            self.by_text.insert(text.clone(), id.clone());
            self.order.push_back(id.clone());
            self.by_id.insert(
                id.clone(),
                Arc::new(PreparedQuery {
                    id,
                    text,
                    query: Arc::new(query),
                }),
            );
        }
        self.next = self.next.max(next);
        Ok(())
    }

    /// Looks up a handle.
    pub fn get(&self, id: &str) -> Result<Arc<PreparedQuery>, EngineError> {
        self.by_id
            .get(id)
            .cloned()
            .ok_or_else(|| EngineError::UnknownPrepared(id.to_string()))
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_dedups_by_text() {
        let mut reg = PreparedRegistry::new();
        let a = reg.prepare("(x) <- exists y: R(x, y)").unwrap();
        let b = reg.prepare("(x) <- exists y: R(x, y)").unwrap();
        assert_eq!(a.id, b.id);
        assert_eq!(reg.len(), 1);
        let c = reg.prepare("(y) <- exists x: R(x, y)").unwrap();
        assert_ne!(a.id, c.id);
        assert_eq!(reg.get(&c.id).unwrap().text, "(y) <- exists x: R(x, y)");
    }

    #[test]
    fn capacity_bounded_with_fifo_eviction() {
        let mut reg = PreparedRegistry::new();
        let first = reg.prepare("(x) <- R(x, 0)").unwrap();
        for i in 1..=MAX_PREPARED {
            reg.prepare(&format!("(x) <- R(x, {i})")).unwrap();
        }
        assert_eq!(reg.len(), MAX_PREPARED, "never exceeds the cap");
        assert!(
            matches!(reg.get(&first.id), Err(EngineError::UnknownPrepared(_))),
            "oldest entry evicted"
        );
        // The newest entry survives.
        assert!(reg.get(&format!("q{}", MAX_PREPARED + 1)).is_ok());
    }

    #[test]
    fn bad_query_rejected() {
        let mut reg = PreparedRegistry::new();
        assert!(matches!(
            reg.prepare("(x) <- ???"),
            Err(EngineError::Parse(_))
        ));
        assert!(matches!(
            reg.get("q9"),
            Err(EngineError::UnknownPrepared(_))
        ));
    }
}
