//! Preference-tournament workloads (the running example of §3).

use ocqa_data::{Constant, Database, Fact, Schema};
use ocqa_logic::{parser, ConstraintSet, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for a preference relation with symmetric conflicts.
#[derive(Clone, Debug)]
pub struct PreferenceSpec {
    /// Number of products.
    pub products: usize,
    /// Number of symmetric (mutually-preferring) conflict pairs.
    pub conflicts: usize,
    /// Additional one-directional preference edges.
    pub extra_edges: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PreferenceSpec {
    fn default() -> Self {
        PreferenceSpec {
            products: 10,
            conflicts: 3,
            extra_edges: 10,
            seed: 7,
        }
    }
}

/// A generated preference workload.
pub struct PreferenceWorkload {
    /// The inconsistent preference database.
    pub db: Database,
    /// The asymmetry denial constraint `Pref(x,y), Pref(y,x) → ⊥`.
    pub sigma: ConstraintSet,
}

impl PreferenceWorkload {
    /// The exact database and constraint of the paper's §3 example.
    pub fn paper_example() -> PreferenceWorkload {
        let facts = parser::parse_facts(
            "Pref(a,b). Pref(a,c). Pref(a,d). Pref(b,a). Pref(b,d). Pref(c,a).",
        )
        .unwrap();
        let sigma = parser::parse_constraints("Pref(x,y), Pref(y,x) -> false.").unwrap();
        let schema = parser::infer_schema(&facts, &sigma).unwrap();
        PreferenceWorkload {
            db: Database::from_facts(schema, facts).unwrap(),
            sigma,
        }
    }

    /// Generates a random tournament with planted symmetric conflicts.
    pub fn generate(spec: &PreferenceSpec) -> PreferenceWorkload {
        assert!(spec.products >= 2);
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let schema = Schema::from_relations(&[("Pref", 2)]);
        let mut db = Database::new(schema);
        let product = |i: usize| Constant::int(i as i64);
        let edge = |db: &mut Database, i: usize, j: usize| {
            db.insert(&Fact::new("Pref", vec![product(i), product(j)]))
                .unwrap();
        };
        // Planted symmetric conflicts on disjoint-ish pairs.
        let mut planted = 0;
        while planted < spec.conflicts {
            let i = rng.random_range(0..spec.products);
            let j = rng.random_range(0..spec.products);
            if i == j {
                continue;
            }
            edge(&mut db, i, j);
            edge(&mut db, j, i);
            planted += 1;
        }
        // Extra one-directional edges that do not create new conflicts.
        let mut added = 0;
        let mut attempts = 0;
        while added < spec.extra_edges && attempts < spec.extra_edges * 50 {
            attempts += 1;
            let i = rng.random_range(0..spec.products);
            let j = rng.random_range(0..spec.products);
            if i == j {
                continue;
            }
            let fwd = Fact::new("Pref", vec![product(i), product(j)]);
            let rev = Fact::new("Pref", vec![product(j), product(i)]);
            if db.contains(&rev) || db.contains(&fwd) {
                continue;
            }
            db.insert(&fwd).unwrap();
            added += 1;
        }
        let sigma = parser::parse_constraints("Pref(x,y), Pref(y,x) -> false.").unwrap();
        PreferenceWorkload { db, sigma }
    }

    /// Example 7's query: the most preferred product.
    pub fn most_preferred_query(&self) -> Query {
        parser::parse_query("(x) <- forall y: (Pref(x,y) | x = y)").unwrap()
    }

    /// Number of symmetric conflicts currently in the database.
    pub fn conflict_count(&self) -> usize {
        let mut n = 0;
        for fact in self.db.facts() {
            let rev = Fact::new(fact.pred(), vec![fact.args()[1], fact.args()[0]]);
            if fact.args()[0] < fact.args()[1] && self.db.contains(&rev) {
                n += 1;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocqa_logic::ViolationSet;

    #[test]
    fn paper_example_shape() {
        let w = PreferenceWorkload::paper_example();
        assert_eq!(w.db.len(), 6);
        assert_eq!(w.conflict_count(), 2);
        let v = ViolationSet::compute(&w.sigma, &w.db);
        // Each symmetric pair yields two violating homomorphisms.
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn generated_conflicts_at_least_requested() {
        let w = PreferenceWorkload::generate(&PreferenceSpec {
            products: 20,
            conflicts: 4,
            extra_edges: 15,
            seed: 3,
        });
        // Planting can collide (re-planting the same pair), but every
        // planted pair is symmetric, so violations exist.
        assert!(w.conflict_count() >= 1);
        assert!(!w.sigma.satisfied_by(&w.db));
    }

    #[test]
    fn deterministic() {
        let spec = PreferenceSpec::default();
        let a = PreferenceWorkload::generate(&spec);
        let b = PreferenceWorkload::generate(&spec);
        assert!(a.db.same_facts(&b.db));
    }
}
