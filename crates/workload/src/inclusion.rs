//! Inclusion-dependency (TGD) workloads: the insertion-repair scenario.

use ocqa_data::{Constant, Database, Fact, Schema};
use ocqa_logic::{parser, ConstraintSet, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for an order/customer scenario with dangling foreign keys:
/// `Order(o, c)` must have a matching `Customer(c)` (the inclusion
/// dependency `Order[2] ⊆ Customer[1]`), but some orders reference unknown
/// customers — repairable by inserting the customer (TGD insertion) or
/// deleting the order.
#[derive(Clone, Debug)]
pub struct InclusionSpec {
    /// Registered customers.
    pub customers: usize,
    /// Orders referencing registered customers.
    pub valid_orders: usize,
    /// Orders referencing unknown customers (one unknown each).
    pub dangling_orders: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for InclusionSpec {
    fn default() -> Self {
        InclusionSpec {
            customers: 20,
            valid_orders: 30,
            dangling_orders: 3,
            seed: 5,
        }
    }
}

/// A generated inclusion-dependency workload.
pub struct InclusionWorkload {
    /// The inconsistent database.
    pub db: Database,
    /// `Order(o, c) → Customer(c)`.
    pub sigma: ConstraintSet,
    /// The customer ids referenced by dangling orders.
    pub dangling_customers: Vec<Constant>,
}

impl InclusionWorkload {
    /// Generates the workload.
    pub fn generate(spec: &InclusionSpec) -> InclusionWorkload {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let schema = Schema::from_relations(&[("Order", 2), ("Customer", 1)]);
        let mut db = Database::new(schema);
        for c in 0..spec.customers {
            db.insert(&Fact::new("Customer", vec![Constant::int(c as i64)]))
                .unwrap();
        }
        let mut order_id = 0i64;
        for _ in 0..spec.valid_orders {
            let c = rng.random_range(0..spec.customers as i64);
            db.insert(&Fact::new(
                "Order",
                vec![Constant::int(order_id), Constant::int(c)],
            ))
            .unwrap();
            order_id += 1;
        }
        let mut dangling_customers = Vec::with_capacity(spec.dangling_orders);
        for i in 0..spec.dangling_orders {
            // Unknown customer ids live outside the registered range.
            let ghost = Constant::int((spec.customers + 1000 + i) as i64);
            dangling_customers.push(ghost);
            db.insert(&Fact::new("Order", vec![Constant::int(order_id), ghost]))
                .unwrap();
            order_id += 1;
        }
        let sigma = parser::parse_constraints("Order(o, c) -> Customer(c).").unwrap();
        InclusionWorkload {
            db,
            sigma,
            dangling_customers,
        }
    }

    /// The query "customers with at least one order".
    pub fn active_customers_query(&self) -> Query {
        parser::parse_query("(c) <- Customer(c) & (exists o: Order(o, c))").unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocqa_logic::ViolationSet;

    #[test]
    fn dangling_orders_violate() {
        let w = InclusionWorkload::generate(&InclusionSpec::default());
        let v = ViolationSet::compute(&w.sigma, &w.db);
        assert_eq!(v.len(), 3, "one violation per dangling order");
    }

    #[test]
    fn no_dangling_is_consistent() {
        let w = InclusionWorkload::generate(&InclusionSpec {
            dangling_orders: 0,
            ..Default::default()
        });
        assert!(w.sigma.satisfied_by(&w.db));
    }

    #[test]
    fn deterministic() {
        let spec = InclusionSpec::default();
        let a = InclusionWorkload::generate(&spec);
        let b = InclusionWorkload::generate(&spec);
        assert!(a.db.same_facts(&b.db));
    }
}
