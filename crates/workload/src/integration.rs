//! Multi-source data-integration workloads with trust levels (Example 5).

use ocqa_data::{Constant, Database, Fact, Schema};
use ocqa_logic::{parser, ConstraintSet};
use ocqa_num::Rat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Parameters for an integration scenario: `sources` feeds each assert a
/// value for a subset of entities; conflicting assertions violate the key
/// `R(entity) → value`.
#[derive(Clone, Debug)]
pub struct IntegrationSpec {
    /// Number of integrated entities.
    pub entities: usize,
    /// Number of sources.
    pub sources: usize,
    /// Probability (percent) that a second source contradicts the first
    /// for an entity.
    pub conflict_percent: u8,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IntegrationSpec {
    fn default() -> Self {
        IntegrationSpec {
            entities: 50,
            sources: 2,
            conflict_percent: 20,
            seed: 11,
        }
    }
}

/// A generated integration workload: the merged database, the key
/// constraint, and per-fact trust levels derived from source reliability.
pub struct IntegrationWorkload {
    /// The merged (possibly inconsistent) database.
    pub db: Database,
    /// The key constraint on the merged relation.
    pub sigma: ConstraintSet,
    /// Trust level per fact — the reliability of the source it came from.
    pub trust: BTreeMap<Fact, Rat>,
    /// Reliability per source (index = source id).
    pub source_reliability: Vec<Rat>,
}

impl IntegrationWorkload {
    /// Generates the workload. Source `s` has reliability
    /// `(s + 1) / (sources + 1)` — later sources are more trusted.
    pub fn generate(spec: &IntegrationSpec) -> IntegrationWorkload {
        assert!(spec.sources >= 1);
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let schema = Schema::from_relations(&[("R", 2)]);
        let mut db = Database::new(schema);
        let mut trust: BTreeMap<Fact, Rat> = BTreeMap::new();
        let source_reliability: Vec<Rat> = (0..spec.sources)
            .map(|s| Rat::ratio(s as i64 + 1, spec.sources as i64 + 1))
            .collect();
        for e in 0..spec.entities {
            // Source 0 always asserts a value.
            let v0 = rng.random_range(0..1000);
            let f0 = Fact::new("R", vec![Constant::int(e as i64), Constant::int(v0)]);
            db.insert(&f0).unwrap();
            trust.insert(f0, source_reliability[0].clone());
            // Each later source may contradict.
            for reliability in source_reliability.iter().skip(1) {
                if rng.random_range(0..100) < spec.conflict_percent as u32 {
                    let mut v = rng.random_range(0..1000);
                    if v == v0 {
                        v += 1;
                    }
                    let f = Fact::new("R", vec![Constant::int(e as i64), Constant::int(v)]);
                    if db.insert(&f).unwrap() {
                        trust.insert(f, reliability.clone());
                    }
                }
            }
        }
        let sigma = parser::parse_constraints("R(x,y), R(x,z) -> y = z.").unwrap();
        IntegrationWorkload {
            db,
            sigma,
            trust,
            source_reliability,
        }
    }

    /// Number of entities with conflicting assertions.
    pub fn conflicting_entities(&self) -> usize {
        let rel = self.db.relation(ocqa_data::Symbol::intern("R")).unwrap();
        let mut per_key: BTreeMap<Constant, usize> = BTreeMap::new();
        for row in rel.iter() {
            *per_key.entry(row[0]).or_insert(0) += 1;
        }
        per_key.values().filter(|&&n| n > 1).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_facts_have_trust() {
        let w = IntegrationWorkload::generate(&IntegrationSpec::default());
        for f in w.db.facts() {
            assert!(w.trust.contains_key(&f), "missing trust for {f}");
            assert!(w.trust[&f].is_probability());
        }
    }

    #[test]
    fn zero_conflicts_is_consistent() {
        let w = IntegrationWorkload::generate(&IntegrationSpec {
            conflict_percent: 0,
            ..Default::default()
        });
        assert!(w.sigma.satisfied_by(&w.db));
        assert_eq!(w.conflicting_entities(), 0);
    }

    #[test]
    fn conflicts_generated_when_requested() {
        let w = IntegrationWorkload::generate(&IntegrationSpec {
            entities: 200,
            conflict_percent: 50,
            ..Default::default()
        });
        assert!(w.conflicting_entities() > 0);
        assert!(!w.sigma.satisfied_by(&w.db));
    }

    #[test]
    fn later_sources_more_reliable() {
        let w = IntegrationWorkload::generate(&IntegrationSpec {
            sources: 3,
            ..Default::default()
        });
        assert!(w.source_reliability[0] < w.source_reliability[2]);
    }
}
