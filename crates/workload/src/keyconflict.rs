//! Key-violation workloads.

use ocqa_data::{Constant, Database, Fact, Schema, Symbol};
use ocqa_logic::{parser, ConstraintSet, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for a relation with primary-key violations: `R(k, v)` where
/// `k` is the key.
#[derive(Clone, Debug)]
pub struct KeyConflictSpec {
    /// Number of *clean* tuples (each with a unique key).
    pub clean_tuples: usize,
    /// Number of violating key groups.
    pub conflict_groups: usize,
    /// Tuples per violating group (≥ 2).
    pub group_size: usize,
    /// Size of the value domain.
    pub value_domain: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KeyConflictSpec {
    fn default() -> Self {
        KeyConflictSpec {
            clean_tuples: 100,
            conflict_groups: 10,
            group_size: 2,
            value_domain: 1000,
            seed: 0xD0_0D,
        }
    }
}

/// A generated key-conflict workload.
pub struct KeyConflictWorkload {
    /// The inconsistent database.
    pub db: Database,
    /// The key constraint `R(x,y), R(x,z) → y = z`.
    pub sigma: ConstraintSet,
    /// The keys of the violating groups.
    pub conflict_keys: Vec<Constant>,
}

impl KeyConflictWorkload {
    /// Generates the workload.
    pub fn generate(spec: &KeyConflictSpec) -> KeyConflictWorkload {
        assert!(spec.group_size >= 2, "violating groups need ≥ 2 tuples");
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let schema = Schema::from_relations(&[("R", 2)]);
        let mut db = Database::new(schema);
        // Clean region: keys 0..clean_tuples.
        for k in 0..spec.clean_tuples {
            let v = rng.random_range(0..spec.value_domain);
            db.insert(&Fact::new(
                "R",
                vec![Constant::int(k as i64), Constant::int(v)],
            ))
            .unwrap();
        }
        // Conflicting region: keys clean_tuples..clean_tuples+groups, each
        // with `group_size` distinct values.
        let mut conflict_keys = Vec::with_capacity(spec.conflict_groups);
        for g in 0..spec.conflict_groups {
            let key = Constant::int((spec.clean_tuples + g) as i64);
            conflict_keys.push(key);
            let mut used = Vec::new();
            while used.len() < spec.group_size {
                let v = rng.random_range(0..spec.value_domain.max(spec.group_size as i64));
                if !used.contains(&v) {
                    used.push(v);
                    db.insert(&Fact::new("R", vec![key, Constant::int(v)]))
                        .unwrap();
                }
            }
        }
        let sigma = parser::parse_constraints("R(x,y), R(x,z) -> y = z.").unwrap();
        KeyConflictWorkload {
            db,
            sigma,
            conflict_keys,
        }
    }

    /// The key relation symbol.
    pub fn relation(&self) -> Symbol {
        Symbol::intern("R")
    }

    /// The projection query `Q(x) = ∃y R(x, y)` ("which keys survive").
    pub fn projection_query(&self) -> Query {
        parser::parse_query("(x) <- exists y: R(x, y)").unwrap()
    }

    /// A point query `Q(y) = R(k, y)` on one conflicting key.
    pub fn point_query(&self, key: Constant) -> Query {
        let src = match key {
            Constant::Int(v) => format!("(y) <- R({v}, y)"),
            Constant::Sym(s) => format!("(y) <- R('{s}', y)"),
        };
        parser::parse_query(&src).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocqa_logic::ViolationSet;

    #[test]
    fn generated_sizes_match_spec() {
        let spec = KeyConflictSpec {
            clean_tuples: 50,
            conflict_groups: 5,
            group_size: 3,
            value_domain: 100,
            seed: 1,
        };
        let w = KeyConflictWorkload::generate(&spec);
        assert_eq!(w.db.len(), 50 + 5 * 3);
        assert_eq!(w.conflict_keys.len(), 5);
        // Each violating group of size 3 yields 3·2 = 6 ordered violating
        // homomorphisms (y ≠ z).
        let v = ViolationSet::compute(&w.sigma, &w.db);
        assert_eq!(v.len(), 5 * 6);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let spec = KeyConflictSpec::default();
        let a = KeyConflictWorkload::generate(&spec);
        let b = KeyConflictWorkload::generate(&spec);
        assert!(a.db.same_facts(&b.db));
    }

    #[test]
    fn different_seeds_differ() {
        let mut spec = KeyConflictSpec::default();
        let a = KeyConflictWorkload::generate(&spec);
        spec.seed += 1;
        let b = KeyConflictWorkload::generate(&spec);
        assert!(!a.db.same_facts(&b.db));
    }

    #[test]
    fn clean_region_is_consistent() {
        let spec = KeyConflictSpec {
            conflict_groups: 0,
            ..Default::default()
        };
        let w = KeyConflictWorkload::generate(&spec);
        assert!(w.sigma.satisfied_by(&w.db));
    }
}
