//! Fact-stream workloads for the streaming (subscription) subsystem.
//!
//! A [`StreamWorkload`] is an initial database plus a seeded sequence of
//! update steps over two relations: a keyed relation `R` (whose primary
//! key can be violated, so updates there perturb the violation set) and
//! an unconstrained relation `S` (whose updates are always clean-region
//! only). Each step is rendered as fact-list *source text* so drivers
//! can replay it straight through the NDJSON protocol's `update` op,
//! and carries a `dirty` flag saying whether the step changes the
//! violation set — the signal the subscription subsystem keys pushes
//! on, so tests and benches know exactly which steps must produce a
//! pushed re-estimate and which must be silent.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for a fact stream over a keyed relation `R(k, v)` and a
/// clean relation `S(x, y)`.
#[derive(Clone, Debug)]
pub struct StreamSpec {
    /// Number of distinct keys seeded into `R` (each with one clean
    /// tuple) and rows seeded into `S`.
    pub keys: usize,
    /// Number of update steps to generate.
    pub steps: usize,
    /// Per-mille chance a step inserts a conflicting tuple into `R`.
    pub conflict_permille: u32,
    /// Per-mille chance a step deletes a previously inserted
    /// conflicting tuple (falls back to a clean step when none exist).
    pub churn_permille: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StreamSpec {
    fn default() -> Self {
        StreamSpec {
            keys: 32,
            steps: 64,
            conflict_permille: 400,
            churn_permille: 200,
            seed: 7,
        }
    }
}

/// One step of the stream: an insert/delete batch in fact-list source
/// form, ready for the protocol's `update` op.
#[derive(Clone, Debug)]
pub struct StreamStep {
    /// Facts to insert (fact-list source, possibly empty).
    pub insert: String,
    /// Facts to delete (fact-list source, possibly empty).
    pub delete: String,
    /// Whether the step changes the violation set of the key
    /// constraint on `R`. Clean (`dirty == false`) steps only touch the
    /// unconstrained relation `S`, so subscribers on `R` must see no
    /// push — and no resampling — for them.
    pub dirty: bool,
}

/// A generated fact-stream workload.
pub struct StreamWorkload {
    /// Initial database contents (fact-list source): one clean tuple
    /// per key in `R` and one row per key in `S`.
    pub facts: String,
    /// The key constraint `R(x,y), R(x,z) → y = z` (constraint source).
    pub constraints: String,
    /// Projection query over the keyed relation (`which keys survive`);
    /// its subscribers are touched by every dirty step.
    pub query: String,
    /// Projection query over the clean relation; its subscribers are
    /// never touched.
    pub clean_query: String,
    /// The update steps, in replay order.
    pub steps: Vec<StreamStep>,
}

impl StreamWorkload {
    /// Generates the workload.
    pub fn generate(spec: &StreamSpec) -> StreamWorkload {
        assert!(spec.keys >= 1, "stream needs at least one key");
        assert!(
            spec.conflict_permille + spec.churn_permille <= 1000,
            "conflict + churn per-mille must not exceed 1000"
        );
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut facts = String::new();
        for k in 0..spec.keys {
            facts.push_str(&format!("R({k}, {}). ", k as i64 * 10));
        }
        for i in 0..spec.keys {
            facts.push_str(&format!("S({i}, {i}). "));
        }
        // Conflicting tuples currently present (beyond the seed tuple
        // for each key), so delete steps always remove a live fact.
        let mut extras: Vec<(usize, i64)> = Vec::new();
        // Fresh values start above every seeded value, so an insert
        // always conflicts with the key's seed tuple and never
        // duplicates an existing fact.
        let mut next_val = spec.keys as i64 * 10 + 1;
        let mut next_s = spec.keys;
        let mut steps = Vec::with_capacity(spec.steps);
        for _ in 0..spec.steps {
            let roll = rng.random_range(0..1000u32);
            if roll < spec.conflict_permille {
                let key = rng.random_range(0..spec.keys);
                extras.push((key, next_val));
                steps.push(StreamStep {
                    insert: format!("R({key}, {next_val})."),
                    delete: String::new(),
                    dirty: true,
                });
                next_val += 1;
            } else if roll < spec.conflict_permille + spec.churn_permille && !extras.is_empty() {
                let i = rng.random_range(0..extras.len());
                let (key, val) = extras.swap_remove(i);
                steps.push(StreamStep {
                    insert: String::new(),
                    delete: format!("R({key}, {val})."),
                    dirty: true,
                });
            } else {
                steps.push(StreamStep {
                    insert: format!("S({next_s}, {next_s})."),
                    delete: String::new(),
                    dirty: false,
                });
                next_s += 1;
            }
        }
        StreamWorkload {
            facts,
            constraints: "R(x,y), R(x,z) -> y = z.".into(),
            query: "(x) <- exists y: R(x, y)".into(),
            clean_query: "(x) <- exists y: S(x, y)".into(),
            steps,
        }
    }

    /// Number of dirty (violation-set-changing) steps.
    pub fn dirty_steps(&self) -> usize {
        self.steps.iter().filter(|s| s.dirty).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocqa_data::{Database, Schema};
    use ocqa_logic::{parser, ViolationSet};

    fn replay(w: &StreamWorkload) -> Vec<(bool, usize)> {
        let schema = Schema::from_relations(&[("R", 2), ("S", 2)]);
        let mut db = Database::new(schema);
        for f in parser::parse_facts(&w.facts).unwrap() {
            db.insert(&f).unwrap();
        }
        let sigma = parser::parse_constraints(&w.constraints).unwrap();
        let mut out = Vec::new();
        for step in &w.steps {
            for f in parser::parse_facts(&step.insert).unwrap() {
                assert!(db.insert(&f).unwrap(), "insert must be a new fact");
            }
            for f in parser::parse_facts(&step.delete).unwrap() {
                assert!(db.remove(&f), "delete must remove a live fact");
            }
            out.push((step.dirty, ViolationSet::compute(&sigma, &db).len()));
        }
        out
    }

    #[test]
    fn dirty_flag_tracks_violation_set_changes() {
        let w = StreamWorkload::generate(&StreamSpec::default());
        let sigma = parser::parse_constraints(&w.constraints).unwrap();
        let schema = Schema::from_relations(&[("R", 2), ("S", 2)]);
        let mut db = Database::new(schema);
        for f in parser::parse_facts(&w.facts).unwrap() {
            db.insert(&f).unwrap();
        }
        let mut prev = ViolationSet::compute(&sigma, &db).len();
        assert_eq!(prev, 0, "seed database is consistent");
        for (step, (dirty, violations)) in w.steps.iter().zip(replay(&w)) {
            assert_eq!(step.dirty, dirty);
            assert_eq!(
                dirty,
                violations != prev,
                "dirty flag must match the violation-set delta"
            );
            prev = violations;
        }
    }

    #[test]
    fn clean_steps_never_touch_the_keyed_relation() {
        let w = StreamWorkload::generate(&StreamSpec::default());
        for step in w.steps.iter().filter(|s| !s.dirty) {
            assert!(step.insert.starts_with("S("));
            assert!(step.delete.is_empty());
        }
        assert!(w.dirty_steps() > 0, "default spec produces dirty steps");
        assert!(
            w.dirty_steps() < w.steps.len(),
            "default spec produces clean steps"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let spec = StreamSpec::default();
        let a = StreamWorkload::generate(&spec);
        let b = StreamWorkload::generate(&spec);
        assert_eq!(a.facts, b.facts);
        assert_eq!(a.steps.len(), b.steps.len());
        for (x, y) in a.steps.iter().zip(&b.steps) {
            assert_eq!(
                (&x.insert, &x.delete, x.dirty),
                (&y.insert, &y.delete, y.dirty)
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = StreamWorkload::generate(&StreamSpec::default());
        let b = StreamWorkload::generate(&StreamSpec {
            seed: 8,
            ..Default::default()
        });
        assert!(a
            .steps
            .iter()
            .zip(&b.steps)
            .any(|(x, y)| x.insert != y.insert || x.delete != y.delete));
    }
}
