//! Seeded synthetic workloads for benchmarks and experiments.
//!
//! The paper evaluates no public datasets — its scenarios are described in
//! prose (conflicting sources with trust levels, product preferences with
//! symmetric conflicts, key-violating relations). This crate turns those
//! descriptions into deterministic generators so every experiment in
//! `EXPERIMENTS.md` is reproducible from a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inclusion;
pub mod integration;
pub mod keyconflict;
pub mod preference;
pub mod stream;

pub use inclusion::{InclusionSpec, InclusionWorkload};
pub use integration::{IntegrationSpec, IntegrationWorkload};
pub use keyconflict::{KeyConflictSpec, KeyConflictWorkload};
pub use preference::{PreferenceSpec, PreferenceWorkload};
pub use stream::{StreamSpec, StreamStep, StreamWorkload};
